"""Concurrent tuning-store access: threads, instances, and processes.

The store's contract is that any interleaving of lock-holding writers
produces a log that replays to the union of their writes — whether the
writers share one :class:`TuningStore` instance (thread lock), hold
separate instances over one file (file lock + tail replay), or live in
separate processes entirely.
"""

import json
import multiprocessing
import threading

from repro.service.store import TuningRecord, TuningStore


def record(key: str, cycles: int = 100) -> TuningRecord:
    return TuningRecord(
        key=key,
        kernel="fp-" + key,
        kernel_name="k",
        arch="gtx680",
        backend="timing",
        winner_label="original",
        winner_warps=32,
        occupancy=0.5,
        total_cycles=cycles,
    )


def test_threads_sharing_one_instance(tmp_path):
    store = TuningStore(tmp_path / "s.jsonl", max_entries=256)
    per_thread = 20

    def writer(worker: int) -> None:
        for i in range(per_thread):
            store.put(record(f"w{worker}-{i}"))
            assert store.get(f"w{worker}-{i}") is not None

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(store) == 4 * per_thread
    # The on-disk log replays to exactly the same state.
    assert len(TuningStore(tmp_path / "s.jsonl", max_entries=256)) == 4 * per_thread


def test_two_instances_see_each_others_writes(tmp_path):
    path = tmp_path / "s.jsonl"
    a = TuningStore(path)
    b = TuningStore(path)
    a.put(record("from-a"))
    assert b.get("from-a") is not None  # b replays a's appended tail
    b.put(record("from-b"))
    assert a.get("from-b") is not None
    assert a.keys() == b.keys() == ["from-a", "from-b"]


def test_interleaved_instances_keep_lru_consistent(tmp_path):
    path = tmp_path / "s.jsonl"
    a = TuningStore(path, max_entries=2)
    b = TuningStore(path, max_entries=2)
    a.put(record("x"))
    b.put(record("y"))
    a.get("x")  # refresh through instance a
    b.put(record("z"))  # instance b must evict y, not x
    assert a.keys() == b.keys() == ["x", "z"]


def test_compaction_that_grows_the_log_is_detected(tmp_path):
    """Regression: a compaction by another instance must never be
    mistaken for appended tail.

    Instance a syncs while the log is tiny; instance b then appends many
    records and compacts, leaving a file *larger* than a's stale offset.
    A size check alone would have a replay garbage from mid-line and
    truncate the live log back to its stale offset — destroying every
    committed record past it.  The header generation id catches this.
    """
    path = tmp_path / "s.jsonl"
    a = TuningStore(path, max_entries=1024)
    a.put(record("from-a"))
    # The touch op is dropped by compaction, so a's replay offset —
    # header + put + touch — cannot line up with any boundary in the
    # compacted layout: it points mid-line, the worst case.
    assert a.get("from-a") is not None
    b = TuningStore(path, max_entries=1024)
    for i in range(200):
        b.put(record(f"from-b-{i}", cycles=i))
    b.gc()
    assert b.stats().compactions >= 1
    assert path.stat().st_size > 1000  # compacted log dwarfs a's offset
    # a must replay from scratch and see every committed record.
    assert a.get("from-a") is not None
    for i in range(200):
        assert a.get(f"from-b-{i}") is not None
    assert len(a) == 201
    # Nothing was truncated away on disk either.
    assert len(TuningStore(path)) == 201


def test_rewrite_keeping_the_header_falls_back_to_full_replay(tmp_path):
    """Even with an unchanged header generation (out-of-band rewrite),
    a tail that replays to zero bytes at a non-zero offset must trigger
    a full replay, never a truncation of the live log."""
    path = tmp_path / "s.jsonl"
    a = TuningStore(path)
    a.put(record("x"))
    header = path.read_text().splitlines()[0]
    lines = [header]
    for i in range(50):
        lines.append(
            json.dumps(
                {
                    "op": "put",
                    "seq": i + 1,
                    "key": f"key-{i:04d}",
                    "record": record(f"key-{i:04d}").to_payload(),
                },
                sort_keys=True,
            )
        )
    path.write_text("\n".join(lines) + "\n")
    assert a.get("key-0049") is not None
    assert a.get("x") is None  # the rewrite dropped it; a agrees
    assert len(a) == 50
    assert len(TuningStore(path)) == 50


def _process_writer(path: str, worker: int, count: int) -> None:
    store = TuningStore(path, max_entries=1024)
    for i in range(count):
        store.put(record(f"p{worker}-{i}"))


def test_processes_appending_concurrently(tmp_path):
    path = tmp_path / "s.jsonl"
    TuningStore(path)  # create header up front
    count = 10
    ctx = multiprocessing.get_context("spawn")
    workers = [
        ctx.Process(target=_process_writer, args=(str(path), w, count))
        for w in range(3)
    ]
    for p in workers:
        p.start()
    for p in workers:
        p.join(timeout=60)
        assert p.exitcode == 0
    merged = TuningStore(path)
    assert len(merged) == 3 * count
    for w in range(3):
        for i in range(count):
            assert merged.get(f"p{w}-{i}") is not None
