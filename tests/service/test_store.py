"""Persistent tuning store: durability, recovery, LRU, compaction."""

import json

import pytest

from repro.service.store import (
    SCHEMA,
    SCHEMA_VERSION,
    TuningRecord,
    TuningStore,
)


def record(key: str, winner: str = "original", cycles: int = 100) -> TuningRecord:
    return TuningRecord(
        key=key,
        kernel="fp-" + key,
        kernel_name="k",
        arch="gtx680",
        backend="timing",
        winner_label=winner,
        winner_warps=32,
        occupancy=0.5,
        total_cycles=cycles,
        iterations_to_converge=3,
    )


@pytest.fixture()
def store_path(tmp_path):
    return tmp_path / "tuning.jsonl"


class TestRoundTrip:
    def test_put_get(self, store_path):
        store = TuningStore(store_path)
        store.put(record("a", winner="padded warps=32"))
        loaded = store.get("a")
        assert loaded is not None
        assert loaded.winner_label == "padded warps=32"
        assert loaded.to_payload() == record("a", winner="padded warps=32").to_payload()

    def test_miss_returns_none(self, store_path):
        store = TuningStore(store_path)
        assert store.get("missing") is None

    def test_survives_reopen(self, store_path):
        TuningStore(store_path).put(record("a"))
        reopened = TuningStore(store_path)
        assert reopened.get("a") is not None
        assert len(reopened) == 1

    def test_invalidate(self, store_path):
        store = TuningStore(store_path)
        store.put(record("a"))
        assert store.invalidate("a") is True
        assert store.invalidate("a") is False
        assert store.get("a") is None
        assert TuningStore(store_path).get("a") is None

    def test_export_sorted_by_key(self, store_path):
        store = TuningStore(store_path)
        for key in ("c", "a", "b"):
            store.put(record(key))
        assert [r["key"] for r in store.export()] == ["a", "b", "c"]

    def test_header_is_first_line(self, store_path):
        TuningStore(store_path).put(record("a"))
        header = json.loads(store_path.read_text().splitlines()[0])
        assert header["schema"] == SCHEMA
        assert header["version"] == SCHEMA_VERSION
        assert header["generation"]

    def test_pre_generation_store_still_opens(self, store_path):
        """A v1 log written before generation ids replays normally."""
        store = TuningStore(store_path)
        store.put(record("a"))
        lines = store_path.read_text().splitlines()
        header = json.loads(lines[0])
        del header["generation"]
        lines[0] = json.dumps(header, sort_keys=True)
        store_path.write_text("\n".join(lines) + "\n")
        reopened = TuningStore(store_path)
        assert reopened.get("a") is not None
        reopened.put(record("b"))
        assert reopened.keys() == ["a", "b"]


class TestLru:
    def test_eviction_is_deterministic_lru(self, store_path):
        store = TuningStore(store_path, max_entries=2)
        store.put(record("a"))
        store.put(record("b"))
        assert store.get("a") is not None  # refresh a; b is now oldest
        store.put(record("c"))
        assert store.keys() == ["a", "c"]

    def test_lru_order_survives_reopen(self, store_path):
        store = TuningStore(store_path, max_entries=2)
        store.put(record("a"))
        store.put(record("b"))
        store.get("a")
        reopened = TuningStore(store_path, max_entries=2)
        reopened.put(record("c"))
        assert reopened.keys() == ["a", "c"]

    def test_eviction_counted(self, store_path):
        store = TuningStore(store_path, max_entries=1)
        store.put(record("a"))
        store.put(record("b"))
        assert store.stats().evictions == 1
        assert len(store) == 1


class TestRecovery:
    def test_torn_tail_is_truncated_and_replayed(self, store_path):
        store = TuningStore(store_path)
        store.put(record("a"))
        store.put(record("b"))
        with store_path.open("a", encoding="utf-8") as handle:
            handle.write('{"op": "put", "seq": 99, "key": "c", "rec')
        recovered = TuningStore(store_path)
        assert recovered.keys() == ["a", "b"]
        assert recovered.stats().truncated_recoveries == 1
        # The torn bytes are gone from disk, not just skipped in memory.
        text = store_path.read_text()
        assert text.endswith("\n")
        assert json.loads(text.splitlines()[-1])["key"] == "b"

    def test_bad_header_quarantines(self, store_path):
        store_path.write_text("utterly not json\n", encoding="utf-8")
        store = TuningStore(store_path)
        assert len(store) == 0
        corrupt = store_path.with_name(store_path.name + ".corrupt")
        assert corrupt.read_text() == "utterly not json\n"
        store.put(record("a"))
        assert TuningStore(store_path).get("a") is not None

    def test_future_version_quarantines(self, store_path):
        store_path.write_text(
            json.dumps({"schema": SCHEMA, "version": SCHEMA_VERSION + 1}) + "\n"
        )
        store = TuningStore(store_path)
        assert len(store) == 0
        assert store_path.with_name(store_path.name + ".corrupt").exists()

    def test_wrong_schema_quarantines(self, store_path):
        store_path.write_text(json.dumps({"schema": "something-else"}) + "\n")
        assert len(TuningStore(store_path)) == 0


class TestCompaction:
    def test_gc_rewrites_to_one_put_per_record(self, store_path):
        store = TuningStore(store_path)
        for i in range(5):
            store.put(record("a", cycles=i))
            store.put(record("b", cycles=i))
        store.get("a")
        stats = store.gc()
        assert stats.entries == 2
        assert stats.log_ops == 2
        lines = store_path.read_text().splitlines()
        assert len(lines) == 3  # header + two puts
        # Most-recently-used record comes last (replay preserves order).
        assert json.loads(lines[-1])["key"] == "a"

    def test_data_survives_gc_and_reopen(self, store_path):
        store = TuningStore(store_path)
        store.put(record("a", cycles=7))
        store.gc()
        assert TuningStore(store_path).get("a").total_cycles == 7

    def test_auto_compaction_bounds_the_log(self, store_path):
        store = TuningStore(store_path, max_entries=4)
        for i in range(200):
            store.put(record(f"k{i % 4}", cycles=i))
        stats = store.stats()
        assert stats.compactions >= 1
        assert stats.log_ops <= max(64, 4 * stats.entries) + 1


class TestStats:
    def test_hit_rate(self, store_path):
        store = TuningStore(store_path)
        store.put(record("a"))
        store.get("a")
        store.get("a")
        store.get("nope")
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.puts) == (2, 1, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)
        payload = stats.to_payload()
        assert payload["hit_rate"] == pytest.approx(2 / 3)
        assert payload["entries"] == 1

    def test_max_entries_validated(self, store_path):
        with pytest.raises(ValueError):
            TuningStore(store_path, max_entries=0)
