"""Keying audit regression tests: strategy and arch in every cache key.

The failure mode this guards against is silent aliasing: a tuning
record learned under ``smem-spill`` warm-starting a ``local-spill``
client (or a GTX980 record warm-starting a GTX680 session) would skip
tuning with a winner realized for a different machine.  Every layer of
persistence — the tuning store key, the measurement cache key, the
version content hash — must therefore separate strategies and
architecture descriptors.
"""

import pytest

from repro.arch import GTX680, GTX980
from repro.compiler import CompileOptions, compile_binary
from repro.perf.measure_cache import measurement_cache_key
from repro.runtime import Workload
from repro.service.fingerprint import kernel_fingerprint, tuning_key
from repro.service.store import TuningRecord, TuningStore
from repro.sim import LaunchConfig
from tests.helpers import loop_kernel


def _compile(strategy="local-spill", arch=GTX680):
    return compile_binary(
        loop_kernel(),
        "k",
        CompileOptions(
            arch=arch, block_size=128, max_versions=4, strategy=strategy
        ),
    )


@pytest.fixture(scope="module")
def workload():
    return Workload(
        launch=LaunchConfig(grid_blocks=16, block_size=128), iterations=6
    )


class TestTuningKey:
    def test_strategies_split_the_key(self, workload):
        local = _compile("local-spill")
        smem = _compile("smem-spill")
        assert tuning_key(local, workload, "GTX680", "timing") != tuning_key(
            smem, workload, "GTX680", "timing"
        )

    def test_arch_fingerprint_splits_the_key(self, workload):
        binary = _compile()
        assert tuning_key(
            binary,
            workload,
            "GTX680",
            "timing",
            arch_fingerprint=GTX680.fingerprint(),
        ) != tuning_key(
            binary,
            workload,
            "GTX680",  # same marketing name, different resource table
            "timing",
            arch_fingerprint=GTX680.with_overrides(
                registers_per_sm=32768, max_registers_per_thread=63
            ).fingerprint(),
        )

    def test_default_strategy_key_is_stable(self, workload):
        # Two independent default compiles agree — the strategy field
        # cannot leak compile-order or environment noise into the key.
        assert tuning_key(_compile(), workload, "GTX680", "timing") == (
            tuning_key(_compile(), workload, "GTX680", "timing")
        )


class TestStoreRecords:
    def test_two_strategies_two_records(self, tmp_path, workload):
        """The ISSUE's regression test: records never alias by strategy."""
        store = TuningStore(tmp_path / "tuning.jsonl")
        records = {}
        for strategy, winner in (
            ("local-spill", "padded warps=56"),
            ("smem-spill", "conservative warps=48 [smem-spill]"),
        ):
            binary = _compile(strategy)
            key = tuning_key(
                binary,
                workload,
                "GTX680",
                "timing",
                arch_fingerprint=GTX680.fingerprint(),
            )
            store.put(
                TuningRecord(
                    key=key,
                    kernel=kernel_fingerprint(binary),
                    kernel_name="k",
                    arch="GTX680",
                    backend="timing",
                    winner_label=winner,
                    winner_warps=48,
                    occupancy=0.75,
                    total_cycles=1000,
                )
            )
            records[strategy] = key
        assert records["local-spill"] != records["smem-spill"]
        assert len(store) == 2
        loaded = store.get(records["smem-spill"])
        assert loaded.winner_label == "conservative warps=48 [smem-spill]"
        assert (
            store.get(records["local-spill"]).winner_label
            == "padded warps=56"
        )


class TestMeasurementCacheKey:
    def _key(self, **overrides):
        from repro.sim.trace import MemoryTraits

        params = dict(
            version_hash="abc123",
            backend_name="timing",
            arch_name="GTX680",
            grid_blocks=16,
            block_size=128,
            params={},
            cache_config="small_cache",
            traits=MemoryTraits(),
            ilp=1.0,
            max_events_per_warp=0,
        )
        params.update(overrides)
        return measurement_cache_key(**params)

    def test_strategy_splits_the_key(self):
        assert self._key(strategy="local-spill") != self._key(
            strategy="smem-spill"
        )

    def test_arch_fingerprint_splits_the_key(self):
        assert self._key(
            arch_fingerprint=GTX680.fingerprint()
        ) != self._key(arch_fingerprint=GTX980.fingerprint())


class TestVersionHashes:
    def test_non_default_strategy_changes_version_hashes(self):
        local = _compile("local-spill")
        smem = _compile("smem-spill")
        assert local.strategies() == ("local-spill",)
        assert smem.strategies() == ("smem-spill",)
        assert kernel_fingerprint(local) != kernel_fingerprint(smem)
