"""Wire-format tests: framing, limits, envelope validation."""

import asyncio
import socket
import struct
import threading

import pytest

from repro.service import protocol
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
)


class TestFraming:
    def test_encode_decode_round_trip(self):
        payload = {"v": 1, "type": "ping", "extra": [1, 2, {"x": "y"}]}
        frame = protocol.encode_frame(payload)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert protocol.decode_body(frame[4:]) == payload

    def test_sync_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            payload = {"v": 1, "type": "query", "key": "deadbeef" * 8}
            sender = threading.Thread(
                target=protocol.send_frame, args=(a, payload)
            )
            sender.start()
            assert protocol.recv_frame(b) == payload
            sender.join()
        finally:
            a.close()
            b.close()

    def test_oversized_payload_rejected_on_encode(self):
        huge = {"blob": "x" * (MAX_FRAME_BYTES + 1)}
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.encode_frame(huge)

    def test_oversized_length_prefix_rejected_before_buffering(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 100) + b"{}")
            a.close()
            with pytest.raises(ProtocolError, match="closed"):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_non_json_body_raises(self):
        with pytest.raises(ProtocolError, match="not JSON"):
            protocol.decode_body(b"\xff\xfe not json")

    def test_non_object_body_raises(self):
        with pytest.raises(ProtocolError, match="not a JSON object"):
            protocol.decode_body(b"[1, 2, 3]")


class TestEnvelope:
    def test_request_carries_version(self):
        assert protocol.request("ping") == {
            "v": PROTOCOL_VERSION,
            "type": "ping",
        }

    def test_validate_accepts_known_types(self):
        for type_ in protocol.REQUEST_TYPES:
            assert protocol.validate_request(protocol.request(type_)) == type_

    def test_validate_rejects_wrong_version(self):
        with pytest.raises(ProtocolError, match="protocol version"):
            protocol.validate_request({"v": 99, "type": "ping"})

    def test_validate_rejects_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown request type"):
            protocol.validate_request({"v": PROTOCOL_VERSION, "type": "nope"})

    def test_error_carries_retry_after_only_when_set(self):
        plain = protocol.error("timeout", "too slow")
        assert plain == {"ok": False, "code": "timeout", "error": "too slow"}
        hinted = protocol.error("queue-full", "busy", retry_after=0.25)
        assert hinted["retry_after"] == 0.25

    def test_cluster_verbs_rejected_under_version_1(self):
        for type_ in protocol.V2_REQUEST_TYPES:
            with pytest.raises(ProtocolError, match="needs protocol version"):
                protocol.validate_request({"v": 1, "type": type_})

    def test_version_1_requests_still_validate(self):
        for type_ in ("tune", "query", "invalidate", "stats", "ping",
                      "shutdown"):
            assert protocol.validate_request({"v": 1, "type": type_}) == type_

    def test_forwardable_types_exclude_cluster_verbs(self):
        # A forward wrapping a forward (or any cluster verb) would let
        # loops hide from the hop counter.
        assert not set(protocol.FORWARDABLE_TYPES) & set(
            protocol.V2_REQUEST_TYPES
        )
        assert "shutdown" not in protocol.FORWARDABLE_TYPES


class TestTraceEnvelope:
    """Optional trace fields: tolerated, never required, never leaked."""

    def test_trace_free_request_bytes_are_unchanged(self):
        # The trace fields must cost untraced traffic nothing: a plain
        # v2 ping still encodes to exactly the pre-tracing bytes.
        frame = protocol.encode_frame(protocol.request("ping"))
        assert frame[4:] == b'{"type": "ping", "v": 2}'

    def test_v1_request_bytes_are_unchanged(self):
        frame = protocol.encode_frame({"v": 1, "type": "ping"})
        assert frame[4:] == b'{"type": "ping", "v": 1}'

    def test_stamp_trace_round_trip(self):
        wire = protocol.stamp_trace(
            protocol.request("tune"), "9f2ab31c77d0e884", 3
        )
        assert wire["trace_id"] == "9f2ab31c77d0e884"
        assert wire["parent_span_id"] == 3
        assert protocol.trace_context(wire) == ("9f2ab31c77d0e884", 3)
        # Validation is indifferent to the extra fields.
        assert protocol.validate_request(wire) == "tune"

    def test_stamp_trace_does_not_mutate_the_original(self):
        original = protocol.request("ping")
        protocol.stamp_trace(original, "abcd" * 4)
        assert "trace_id" not in original

    def test_stamp_without_parent_drops_stale_parent(self):
        wire = protocol.stamp_trace(protocol.request("ping"), "ab" * 8, 7)
        restamped = protocol.stamp_trace(wire, "cd" * 8)
        assert "parent_span_id" not in restamped

    def test_trace_context_tolerates_absent_fields(self):
        assert protocol.trace_context({"v": 2, "type": "ping"}) == (None, None)

    def test_trace_context_tolerates_garbage(self):
        # Mistyped or empty trace fields degrade to untraced, never to
        # a protocol error — old clients, new daemons, and vice versa.
        for trace_id in ("", 17, None, ["x"], {"id": "x"}):
            payload = {"v": 2, "type": "ping", "trace_id": trace_id}
            assert protocol.trace_context(payload) == (None, None)
        for parent in ("3", 3.5, True, None, [3]):
            payload = {
                "v": 2,
                "type": "ping",
                "trace_id": "ab" * 8,
                "parent_span_id": parent,
            }
            assert protocol.trace_context(payload) == ("ab" * 8, None)

    def test_traced_v1_request_still_validates(self):
        # A misbehaving client stamping trace fields onto v1 must not
        # break the daemon: v1 validation ignores unknown fields.
        payload = {"v": 1, "type": "ping", "trace_id": "ab" * 8}
        assert protocol.validate_request(payload) == "ping"


class TestAsyncFraming:
    """The daemon-side stream readers (satellite edge cases)."""

    @staticmethod
    def _read(data: bytes, *, eof: bool = True):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(data)
            if eof:
                reader.feed_eof()
            return await protocol.read_frame(reader)

        return asyncio.run(go())

    def test_clean_eof_before_any_prefix_returns_none(self):
        assert self._read(b"") is None

    def test_partial_length_prefix_at_eof_raises(self):
        # 2 of the 4 length bytes, then the peer vanished: this must be
        # a ProtocolError, never a hang or a silent None.
        with pytest.raises(ProtocolError, match="mid length prefix"):
            self._read(struct.pack(">I", 10)[:2])

    def test_oversized_frame_rejected_before_buffering_async(self):
        prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            self._read(prefix + b"x" * 32, eof=False)

    def test_body_cut_mid_frame_raises(self):
        with pytest.raises(ProtocolError, match="mid frame"):
            self._read(struct.pack(">I", 100) + b'{"v":')
