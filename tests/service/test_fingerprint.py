"""Content-addressed tuning keys: stability, sensitivity, normalization."""

import pytest

from repro.arch import GTX680, TESLA_C2075
from repro.compiler import CompileOptions, compile_binary
from repro.runtime import Workload
from repro.service.fingerprint import (
    _bucket_pow2,
    kernel_fingerprint,
    normalize_work_profile,
    tuning_key,
)
from repro.sim import LaunchConfig
from tests.helpers import loop_kernel, straight_line_kernel


def _compile(module):
    return compile_binary(
        module, "k", CompileOptions(arch=GTX680, block_size=128, max_versions=4)
    )


@pytest.fixture(scope="module")
def binary():
    return _compile(loop_kernel())


@pytest.fixture(scope="module")
def workload():
    return Workload(
        launch=LaunchConfig(grid_blocks=16, block_size=128), iterations=6
    )


class TestKernelFingerprint:
    def test_stable_across_recompiles(self, binary):
        assert kernel_fingerprint(binary) == kernel_fingerprint(
            _compile(loop_kernel())
        )

    def test_round_trips_serialization(self, binary):
        from repro.compiler.multiversion import MultiVersionBinary

        decoded = MultiVersionBinary.from_bytes(binary.to_bytes())
        assert kernel_fingerprint(decoded) == kernel_fingerprint(binary)

    def test_different_kernels_differ(self, binary):
        assert kernel_fingerprint(binary) != kernel_fingerprint(
            _compile(straight_line_kernel())
        )


class TestBucketing:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (64, 64), (65, 128), (100, 128)],
    )
    def test_bucket_pow2(self, n, expected):
        assert _bucket_pow2(n) == expected


class TestNormalizeWorkProfile:
    def test_profile_scaled_to_unit_peak(self, binary):
        workload = Workload(
            launch=LaunchConfig(grid_blocks=8, block_size=128),
            iterations=4,
            work_profile=[2.0, 4.0, 1.0],
        )
        normalized = normalize_work_profile(workload)
        assert normalized["work_profile"] == [0.5, 1.0, 0.25]

    def test_iterations_bucketed(self):
        launch = LaunchConfig(grid_blocks=8, block_size=128)
        a = normalize_work_profile(Workload(launch=launch, iterations=100))
        b = normalize_work_profile(Workload(launch=launch, iterations=128))
        assert a == b


class TestTuningKey:
    def test_stable_across_recompiles(self, binary, workload):
        assert tuning_key(binary, workload, "gtx680", "timing") == tuning_key(
            _compile(loop_kernel()), workload, "gtx680", "timing"
        )

    def test_sensitive_to_context(self, binary, workload):
        base = tuning_key(binary, workload, GTX680.name, "timing")
        assert base != tuning_key(binary, workload, TESLA_C2075.name, "timing")
        assert base != tuning_key(binary, workload, GTX680.name, "analytical")
        assert base != tuning_key(
            binary, workload, GTX680.name, "timing", cache_config="large"
        )

    def test_sensitive_to_launch_geometry(self, binary, workload):
        other = Workload(
            launch=LaunchConfig(grid_blocks=32, block_size=128), iterations=6
        )
        assert tuning_key(binary, workload, "gtx680", "timing") != tuning_key(
            binary, other, "gtx680", "timing"
        )

    def test_invariant_under_iteration_bucket(self, binary):
        launch = LaunchConfig(grid_blocks=16, block_size=128)
        a = Workload(launch=launch, iterations=100)
        b = Workload(launch=launch, iterations=128)
        assert tuning_key(binary, a, "gtx680", "timing") == tuning_key(
            binary, b, "gtx680", "timing"
        )
