"""Distributed tracing end-to-end: one trace id across daemon hops.

The contract under test: a traced client mints ``trace_id``, stamps it
onto the v2 envelope, and every daemon the request touches — entry
node, forwarded owner, replicas — records its spans under that same id
in its own trace file, so ``repro trace merge`` can reassemble the
request afterwards.  Equally important is the negative space: untraced
clients talking to untraced daemons must produce wire bytes and store
traffic identical to a build that has never heard of tracing.
"""

import json
import socket

import pytest

from repro.arch import GTX680
from repro.compiler import CompileOptions, compile_binary
from repro.obs import tracefile
from repro.obs.metrics import get_registry
from repro.obs.spans import use_hub
from repro.obs.tracectx import TraceContext, use_trace
from repro.runtime import Workload
from repro.runtime.telemetry import JsonlSink, TelemetryHub
from repro.service import protocol
from repro.service.client import TuningClient
from repro.service.cluster import ClusterConfig, HashRing, node_address
from repro.service.daemon import DaemonConfig
from repro.service.fingerprint import kernel_fingerprint
from repro.service.store import TuningStore
from repro.sim import LaunchConfig
from tests.runtime.test_launcher import pressure_module
from tests.service.test_daemon import DaemonHarness


@pytest.fixture(scope="module")
def binary():
    return compile_binary(
        pressure_module(), "k", CompileOptions(arch=GTX680)
    )


@pytest.fixture()
def workload():
    return Workload(
        launch=LaunchConfig(grid_blocks=64, block_size=256),
        iterations=10,
        max_events_per_warp=1500,
    )


def _free_ports(count):
    sockets = [socket.socket() for _ in range(count)]
    try:
        for sock in sockets:
            sock.bind(("127.0.0.1", 0))
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


@pytest.fixture()
def traced_ring(tmp_path):
    """Two ring daemons, each writing its own trace and log files."""
    ring = sorted(f"127.0.0.1:{port}" for port in _free_ports(2))
    harnesses = {}
    for node in ring:
        port = node_address(node)[1]
        store = TuningStore(tmp_path / f"store-{port}.jsonl")
        harness = DaemonHarness(
            store,
            DaemonConfig(
                port=port,
                log_file=tmp_path / f"log-{port}.jsonl",
                cluster=ClusterConfig(
                    node_id=node, ring=ring, replicas=1
                ),
            ),
            trace_file=tmp_path / f"trace-{port}.jsonl",
        )
        harness.__enter__()
        harnesses[node] = harness
    try:
        yield ring, harnesses, tmp_path
    finally:
        for harness in harnesses.values():
            harness.__exit__(None, None, None)


def _trace_ids(events):
    return {
        event["data"]["trace"]
        for event in events
        if isinstance(event["data"].get("trace"), str)
    }


def read_events(path):
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
    ]


class TestForwardedTraceSpansBothDaemons:
    def test_one_trace_id_across_the_forward_hop(
        self, traced_ring, binary, workload, tmp_path
    ):
        ring, harnesses, trace_dir = traced_ring
        owner = HashRing(ring).owner(kernel_fingerprint(binary))
        entry = next(node for node in ring if node != owner)

        client_trace = tmp_path / "client.jsonl"
        hub = TelemetryHub(JsonlSink(client_trace))
        with use_hub(hub):
            response = TuningClient(
                port=node_address(entry)[1], timeout=60.0
            ).tune(binary, workload)
        hub.close()
        assert response["source"] == "tuned"
        assert response["node"] == owner

        client_events = read_events(client_trace)
        (trace_id,) = _trace_ids(client_events)
        per_node = {}
        for node in ring:
            port = node_address(node)[1]
            harnesses[node].engine.telemetry.flush()
            events = read_events(trace_dir / f"trace-{port}.jsonl")
            per_node[node] = [
                e for e in events if e["data"].get("trace") == trace_id
            ]
        # Both daemons saw the request under the client's trace id.
        assert all(per_node.values()), per_node
        # The owner actually ran the tune: engine spans joined the trace.
        owner_spans = {
            e["data"].get("name")
            for e in per_node[owner]
            if e["kind"] == "span_start"
        }
        assert {"daemon_request", "session"} <= owner_spans
        # The entry node only dispatched: request span, no session.
        entry_spans = {
            e["data"].get("name")
            for e in per_node[entry]
            if e["kind"] == "span_start"
        }
        assert "daemon_request" in entry_spans
        assert "session" not in entry_spans

    def test_merge_joins_the_files_into_one_causal_timeline(
        self, traced_ring, binary, workload, tmp_path
    ):
        ring, harnesses, trace_dir = traced_ring
        owner = HashRing(ring).owner(kernel_fingerprint(binary))
        entry = next(node for node in ring if node != owner)
        client_trace = tmp_path / "client.jsonl"
        hub = TelemetryHub(JsonlSink(client_trace))
        with use_hub(hub):
            TuningClient(
                port=node_address(entry)[1], timeout=60.0
            ).tune(binary, workload)
        hub.close()

        traces = {"client": read_events(client_trace)}
        for node in ring:
            port = node_address(node)[1]
            harnesses[node].engine.telemetry.flush()
            traces[f"n{port}"] = read_events(
                trace_dir / f"trace-{port}.jsonl"
            )
        merged = tracefile.merge_traces(traces)
        (trace_id,) = _trace_ids(traces["client"])
        hops = [e for e in merged if e["data"].get("trace") == trace_id]
        assert len({e["node"] for e in hops}) >= 2
        # Cause before effect: the client's request span starts first.
        first = min(hops, key=lambda e: e["ts"])
        assert first["node"] == "client"
        # And the whole thing renders as one Chrome document.
        doc = tracefile.merged_to_chrome(merged)
        processes = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "client" in processes and len(processes) == len(traces)


class TestDaemonSideTracing:
    def test_traced_daemon_mints_ids_for_untraced_clients(
        self, tmp_path
    ):
        store = TuningStore(tmp_path / "s.jsonl")
        trace_file = tmp_path / "d.jsonl"
        with DaemonHarness(store, trace_file=trace_file) as harness:
            harness.client().ping()
            harness.engine.telemetry.flush()
            events = read_events(trace_file)
        assert len(_trace_ids(events)) == 1

    def test_untraced_daemon_stays_untraced(self, tmp_path):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            client = harness.client()
            client.ping()
            # The wire carries no trace fields either way; the daemon
            # leaves the response untouched.
            response = client.request(protocol.request("ping"))
        assert "trace_id" not in response

    def test_wire_parent_span_lands_on_the_daemon_span(self, tmp_path):
        store = TuningStore(tmp_path / "s.jsonl")
        trace_file = tmp_path / "d.jsonl"
        with DaemonHarness(store, trace_file=trace_file) as harness:
            wire = protocol.stamp_trace(
                protocol.request("ping"), "ab" * 8, 41
            )
            harness.client().request(wire)
            harness.engine.telemetry.flush()
            events = read_events(trace_file)
        start = next(
            e
            for e in events
            if e["data"].get("name") == "daemon_request"
            and e["kind"] == "span_start"
        )
        assert start["data"]["trace"] == "ab" * 8
        assert start["data"]["parent_span"] == 41

    def test_request_exemplar_carries_the_trace_id(self, tmp_path):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(
            store, trace_file=tmp_path / "d.jsonl"
        ) as harness:
            harness.client().request(
                protocol.stamp_trace(protocol.request("ping"), "cd" * 8)
            )
        snapshot = get_registry().snapshot()
        family = next(
            f
            for f in snapshot["metrics"]
            if f["name"] == "orion_daemon_request_seconds"
        )
        exemplars = [
            s["exemplar"]["ref"]
            for s in family["samples"]
            if "exemplar" in s and s["labels"].get("type") == "ping"
        ]
        assert "cd" * 8 in exemplars


class TestClientSideTracing:
    def test_untraced_client_request_bytes_are_pristine(self, tmp_path):
        # No hub, no ambient context, trace unset: the encoded frame
        # must be byte-identical to the pre-tracing protocol.
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            client = harness.client()
            payload = client._attempts  # sanity: the untraced path
            assert client._trace_context() is None
        frame = protocol.encode_frame(protocol.request("ping"))
        assert frame[4:] == b'{"type": "ping", "v": 2}'
        assert payload  # silence the unused warning

    def test_explicit_trace_true_mints_without_a_hub(self, tmp_path):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            client = harness.client(trace=True)
            ctx = client._trace_context()
            assert ctx is not None and len(ctx.trace_id) == 16
            assert harness.client(trace=False)._trace_context() is None

    def test_ambient_context_wins_over_minting(self, tmp_path):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            client = harness.client(trace=True)
            with use_trace(TraceContext("fe" * 8, 3)):
                ctx = client._trace_context()
            assert ctx.trace_id == "fe" * 8
            assert ctx.parent_span_id == 3

    def test_client_latency_histogram_charges_by_outcome(self, tmp_path):
        def _count(outcome):
            family = next(
                (
                    f
                    for f in get_registry().snapshot()["metrics"]
                    if f["name"] == "orion_client_request_seconds"
                ),
                None,
            )
            if family is None:
                return 0.0
            return sum(
                s["count"]
                for s in family["samples"]
                if s["labels"] == {"type": "ping", "outcome": outcome}
            )

        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            before = _count("ok")
            harness.client().ping()
            assert _count("ok") == before + 1
