"""CLI surface of the service layer: serve, submit, store, fuzz --store."""

import json
import threading
import time

import pytest

from repro.cli import main
from repro.isa.assembly import format_module
from repro.service.client import TuningClient
from repro.service.store import TuningRecord, TuningStore
from tests.helpers import loop_kernel


@pytest.fixture()
def fat_binary(tmp_path):
    asm = tmp_path / "kernel.oras"
    asm.write_text(format_module(loop_kernel()))
    out = tmp_path / "fat.bin"
    assert main(
        [
            "compile",
            str(asm),
            "-o",
            str(out),
            "--block-size",
            "128",
            "--max-versions",
            "4",
        ]
    ) == 0
    return out


def seeded_store(path, keys=("a", "b")) -> TuningStore:
    store = TuningStore(path)
    for key in keys:
        store.put(
            TuningRecord(
                key=key,
                kernel="fp-" + key,
                kernel_name="k",
                arch="gtx680",
                backend="timing",
                winner_label="original",
                winner_warps=32,
                occupancy=0.5,
                total_cycles=100,
            )
        )
    return store


class TestStoreCommands:
    def test_stats(self, tmp_path, capsys):
        path = tmp_path / "s.jsonl"
        seeded_store(path)
        assert main(["store", str(path), "stats"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 2
        assert payload["schema_version"] == 1

    def test_export_to_file_and_stdout(self, tmp_path, capsys):
        path = tmp_path / "s.jsonl"
        seeded_store(path)
        out = tmp_path / "dump.json"
        assert main(["store", str(path), "export", "-o", str(out)]) == 0
        assert [r["key"] for r in json.loads(out.read_text())] == ["a", "b"]
        capsys.readouterr()
        assert main(["store", str(path), "export"]) == 0
        assert json.loads(capsys.readouterr().out)[0]["key"] == "a"

    def test_gc_compacts(self, tmp_path, capsys):
        path = tmp_path / "s.jsonl"
        store = seeded_store(path)
        for _ in range(5):
            store.get("a")
        assert main(["store", str(path), "gc"]) == 0
        assert "2 live record(s)" in capsys.readouterr().out
        assert len(path.read_text().splitlines()) == 3  # header + 2 puts


class TestServeSubmit:
    def test_cold_then_warm_submit_round_trip(
        self, tmp_path, fat_binary, capsys
    ):
        store_path = tmp_path / "s.jsonl"
        port_file = tmp_path / "port"
        serve = threading.Thread(
            target=main,
            args=(
                [
                    "serve",
                    "--store",
                    str(store_path),
                    "--port-file",
                    str(port_file),
                ],
            ),
            daemon=True,
        )
        serve.start()
        deadline = time.monotonic() + 15
        while not port_file.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert port_file.exists(), "daemon never wrote its port file"
        try:
            submit = [
                "submit",
                str(fat_binary),
                "--port-file",
                str(port_file),
                "--grid",
                "16",
                "--iterations",
                "6",
                "--max-events",
                "2000",
            ]
            assert main(submit) == 0
            cold = capsys.readouterr().out
            assert "source: tuned" in cold
            assert main(submit) == 0
            warm = capsys.readouterr().out
            assert "source: store" in warm
            assert main(submit + ["--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["source"] == "store"
            assert payload["record"]["winner_label"]
        finally:
            TuningClient(port_file=port_file).shutdown()
            serve.join(timeout=15)
        assert not serve.is_alive()
        assert len(TuningStore(store_path)) == 1

    def test_traced_serve_submit_merge_round_trip(
        self, tmp_path, fat_binary, capsys
    ):
        """The full distributed-tracing loop, driven via the CLI only:
        a traced daemon, a traced submit, one merged timeline."""
        store_path = tmp_path / "s.jsonl"
        port_file = tmp_path / "port"
        daemon_trace = tmp_path / "daemon.trace.jsonl"
        daemon_log = tmp_path / "daemon.log.jsonl"
        client_trace = tmp_path / "client.trace.jsonl"
        serve = threading.Thread(
            target=main,
            args=(
                [
                    "serve",
                    "--store", str(store_path),
                    "--port-file", str(port_file),
                    "--trace", str(daemon_trace),
                    "--log-file", str(daemon_log),
                ],
            ),
            daemon=True,
        )
        serve.start()
        deadline = time.monotonic() + 15
        while not port_file.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert port_file.exists(), "daemon never wrote its port file"
        try:
            assert main(
                [
                    "submit", str(fat_binary),
                    "--port-file", str(port_file),
                    "--grid", "16",
                    "--iterations", "6",
                    "--max-events", "2000",
                    "--trace", str(client_trace),
                ]
            ) == 0
        finally:
            TuningClient(port_file=port_file).shutdown()
            serve.join(timeout=15)
        capsys.readouterr()

        merged = tmp_path / "merged.json"
        assert main(
            [
                "trace", "merge",
                f"client={client_trace}", f"daemon={daemon_trace}",
                "--format", "chrome", "-o", str(merged),
            ]
        ) == 0
        out = capsys.readouterr().out
        # The client's minted trace id reached the daemon's file.
        assert "(1 cross-node)" in out
        document = json.loads(merged.read_text())
        names = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert names == {"client", "daemon"}
        # The structured log recorded the daemon lifecycle.
        log = [
            json.loads(line)
            for line in daemon_log.read_text().splitlines()
        ]
        events = [record["event"] for record in log]
        assert "daemon_listening" in events
        assert "daemon_stopped" in events

    def test_submit_degrades_without_a_daemon(
        self, tmp_path, fat_binary, capsys
    ):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            dead_port = sock.getsockname()[1]
        code = main(
            [
                "submit",
                str(fat_binary),
                "--port",
                str(dead_port),
                "--grid",
                "16",
                "--iterations",
                "6",
                "--max-events",
                "2000",
                "--retries",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "source: local" in out
        assert "degraded to local tuning" in out

    def test_submit_no_fallback_errors(self, tmp_path, fat_binary, capsys):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            dead_port = sock.getsockname()[1]
        code = main(
            [
                "submit",
                str(fat_binary),
                "--port",
                str(dead_port),
                "--retries",
                "0",
                "--no-fallback",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestRingCli:
    @staticmethod
    def _free_ports(count):
        import socket

        sockets = [socket.socket() for _ in range(count)]
        try:
            for sock in sockets:
                sock.bind(("127.0.0.1", 0))
            return [sock.getsockname()[1] for sock in sockets]
        finally:
            for sock in sockets:
                sock.close()

    def test_serve_ring_requires_identity(self, tmp_path, capsys):
        code = main(
            [
                "serve",
                "--store",
                str(tmp_path / "s.jsonl"),
                "--ring",
                "127.0.0.1:1,127.0.0.1:2",
            ]
        )
        assert code == 1
        assert "--node-id" in capsys.readouterr().err

    def test_submit_and_loadtest_across_a_cli_ring(
        self, tmp_path, fat_binary, capsys
    ):
        ports = self._free_ports(2)
        ring = ",".join(f"127.0.0.1:{port}" for port in ports)
        threads = []
        for port in ports:
            thread = threading.Thread(
                target=main,
                args=(
                    [
                        "serve",
                        "--store",
                        str(tmp_path / f"store-{port}.jsonl"),
                        "--port",
                        str(port),
                        "--ring",
                        ring,
                    ],
                ),
                daemon=True,
            )
            thread.start()
            threads.append(thread)
        deadline = time.monotonic() + 15
        ready = set()
        while len(ready) < len(ports) and time.monotonic() < deadline:
            for port in ports:
                if port in ready:
                    continue
                try:
                    TuningClient(port=port, retries=0).ping()
                    ready.add(port)
                except OSError:
                    pass
            time.sleep(0.02)
        assert len(ready) == len(ports), "ring daemons never came up"
        try:
            submit = [
                "submit",
                str(fat_binary),
                "--ring",
                ring,
                "--grid",
                "16",
                "--iterations",
                "6",
                "--max-events",
                "2000",
            ]
            assert main(submit) == 0
            assert "source: tuned" in capsys.readouterr().out
            assert (
                main(
                    [
                        "loadtest",
                        str(fat_binary),
                        "--ring",
                        ring,
                        "--requests",
                        "12",
                        "--clients",
                        "3",
                        "--grid",
                        "16",
                        "--iterations",
                        "6",
                        "--max-events",
                        "2000",
                        "--json",
                    ]
                )
                == 0
            )
            summary = json.loads(capsys.readouterr().out)
            assert summary["ok"] == 12
            assert summary["dropped"] == 0
            assert summary["p99_ms"] > 0
            assert summary["sources"].get("store", 0) >= 11
        finally:
            for port in ports:
                try:
                    TuningClient(port=port, retries=0).shutdown()
                except OSError:
                    pass
            for thread in threads:
                thread.join(timeout=15)
        assert not any(thread.is_alive() for thread in threads)


class TestFuzzStoreFlag:
    def test_fuzz_with_store(self, tmp_path, capsys):
        path = tmp_path / "fuzz.jsonl"
        code = main(
            [
                "fuzz",
                "--cases",
                "2",
                "--shape",
                "straight",
                "--quiet",
                "--store",
                str(path),
            ]
        )
        assert code == 0
        assert len(TuningStore(path)) == 2
