"""Cluster tests: ring placement, forwarding, replication, failover.

Unit tests cover the :class:`HashRing` math and config validation;
integration tests run several real daemons in one process (each on its
own background event loop, exactly like the single-daemon tests) wired
into a shared ring, and drive them with the real clients.
"""

import socket
import time

import pytest

from repro.arch import GTX680
from repro.compiler import CompileOptions, compile_binary
from repro.obs.metrics import get_registry
from repro.runtime import Workload
from repro.service import protocol
from repro.service.client import (
    MIN_BACKOFF,
    RingClient,
    ServiceRejected,
    TuningClient,
)
from repro.service.cluster import (
    ClusterConfig,
    HashRing,
    RingError,
    node_address,
    parse_ring,
)
from repro.service.daemon import DaemonConfig
from repro.service.fingerprint import kernel_fingerprint
from repro.service.store import TuningStore
from repro.sim import LaunchConfig
from tests.runtime.test_launcher import pressure_module
from tests.service.test_daemon import DaemonHarness


@pytest.fixture(scope="module")
def binary():
    return compile_binary(
        pressure_module(), "k", CompileOptions(arch=GTX680)
    )


@pytest.fixture()
def workload():
    return Workload(
        launch=LaunchConfig(grid_blocks=64, block_size=256),
        iterations=10,
        max_events_per_warp=1500,
    )


def _backend_invocations() -> float:
    counter = get_registry().counter(
        "orion_backend_invocations_total",
        "Backend measurements actually executed (cache misses).",
    )
    return counter.value(backend="timing")


# ----------------------------------------------------------------------
# Ring math
# ----------------------------------------------------------------------
class TestParseRing:
    def test_sorts_and_dedupes(self):
        assert parse_ring("b:2, a:1 ,a:1,") == ["a:1", "b:2"]
        assert parse_ring(["b:2", "a:1"]) == ["a:1", "b:2"]

    def test_rejects_empty_and_malformed(self):
        with pytest.raises(RingError, match="no nodes"):
            parse_ring(" , ,")
        for bad in ("hostonly", "host:", ":123", "host:abc"):
            with pytest.raises(RingError, match="host:port"):
                parse_ring(bad)

    def test_node_address(self):
        assert node_address("10.0.0.1:7301") == ("10.0.0.1", 7301)


class TestHashRing:
    RING = ["n1:1", "n2:2", "n3:3"]

    def test_placement_is_deterministic_across_instances(self):
        a, b = HashRing(self.RING), HashRing(list(reversed(self.RING)))
        for i in range(200):
            key = f"kernel-{i}"
            assert a.owner(key) == b.owner(key)
            assert a.replicas(key, 1) == b.replicas(key, 1)

    def test_every_node_owns_some_keyspace(self):
        ring = HashRing(self.RING)
        owners = {ring.owner(f"kernel-{i}") for i in range(500)}
        assert owners == set(self.RING)

    def test_replicas_are_distinct_and_owner_first(self):
        ring = HashRing(self.RING)
        for i in range(50):
            key = f"kernel-{i}"
            replicas = ring.replicas(key, 2)
            assert replicas[0] == ring.owner(key)
            assert len(replicas) == len(set(replicas)) == 3

    def test_replica_count_clamped_to_ring_size(self):
        ring = HashRing(self.RING)
        assert len(ring.replicas("k", 99)) == 3
        assert ring.replicas("k", 0) == [ring.owner("k")]

    def test_single_node_ring_owns_everything(self):
        ring = HashRing(["solo:1"])
        assert ring.owner("anything") == "solo:1"
        assert ring.replicas("anything", 5) == ["solo:1"]

    def test_rejects_bad_vnodes(self):
        with pytest.raises(RingError, match="vnodes"):
            HashRing(self.RING, vnodes=0)


class TestClusterConfig:
    def test_node_must_be_a_member(self):
        with pytest.raises(RingError, match="not a ring member"):
            ClusterConfig(node_id="x:9", ring=["a:1", "b:2"])

    def test_rejects_negative_replicas(self):
        with pytest.raises(RingError, match="replicas"):
            ClusterConfig(node_id="a:1", ring=["a:1"], replicas=-1)

    def test_peers_and_max_hops(self):
        config = ClusterConfig(node_id="b:2", ring=["a:1", "b:2", "c:3"])
        assert config.peers == ["a:1", "c:3"]
        assert config.max_hops == 3


class TestRingClientRouting:
    def test_route_order_is_owner_then_successors(self):
        ring = RingClient("a:1,b:2,c:3")
        order = ring.route_order("some-kernel-fp")
        assert order[0] == ring.ring.owner("some-kernel-fp")
        assert sorted(order) == ["a:1", "b:2", "c:3"]


# ----------------------------------------------------------------------
# Client backoff floor (regression: _delay could return 0 and hot-loop)
# ----------------------------------------------------------------------
class TestRetryBackoffFloor:
    def test_zero_backoff_is_floored(self):
        client = TuningClient(port=1, backoff=0.0)
        assert client._delay(None, 1) >= MIN_BACKOFF
        assert client._delay(None, 2) >= MIN_BACKOFF

    def test_zero_retry_after_hint_is_floored(self):
        client = TuningClient(port=1)
        rejected = ServiceRejected("queue-full", "busy")
        rejected.retry_after = 0.0
        assert client._delay(rejected, 1) >= MIN_BACKOFF

    def test_honest_hints_and_backoffs_pass_through(self):
        client = TuningClient(port=1, backoff=0.05)
        rejected = ServiceRejected("queue-full", "busy")
        rejected.retry_after = 0.5
        assert client._delay(rejected, 1) == 0.5
        assert client._delay(None, 2) == pytest.approx(0.1)


# ----------------------------------------------------------------------
# Multi-daemon integration
# ----------------------------------------------------------------------
def _free_ports(count: int) -> list[int]:
    sockets = [socket.socket() for _ in range(count)]
    try:
        for sock in sockets:
            sock.bind(("127.0.0.1", 0))
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class RingCluster:
    """N real daemons sharing one ring, each on its own loop thread."""

    def __init__(self, tmp_path, size=3, replicas=2, start_all=True):
        self.tmp_path = tmp_path
        self.replicas = replicas
        self.ring = sorted(
            f"127.0.0.1:{port}" for port in _free_ports(size)
        )
        self.harnesses: dict[str, DaemonHarness] = {}
        if start_all:
            for node in self.ring:
                self.start(node)

    def start(self, node: str) -> DaemonHarness:
        port = node_address(node)[1]
        store = TuningStore(self.tmp_path / f"store-{port}.jsonl")
        config = DaemonConfig(
            port=port,
            cluster=ClusterConfig(
                node_id=node, ring=self.ring, replicas=self.replicas
            ),
        )
        harness = DaemonHarness(store, config)
        harness.__enter__()
        self.harnesses[node] = harness
        return harness

    def stop(self, node: str) -> None:
        harness = self.harnesses.pop(node, None)
        if harness is not None:
            harness.__exit__(None, None, None)

    def stop_all(self) -> None:
        for node in list(self.harnesses):
            self.stop(node)

    def client(self, node: str, **kwargs) -> TuningClient:
        return self.harnesses[node].client(**kwargs)

    def ring_client(self, **kwargs) -> RingClient:
        return RingClient(self.ring, **kwargs)

    def owner_of(self, fp: str) -> str:
        return HashRing(self.ring).owner(fp)

    def wait_replicated(self, key: str, nodes, timeout: float = 10.0):
        """Poll each node's *local* store view until the key lands."""
        deadline = time.monotonic() + timeout
        missing = list(nodes)
        while missing and time.monotonic() < deadline:
            missing = [
                node
                for node in missing
                if not self.client(node).query(key).get("found")
            ]
            if missing:
                time.sleep(0.05)
        assert not missing, f"key never replicated to {missing}"


@pytest.fixture()
def cluster(tmp_path):
    ring = RingCluster(tmp_path)
    try:
        yield ring
    finally:
        ring.stop_all()


class TestClusterIntegration:
    def test_submit_through_non_owner_forwards_then_all_nodes_warm(
        self, cluster, binary, workload
    ):
        fp = kernel_fingerprint(binary)
        owner = cluster.owner_of(fp)
        entry = next(node for node in cluster.ring if node != owner)
        response = cluster.client(entry, timeout=60.0).tune(binary, workload)
        # The cold tune ran on the owner, not on the entry node.
        assert response["source"] == "tuned"
        assert response["node"] == owner
        key = response["key"]
        # replicas=2 on a 3-node ring: every node ends up with a copy.
        cluster.wait_replicated(key, cluster.ring)
        before = _backend_invocations()
        for node in cluster.ring:
            warm = cluster.client(node, timeout=60.0).tune(binary, workload)
            assert warm["source"] == "store"
            assert warm["node"] == node  # served locally, no forward
        assert _backend_invocations() == before  # zero-trial warm hits

    def test_invalidate_broadcasts_ring_wide(
        self, cluster, binary, workload
    ):
        entry = cluster.ring[0]
        response = cluster.client(entry, timeout=60.0).tune(binary, workload)
        key = response["key"]
        cluster.wait_replicated(key, cluster.ring)
        cluster.client(cluster.ring[-1]).invalidate(key)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            holders = [
                node
                for node in cluster.ring
                if cluster.client(node).query(key).get("found")
            ]
            if not holders:
                break
            time.sleep(0.05)
        assert not holders, f"{holders} still hold the invalidated key"

    def test_misplaced_query_forwards_via_kernel_hint(
        self, cluster, binary, workload
    ):
        fp = kernel_fingerprint(binary)
        owner = cluster.owner_of(fp)
        key = cluster.client(owner, timeout=60.0).tune(binary, workload)[
            "key"
        ]
        other = next(node for node in cluster.ring if node != owner)
        # Without the hint the lookup is local-only; with it, a local
        # miss is forwarded to the owner.  (Replication may also land a
        # local copy — either way the hinted query must find it.)
        hinted = cluster.client(other).query(key, kernel=fp)
        assert hinted["found"] is True

    def test_forward_loop_guard_rejects_excess_hops(self, cluster):
        node = cluster.ring[0]
        inner = protocol.request("query", key="nope")
        response = cluster.client(node).request(
            protocol.request("forward", hops=99, request=inner)
        )
        assert response["ok"] is False
        assert response["code"] == protocol.CODE_FORWARD_LOOP

    def test_forward_cannot_wrap_cluster_verbs(self, cluster):
        node = cluster.ring[0]
        nested = protocol.request(
            "forward", hops=1, request=protocol.request("ping")
        )
        response = cluster.client(node).request(
            protocol.request("forward", hops=1, request=nested)
        )
        assert response["ok"] is False
        assert response["code"] == protocol.CODE_BAD_REQUEST

    def test_late_starting_node_pull_syncs(
        self, tmp_path, binary, workload
    ):
        cluster = RingCluster(tmp_path, start_all=False)
        try:
            late = cluster.ring[-1]
            for node in cluster.ring[:-1]:
                cluster.start(node)
            key = cluster.client(
                cluster.ring[0], timeout=60.0
            ).tune(binary, workload)["key"]
            cluster.wait_replicated(key, cluster.ring[:-1])
            cluster.start(late)
            cluster.wait_replicated(key, [late])
        finally:
            cluster.stop_all()

    def test_client_fails_over_when_owner_dies(
        self, cluster, binary, workload
    ):
        ring_client = cluster.ring_client(timeout=60.0, retries=0)
        first = ring_client.tune(binary, workload)
        assert first["source"] == "tuned"
        cluster.wait_replicated(first["key"], cluster.ring)
        owner = cluster.owner_of(kernel_fingerprint(binary))
        cluster.stop(owner)
        survivor = cluster.ring_client(timeout=60.0, retries=0)
        warm = survivor.tune(binary, workload)
        assert warm["source"] == "store"
        assert warm["node"] != owner

    def test_dead_owner_degrades_to_local_tune(
        self, cluster, binary, workload
    ):
        # The *daemon-side* self-healing: a node that cannot reach the
        # owner of a cold key tunes locally instead of failing.
        owner = cluster.owner_of(kernel_fingerprint(binary))
        cluster.stop(owner)
        entry = next(node for node in cluster.ring if node != owner)
        response = cluster.client(entry, timeout=60.0).tune(
            binary, workload
        )
        assert response["source"] == "tuned"
        assert response["node"] == entry

    def test_stats_and_health_report_cluster_state(self, cluster):
        import asyncio

        node = cluster.ring[0]
        stats = cluster.client(node).stats()
        assert stats["cluster"]["node_id"] == node
        assert stats["cluster"]["ring"] == cluster.ring
        assert stats["cluster"]["replicas"] == 2
        harness = cluster.harnesses[node]
        health = asyncio.run_coroutine_threadsafe(
            harness.daemon.health(), harness._loop
        ).result(timeout=10)
        assert health["ok"] is True
        assert health["cluster"]["node_id"] == node


class TestSingleDaemonUnchanged:
    """No ``--ring``: responses must look exactly like before."""

    def test_no_node_field_without_cluster(
        self, tmp_path, binary, workload
    ):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            client = harness.client(timeout=60.0)
            tuned = client.tune(binary, workload)
            assert "node" not in tuned
            assert "node" not in client.query(tuned["key"])
            assert "node" not in client.stats()
            assert "cluster" not in client.stats()

    def test_v1_ping_bytes_identical(self, tmp_path):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            with socket.create_connection(
                ("127.0.0.1", harness.port)
            ) as sock:
                protocol.send_frame(sock, {"v": 1, "type": "ping"})
                assert protocol.recv_frame(sock) == {
                    "ok": True,
                    "version": 1,
                }

    def test_cluster_verbs_rejected_without_cluster(self, tmp_path):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            client = harness.client()
            for verb in ("forward", "replicate", "sync"):
                response = client.request(protocol.request(verb))
                assert response["ok"] is False
                assert response["code"] == protocol.CODE_BAD_REQUEST
