"""Engine-level warm starts: the tuning store inside ExecutionEngine.

The daemon path (tests/service/test_daemon.py) proves a store hit needs
zero measurements; this file proves the *in-process* path — an engine
handed a store skips the candidate walk entirely (no TRIAL events,
``iterations_to_converge == 0``) and cold engines publish their winners
for the next process to reuse.
"""

import pytest

from repro.arch import GTX680
from repro.compiler import CompileOptions, compile_binary
from repro.obs.metrics import get_registry
from repro.runtime import Workload
from repro.runtime.engine import ExecutionEngine
from repro.runtime.session import TuningSession
from repro.runtime.telemetry import EventKind, InMemorySink, TelemetryHub
from repro.service.store import TuningRecord, TuningStore
from repro.sim import LaunchConfig
from tests.runtime.test_launcher import pressure_module


@pytest.fixture(scope="module")
def binary():
    return compile_binary(pressure_module(), "k", CompileOptions(arch=GTX680))


@pytest.fixture()
def workload():
    return Workload(
        launch=LaunchConfig(grid_blocks=64, block_size=256),
        iterations=10,
        max_events_per_warp=1500,
    )


def engine_with_sink(store):
    sink = InMemorySink()
    engine = ExecutionEngine(
        GTX680, telemetry=TelemetryHub(sink), tuning_store=store
    )
    return engine, sink


class TestColdPublish:
    def test_cold_run_publishes_winner(self, tmp_path, binary, workload):
        store = TuningStore(tmp_path / "s.jsonl")
        engine, sink = engine_with_sink(store)
        report = engine.run(TuningSession(binary, workload))
        assert len(store) == 1
        stored = store.peek(store.keys()[0])
        assert stored.winner_label == report.final_label
        assert stored.total_cycles == report.total_cycles
        assert stored.iterations_to_converge == report.iterations_to_converge
        assert sink.of(EventKind.WARM_START) == []

    def test_no_store_means_no_publishing(self, binary, workload):
        engine, _ = engine_with_sink(None)
        engine.run(TuningSession(binary, workload))
        assert engine.tuning_store is None


class TestWarmStart:
    def test_fresh_engine_skips_the_candidate_walk(
        self, tmp_path, binary, workload
    ):
        store_path = tmp_path / "s.jsonl"
        cold_engine, cold_sink = engine_with_sink(TuningStore(store_path))
        cold_report = cold_engine.run(TuningSession(binary, workload))
        assert cold_sink.count(EventKind.TRIAL) > 0

        # A brand-new engine and store instance: only the file carries over.
        warm_engine, warm_sink = engine_with_sink(TuningStore(store_path))
        session = TuningSession(binary, workload)
        warm_report = warm_engine.run(session)

        assert session.warm_started_from == cold_report.final_label
        assert warm_report.final_label == cold_report.final_label
        assert warm_report.iterations_to_converge == 0
        assert warm_sink.count(EventKind.TRIAL) == 0
        warm_events = warm_sink.of(EventKind.WARM_START)
        assert len(warm_events) == 1
        assert warm_events[0].data["label"] == cold_report.final_label

    def test_warm_run_does_not_republish(self, tmp_path, binary, workload):
        store_path = tmp_path / "s.jsonl"
        cold_engine, _ = engine_with_sink(TuningStore(store_path))
        cold_engine.run(TuningSession(binary, workload))

        warm_store = TuningStore(store_path)
        warm_engine, _ = engine_with_sink(warm_store)
        warm_engine.run(TuningSession(binary, workload))
        assert warm_store.stats().puts == 0

    def test_warm_start_counted(self, tmp_path, binary, workload):
        counter = get_registry().counter(
            "orion_warm_starts_total",
            "Tuning-store warm-start attempts by result.",
        )
        store = TuningStore(tmp_path / "s.jsonl")
        engine, _ = engine_with_sink(store)
        misses = counter.value(result="miss")
        engine.run(TuningSession(binary, workload))
        assert counter.value(result="miss") == misses + 1
        hits = counter.value(result="hit")
        engine.run(TuningSession(binary, workload))
        assert counter.value(result="hit") == hits + 1


class TestStaleRecords:
    def test_stale_winner_is_invalidated_and_replaced(
        self, tmp_path, binary, workload
    ):
        store = TuningStore(tmp_path / "s.jsonl")
        engine, sink = engine_with_sink(store)
        key = engine._tuning_key(TuningSession(binary, workload))
        stale = TuningRecord(
            key=key,
            kernel="whatever",
            kernel_name="k",
            arch=GTX680.name,
            backend="timing",
            winner_label="a version this binary never had",
            winner_warps=1,
            occupancy=0.1,
            total_cycles=1,
        )
        store.put(stale)
        counter = get_registry().counter(
            "orion_warm_starts_total",
            "Tuning-store warm-start attempts by result.",
        )
        before = counter.value(result="stale")
        session = TuningSession(binary, workload)
        report = engine.run(session)
        assert counter.value(result="stale") == before + 1
        # The tuner walked candidates normally...
        assert session.warm_started_from is None
        assert sink.count(EventKind.TRIAL) > 0
        # ...and the fresh winner replaced the stale record.
        replaced = store.peek(key)
        assert replaced.winner_label == report.final_label


class TestEnvResolution:
    def test_engine_resolves_store_from_env(
        self, tmp_path, monkeypatch, binary, workload
    ):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv("ORION_TUNING_STORE", str(path))
        engine = ExecutionEngine(GTX680)
        assert isinstance(engine.tuning_store, TuningStore)
        engine.run(TuningSession(binary, workload))
        assert len(TuningStore(path)) == 1

    def test_static_sessions_skip_the_store(self, tmp_path, workload):
        untunable = compile_binary(
            pressure_module(),
            "k",
            CompileOptions(arch=GTX680, can_tune=False),
        )
        store = TuningStore(tmp_path / "s.jsonl")
        engine, sink = engine_with_sink(store)
        engine.run(TuningSession(untunable, workload))
        assert len(store) == 0
        assert sink.of(EventKind.WARM_START) == []
