"""HTTP sidecar tests: /metrics and /healthz next to a real daemon."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.service.daemon import DaemonConfig
from repro.service.store import TuningStore
from tests.service.test_daemon import DaemonHarness


@pytest.fixture()
def http_daemon(tmp_path):
    store = TuningStore(tmp_path / "s.jsonl")
    with DaemonHarness(store, DaemonConfig(http_port=0)) as harness:
        assert harness.daemon.http_port
        yield harness


def _get(harness, path: str):
    url = f"http://127.0.0.1:{harness.daemon.http_port}{path}"
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers, response.read()


class TestHttpAdmin:
    def test_metrics_is_prometheus_text(self, http_daemon):
        http_daemon.client().ping()  # generate at least one sample
        status, headers, body = _get(http_daemon, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "# TYPE orion_daemon_requests_total counter" in text
        assert 'orion_daemon_requests_total{' in text

    def test_healthz_reports_ok_json(self, http_daemon):
        status, headers, body = _get(http_daemon, "/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        health = json.loads(body)
        assert health["ok"] is True
        assert health["draining"] is False
        assert health["store_entries"] == 0
        assert health["pending"] == 0

    def test_unknown_path_is_404(self, http_daemon):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(http_daemon, "/nope")
        assert excinfo.value.code == 404

    def test_non_get_is_405(self, http_daemon):
        request = urllib.request.Request(
            f"http://127.0.0.1:{http_daemon.daemon.http_port}/metrics",
            data=b"x",  # makes it a POST
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405

    def test_malformed_request_line_is_400(self, http_daemon):
        with socket.create_connection(
            ("127.0.0.1", http_daemon.daemon.http_port), timeout=10
        ) as sock:
            sock.sendall(b"garbage\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400")

    def test_http_off_by_default(self, tmp_path):
        store = TuningStore(tmp_path / "s2.jsonl")
        with DaemonHarness(store) as harness:
            assert harness.daemon.http_port is None
            assert harness.daemon.http is None

    def test_every_response_carries_a_date_header(self, http_daemon):
        for path in ("/metrics", "/healthz", "/debug/requests"):
            _, headers, _ = _get(http_daemon, path)
            # RFC-style IMF-fixdate, always GMT.
            assert headers["Date"].endswith(" GMT")

    def test_head_matches_get_headers_with_empty_body(self, http_daemon):
        http_daemon.client().ping()
        get_status, get_headers, get_body = _get(http_daemon, "/metrics")
        request = urllib.request.Request(
            f"http://127.0.0.1:{http_daemon.daemon.http_port}/metrics",
            method="HEAD",
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == get_status
            assert response.read() == b""
            # Content-Length still describes the GET body (RFC 9110).
            assert int(response.headers["Content-Length"]) == len(get_body)
            assert (
                response.headers["Content-Type"]
                == get_headers["Content-Type"]
            )

    def test_head_on_404_is_empty_too(self, http_daemon):
        request = urllib.request.Request(
            f"http://127.0.0.1:{http_daemon.daemon.http_port}/nope",
            method="HEAD",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404
        assert excinfo.value.read() == b""
        assert int(excinfo.value.headers["Content-Length"]) > 0


class TestCliScrape:
    def test_metrics_url_scrapes_a_live_daemon(self, http_daemon, capsys):
        from repro.cli import main

        http_daemon.client().ping()
        code = main(
            ["metrics", "--url",
             f"127.0.0.1:{http_daemon.daemon.http_port}"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE orion_daemon_requests_total counter" in out


class TestDebugEndpoints:
    def test_debug_requests_reflects_recent_traffic(self, http_daemon):
        http_daemon.client().ping()
        http_daemon.client().query("ab" * 32)
        status, headers, body = _get(http_daemon, "/debug/requests")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        doc = json.loads(body)
        assert doc["capacity"] == 128
        assert doc["total"] >= 2
        by_type = {entry["type"]: entry for entry in doc["entries"]}
        assert by_type["ping"]["outcome"] == "ok"
        assert by_type["query"]["outcome"] == "miss"
        for entry in doc["entries"]:
            assert isinstance(entry["ms"], float)
            assert entry["n"] >= 1

    def test_debug_vars_bundles_health_and_metrics(self, http_daemon):
        http_daemon.client().ping()
        _, _, body = _get(http_daemon, "/debug/vars")
        doc = json.loads(body)
        assert doc["health"]["ok"] is True
        names = {m["name"] for m in doc["metrics"]}
        assert "orion_daemon_requests_total" in names

    def test_debug_trace_404_when_untraced(self, http_daemon):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(http_daemon, "/debug/trace")
        assert excinfo.value.code == 404

    def test_debug_trace_serves_the_flushed_trace_file(self, tmp_path):
        store = TuningStore(tmp_path / "s3.jsonl")
        with DaemonHarness(
            store,
            DaemonConfig(http_port=0),
            trace_file=tmp_path / "daemon.trace.jsonl",
        ) as harness:
            harness.client().ping()
            _, headers, body = _get(harness, "/debug/trace")
        assert headers["Content-Type"] == "application/x-ndjson"
        events = [
            json.loads(line) for line in body.decode("utf-8").splitlines()
        ]
        assert any(
            e["data"].get("name") == "daemon_request" for e in events
        )
        # A traced daemon mints ids even for untraced clients.
        assert any(
            isinstance(e["data"].get("trace"), str) for e in events
        )
