"""HTTP sidecar tests: /metrics and /healthz next to a real daemon."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.service.daemon import DaemonConfig
from repro.service.store import TuningStore
from tests.service.test_daemon import DaemonHarness


@pytest.fixture()
def http_daemon(tmp_path):
    store = TuningStore(tmp_path / "s.jsonl")
    with DaemonHarness(store, DaemonConfig(http_port=0)) as harness:
        assert harness.daemon.http_port
        yield harness


def _get(harness, path: str):
    url = f"http://127.0.0.1:{harness.daemon.http_port}{path}"
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.headers, response.read()


class TestHttpAdmin:
    def test_metrics_is_prometheus_text(self, http_daemon):
        http_daemon.client().ping()  # generate at least one sample
        status, headers, body = _get(http_daemon, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        assert "# TYPE orion_daemon_requests_total counter" in text
        assert 'orion_daemon_requests_total{' in text

    def test_healthz_reports_ok_json(self, http_daemon):
        status, headers, body = _get(http_daemon, "/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        health = json.loads(body)
        assert health["ok"] is True
        assert health["draining"] is False
        assert health["store_entries"] == 0
        assert health["pending"] == 0

    def test_unknown_path_is_404(self, http_daemon):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(http_daemon, "/nope")
        assert excinfo.value.code == 404

    def test_non_get_is_405(self, http_daemon):
        request = urllib.request.Request(
            f"http://127.0.0.1:{http_daemon.daemon.http_port}/metrics",
            data=b"x",  # makes it a POST
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405

    def test_malformed_request_line_is_400(self, http_daemon):
        with socket.create_connection(
            ("127.0.0.1", http_daemon.daemon.http_port), timeout=10
        ) as sock:
            sock.sendall(b"garbage\r\n\r\n")
            reply = sock.recv(4096)
        assert reply.startswith(b"HTTP/1.1 400")

    def test_http_off_by_default(self, tmp_path):
        store = TuningStore(tmp_path / "s2.jsonl")
        with DaemonHarness(store) as harness:
            assert harness.daemon.http_port is None
            assert harness.daemon.http is None
