"""Daemon end-to-end tests: warm starts, failure modes, load discipline.

Each test runs a real :class:`TuningDaemon` on an ephemeral localhost
port inside a background event-loop thread, and talks to it with the
real sync client — the same bytes CI's service job pushes over the
socket.
"""

import asyncio
import socket
import struct
import threading
import time

import pytest

from repro.arch import GTX680
from repro.compiler import CompileOptions, compile_binary
from repro.obs.metrics import get_registry
from repro.runtime import Workload
from repro.runtime.engine import ExecutionEngine
from repro.service import protocol
from repro.service.client import (
    ServiceRejected,
    ServiceUnavailable,
    TuningClient,
    tune_with_fallback,
)
from repro.service.daemon import DaemonConfig, TuningDaemon
from repro.service.store import TuningStore
from repro.sim import LaunchConfig
from repro.sim.backend import get_backend
from tests.runtime.test_launcher import pressure_module


@pytest.fixture(scope="module")
def binary():
    return compile_binary(
        pressure_module(), "k", CompileOptions(arch=GTX680)
    )


@pytest.fixture()
def workload():
    return Workload(
        launch=LaunchConfig(grid_blocks=64, block_size=256),
        iterations=10,
        max_events_per_warp=1500,
    )


class SlowBackend:
    """The timing backend with an artificial per-measurement delay."""

    name = "timing"

    def __init__(self, delay: float) -> None:
        self.delay = delay
        self._inner = get_backend("timing")

    def measure(self, request):
        time.sleep(self.delay)
        return self._inner.measure(request)


class DaemonHarness:
    """A daemon on a background event-loop thread, stopped on exit."""

    def __init__(self, store, config=None, backend="timing", trace_file=None):
        self.engine = ExecutionEngine(
            GTX680, backend=backend, tuning_store=store,
            trace_file=trace_file,
        )
        self.daemon = TuningDaemon(self.engine, store, config)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    def __enter__(self) -> "DaemonHarness":
        started = threading.Event()

        def run() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)

            async def go() -> None:
                await self.daemon.start()
                started.set()
                await self.daemon.serve_forever()

            self._loop.run_until_complete(go())
            self._loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert started.wait(10), "daemon failed to start"
        return self

    def __exit__(self, *exc) -> None:
        if self._loop is not None and not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self.daemon.stop)
        self._thread.join(timeout=10)

    @property
    def port(self) -> int:
        return self.daemon.port

    def client(self, **kwargs) -> TuningClient:
        return TuningClient(port=self.port, **kwargs)


def _backend_invocations() -> float:
    counter = get_registry().counter(
        "orion_backend_invocations_total",
        "Backend measurements actually executed (cache misses).",
    )
    return counter.value(backend="timing")


class TestWarmStartViaDaemon:
    def test_second_submit_is_a_store_hit_with_zero_measurements(
        self, tmp_path, binary, workload
    ):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            first = harness.client().tune(binary, workload)
            assert first["source"] == "tuned"
            assert first["record"]["winner_label"]
            before = _backend_invocations()
            # A brand-new client: nothing carries over but the store.
            second = harness.client().tune(binary, workload)
            assert second["source"] == "store"
            assert second["key"] == first["key"]
            assert second["record"] == first["record"]
            # The warm path never touched a measurement backend.
            assert _backend_invocations() == before

    def test_cold_tune_writes_the_record_once(
        self, tmp_path, binary, workload
    ):
        """The engine publishes the winner; the daemon must not append
        an identical second put for the same key."""
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            assert harness.client().tune(binary, workload)["source"] == "tuned"
        assert store.stats().puts == 1
        assert len(store) == 1

    def test_warm_hit_survives_daemon_restart(
        self, tmp_path, binary, workload
    ):
        store_path = tmp_path / "s.jsonl"
        with DaemonHarness(TuningStore(store_path)) as harness:
            assert harness.client().tune(binary, workload)["source"] == "tuned"
        with DaemonHarness(TuningStore(store_path)) as harness:
            assert harness.client().tune(binary, workload)["source"] == "store"

    def test_query_and_invalidate(self, tmp_path, binary, workload):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            client = harness.client()
            key = client.tune(binary, workload)["key"]
            hit = client.query(key)
            assert hit["found"] is True
            assert hit["record"]["winner_label"]
            assert client.invalidate(key)["removed"] is True
            assert client.query(key)["found"] is False
            # The next tune re-measures and re-publishes.
            assert client.tune(binary, workload)["source"] == "tuned"


class TestDaemonRobustness:
    def test_survives_malformed_frames_and_requests(
        self, tmp_path, binary, workload
    ):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            # Garbage body: a valid length prefix framing non-JSON.
            with socket.create_connection(("127.0.0.1", harness.port)) as sock:
                sock.sendall(struct.pack(">I", 7) + b"garbage")
                response = protocol.recv_frame(sock)
                assert response["ok"] is False
                assert response["code"] == protocol.CODE_BAD_REQUEST
            # Wrong protocol version.
            with socket.create_connection(("127.0.0.1", harness.port)) as sock:
                protocol.send_frame(sock, {"v": 99, "type": "ping"})
                assert protocol.recv_frame(sock)["code"] == protocol.CODE_BAD_REQUEST
            # Unknown request type.
            with socket.create_connection(("127.0.0.1", harness.port)) as sock:
                protocol.send_frame(sock, protocol.request("frobnicate"))
                assert protocol.recv_frame(sock)["code"] == protocol.CODE_BAD_REQUEST
            # Tune with an unusable binary payload.
            with socket.create_connection(("127.0.0.1", harness.port)) as sock:
                protocol.send_frame(
                    sock,
                    protocol.request(
                        "tune", binary="!!!not-base64!!!", workload={}
                    ),
                )
                assert protocol.recv_frame(sock)["code"] == protocol.CODE_BAD_REQUEST
            # Valid base64 of a truncated container (right magic, torn
            # body) is still the client's fault, not an internal error.
            torn = __import__("base64").b64encode(b"ORMV\x10").decode()
            with socket.create_connection(("127.0.0.1", harness.port)) as sock:
                protocol.send_frame(
                    sock, protocol.request("tune", binary=torn, workload={})
                )
                assert protocol.recv_frame(sock)["code"] == protocol.CODE_BAD_REQUEST
            # After all that abuse the daemon still serves real work.
            client = harness.client()
            assert client.ping()["ok"] is True
            assert client.tune(binary, workload)["source"] == "tuned"

    def test_queue_full_rejection_carries_retry_after(
        self, tmp_path, binary, workload
    ):
        store = TuningStore(tmp_path / "s.jsonl")
        config = DaemonConfig(max_pending=0, retry_after=0.123)
        with DaemonHarness(store, config) as harness:
            client = harness.client(retries=0)
            payload = protocol.request(
                "tune",
                binary=__import__("base64").b64encode(binary.to_bytes()).decode(),
                workload={"grid_blocks": 64, "block_size": 256, "iterations": 10},
            )
            with socket.create_connection(("127.0.0.1", harness.port)) as sock:
                protocol.send_frame(sock, payload)
                response = protocol.recv_frame(sock)
            assert response["ok"] is False
            assert response["code"] == protocol.CODE_QUEUE_FULL
            assert response["retry_after"] == 0.123
            # The client retries then degrades to ServiceUnavailable.
            with pytest.raises(ServiceUnavailable):
                client.tune(binary, workload)
            # Control-plane requests are not admission-controlled.
            assert client.ping()["ok"] is True

    def test_timeout_answers_but_job_completes(
        self, tmp_path, binary, workload
    ):
        store = TuningStore(tmp_path / "s.jsonl")
        config = DaemonConfig(request_timeout=0.01)
        with DaemonHarness(store, config, backend=SlowBackend(0.05)) as harness:
            client = harness.client(retries=0, timeout=10.0)
            with pytest.raises(ServiceRejected) as excinfo:
                client.tune(binary, workload)
            assert excinfo.value.code == protocol.CODE_TIMEOUT
            # The underlying job keeps running and publishes its winner;
            # a later request becomes a pure store hit.
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    response = harness.client(timeout=10.0).tune(binary, workload)
                    if response["source"] == "store":
                        break
                except ServiceRejected as exc:
                    assert exc.code == protocol.CODE_TIMEOUT
                time.sleep(0.05)
            else:
                pytest.fail("stored winner never became visible")

    def test_single_flight_dedups_concurrent_tunes(
        self, tmp_path, binary, workload
    ):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store, backend=SlowBackend(0.02)) as harness:
            before = _backend_invocations()
            results: list[dict] = []
            lock = threading.Lock()

            def tune() -> None:
                response = harness.client(timeout=60.0).tune(binary, workload)
                with lock:
                    results.append(response)

            threads = [threading.Thread(target=tune) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert len(results) == 3
            sources = sorted(r["source"] for r in results)
            assert sources[-1] == "tuned"
            assert set(sources) <= {"deduped", "store", "tuned"}
            assert len({r["record"]["winner_label"] for r in results}) == 1
            # Exactly one walk's worth of measurements ran: dedup joins
            # and store hits added nothing on top of the first tune.
            one_walk = _backend_invocations() - before
            assert one_walk > 0
            store.invalidate(results[0]["key"])
            again = _backend_invocations()
            harness.client(timeout=60.0).tune(binary, workload)
            # Measurement cache makes the re-tune nearly free, so the
            # three concurrent tunes cannot have measured more than once.
            assert _backend_invocations() == again

    def test_stats_reports_store_and_daemon_state(
        self, tmp_path, binary, workload
    ):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            client = harness.client()
            client.tune(binary, workload)
            stats = client.stats()
            assert stats["store"]["entries"] == 1
            assert stats["daemon"]["pending"] == 0
            assert stats["daemon"]["arch"] == GTX680.name
            assert stats["daemon"]["backend"] == "timing"


class TestShutdownDrain:
    def test_inflight_tune_survives_shutdown(
        self, tmp_path, binary, workload
    ):
        """A winner computed mid-shutdown is answered and published.

        Regression: shutdown used to tear the executors down under the
        in-flight ``_tune_sync`` jobs; now the daemon drains them
        (bounded by the request timeout) before closing.
        """
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(
            store, DaemonConfig(request_timeout=60.0),
            backend=SlowBackend(0.05),
        ) as harness:
            results: dict = {}

            def submit() -> None:
                try:
                    results["response"] = harness.client(timeout=60.0).tune(
                        binary, workload
                    )
                except Exception as exc:  # noqa: BLE001 — assert below
                    results["error"] = exc

            thread = threading.Thread(target=submit)
            thread.start()
            deadline = time.monotonic() + 10
            while not harness.daemon._inflight:
                assert time.monotonic() < deadline, "tune never admitted"
                time.sleep(0.005)
            # Shutdown while the tune is mid-measurement.
            assert harness.client().shutdown()["stopping"] is True
            thread.join(timeout=60)
            assert not thread.is_alive()
            assert "error" not in results, results.get("error")
            assert results["response"]["source"] == "tuned"
            key = results["response"]["key"]
        # The drained job's winner reached the store before teardown.
        assert TuningStore(tmp_path / "s.jsonl").peek(key) is not None

    def test_new_tunes_rejected_while_draining(
        self, tmp_path, binary, workload
    ):
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(
            store, DaemonConfig(request_timeout=60.0),
            backend=SlowBackend(0.2),
        ) as harness:
            background = threading.Thread(
                target=lambda: harness.client(timeout=60.0).tune(
                    binary, workload
                )
            )
            background.start()
            deadline = time.monotonic() + 10
            while not harness.daemon._inflight:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            with socket.create_connection(
                ("127.0.0.1", harness.port)
            ) as sock:
                protocol.send_frame(sock, protocol.request("shutdown"))
                assert protocol.recv_frame(sock)["stopping"] is True
            # While the in-flight job drains, a NEW tune (different
            # key: different grid) is refused rather than silently
            # queued behind a closing daemon.
            payload = protocol.request(
                "tune",
                binary=__import__("base64")
                .b64encode(binary.to_bytes())
                .decode(),
                workload={
                    "grid_blocks": 32,
                    "block_size": 256,
                    "iterations": 4,
                },
            )
            with socket.create_connection(
                ("127.0.0.1", harness.port)
            ) as sock:
                protocol.send_frame(sock, payload)
                response = protocol.recv_frame(sock)
            assert response["ok"] is False
            assert response["code"] == protocol.CODE_SHUTTING_DOWN
            background.join(timeout=60)


class TestMetricsCountExactlyOnce:
    @staticmethod
    def _requests_total() -> float:
        counter = get_registry().counter(
            "orion_daemon_requests_total",
            "Daemon requests by type and outcome.",
        )
        return sum(s["value"] for s in counter.snapshot_samples())

    @staticmethod
    def _outcome(type_: str, outcome: str) -> float:
        counter = get_registry().counter(
            "orion_daemon_requests_total",
            "Daemon requests by type and outcome.",
        )
        return counter.value(type=type_, outcome=outcome)

    def test_each_request_charged_exactly_once(self, tmp_path):
        """One frame, one count — across good, bad-envelope, and
        bad-frame paths (the ProtocolError double-count regression)."""
        store = TuningStore(tmp_path / "s.jsonl")
        with DaemonHarness(store) as harness:
            total_before = self._requests_total()
            ok_before = self._outcome("ping", "ok")
            bad_env_before = self._outcome("unknown", "bad-request")
            bad_frame_before = self._outcome("unknown", "bad-frame")

            # 1: a good request.
            harness.client().ping()
            # 2: a bad envelope (dispatched, counted as bad-request).
            with socket.create_connection(
                ("127.0.0.1", harness.port)
            ) as sock:
                protocol.send_frame(sock, {"v": 99, "type": "ping"})
                assert protocol.recv_frame(sock)["ok"] is False
            # 3: a framing failure (never dispatched: bad-frame).
            with socket.create_connection(
                ("127.0.0.1", harness.port)
            ) as sock:
                sock.sendall(struct.pack(">I", 12) + b"not json :-(")
                assert protocol.recv_frame(sock)["ok"] is False

            assert self._outcome("ping", "ok") == ok_before + 1
            assert (
                self._outcome("unknown", "bad-request")
                == bad_env_before + 1
            )
            assert (
                self._outcome("unknown", "bad-frame")
                == bad_frame_before + 1
            )
            # Exactly three charges for exactly three frames.
            assert self._requests_total() == total_before + 3


class TestClientFallback:
    def _dead_port(self) -> int:
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            return sock.getsockname()[1]

    def test_degrades_to_local_tuning(self, binary, workload):
        client = TuningClient(port=self._dead_port(), retries=0, backoff=0.0)
        fallbacks = get_registry().counter(
            "orion_client_fallbacks_total",
            "Tune requests that degraded to in-process tuning.",
        )
        before = fallbacks.value(reason="ServiceUnavailable")
        response = tune_with_fallback(client, binary, workload, GTX680)
        assert response["ok"] is True
        assert response["source"] == "local"
        assert response["degraded_reason"]
        assert response["record"]["winner_label"]
        assert fallbacks.value(reason="ServiceUnavailable") == before + 1

    def test_no_fallback_raises(self, binary, workload):
        client = TuningClient(port=self._dead_port(), retries=0, backoff=0.0)
        with pytest.raises(ServiceUnavailable):
            client.tune(binary, workload)
