"""Unit tests for the perf subsystem: compile cache and phase timers."""

import os

import pytest

from repro.arch import GTX680, TESLA_C2075
from repro.compiler.pipeline import CompileOptions
from repro.harness.reporting import format_phase_report
from repro.perf.cache import (
    CompileCache,
    compile_cache_key,
    default_cache,
    reset_default_cache,
)
from repro.perf.timers import PhaseTimers


class TestCacheKey:
    def test_stable_for_identical_inputs(self):
        options = CompileOptions(arch=GTX680)
        assert compile_cache_key(b"mod", "k", options) == compile_cache_key(
            b"mod", "k", options
        )

    def test_sensitive_to_every_input(self):
        base = compile_cache_key(b"mod", "k", CompileOptions(arch=GTX680))
        assert base != compile_cache_key(b"mod2", "k", CompileOptions(arch=GTX680))
        assert base != compile_cache_key(b"mod", "k2", CompileOptions(arch=GTX680))
        assert base != compile_cache_key(
            b"mod", "k", CompileOptions(arch=TESLA_C2075)
        )
        assert base != compile_cache_key(
            b"mod", "k", CompileOptions(arch=GTX680, block_size=128)
        )
        assert base != compile_cache_key(
            b"mod", "k", CompileOptions(arch=GTX680, max_versions=3)
        )

    def test_boundary_confusion_resistant(self):
        """kernel/options/module fields cannot bleed into each other."""
        a = compile_cache_key(b"xy", "k", CompileOptions(arch=GTX680))
        b = compile_cache_key(b"y", "kx", CompileOptions(arch=GTX680))
        assert a != b


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = CompileCache()
        assert cache.lookup("aa" * 32) is None
        cache.store("aa" * 32, b"payload")
        assert cache.lookup("aa" * 32) == b"payload"
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_clear_resets(self):
        cache = CompileCache()
        cache.store("bb" * 32, b"x")
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup("bb" * 32) is None
        assert cache.stats.misses == 1


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        key = "cc" * 32
        CompileCache(tmp_path).store(key, b"payload")
        fresh = CompileCache(tmp_path)
        assert fresh.lookup(key) == b"payload"
        assert fresh.stats.disk_hits == 1
        # Promoted to memory: a second lookup does not touch disk.
        assert fresh.lookup(key) == b"payload"
        assert fresh.stats.memory_hits == 1

    def test_unwritable_directory_degrades_silently(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file, not a directory")
        cache = CompileCache(blocked / "sub")
        cache.store("dd" * 32, b"payload")  # disk write fails, no raise
        assert cache.lookup("dd" * 32) == b"payload"  # memory tier intact

    def test_corrupted_entry_is_a_miss_not_an_error(self, tmp_path):
        """A torn/garbled disk entry must recompile, then self-heal."""
        from repro.compiler.pipeline import compile_binary
        from repro.isa.encoding import encode_module
        from tests.helpers import straight_line_kernel

        data = encode_module(straight_line_kernel())
        options = CompileOptions(arch=GTX680, block_size=32)
        cache = CompileCache(tmp_path)
        good = compile_binary(data, "k", options, cache=cache).to_bytes()
        [entry] = [p for p in tmp_path.rglob("*.ormv")]
        entry.write_bytes(b"garbage")
        fresh = CompileCache(tmp_path)  # hits disk, payload undecodable
        again = compile_binary(data, "k", options, cache=fresh).to_bytes()
        assert again == good
        healed = CompileCache(tmp_path)  # recompile overwrote the entry
        assert compile_binary(data, "k", options, cache=healed).to_bytes() == good
        assert healed.stats.disk_hits == 1

    def test_default_cache_reads_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ORION_CACHE_DIR", str(tmp_path))
        reset_default_cache()
        try:
            assert default_cache().directory == tmp_path
        finally:
            reset_default_cache()


class TestTimers:
    def test_add_accumulates(self):
        timers = PhaseTimers()
        timers.add("alpha", 0.25)
        timers.add("alpha", 0.25)
        timers.add("beta", 1.5)
        assert timers.phases["alpha"].calls == 2
        assert timers.phases["alpha"].seconds == pytest.approx(0.5)
        assert timers.phases["beta"].seconds == pytest.approx(1.5)
        assert timers.total_seconds() == pytest.approx(2.0)

    def test_snapshot_is_a_copy(self):
        timers = PhaseTimers()
        timers.add("alpha", 1.0)
        snap = timers.snapshot()
        timers.add("alpha", 1.0)
        assert snap["alpha"].seconds == pytest.approx(1.0)

    def test_reset(self):
        timers = PhaseTimers()
        timers.add("alpha", 1.0)
        timers.reset()
        assert timers.phases == {}


class TestPhaseReport:
    def test_renders_timers_and_cache_counters(self):
        timers = PhaseTimers()
        timers.add("tuning", 2.0)
        timers.add("front_end", 0.5)
        cache = CompileCache()
        cache.store("ee" * 32, b"x")
        cache.lookup("ee" * 32)
        report = format_phase_report(timers, cache.stats)
        assert "tuning" in report
        assert "hit rate 100.0%" in report
        assert report.index("tuning") < report.index("front_end")  # sorted

    def test_empty_timers_render(self):
        report = format_phase_report(PhaseTimers(), CompileCache().stats)
        assert "total" in report
