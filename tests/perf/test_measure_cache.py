"""Measurement-cache tests: key sensitivity, tiers, degradation."""

import pytest

from repro.perf.measure_cache import MeasurementCache, measurement_cache_key
from repro.sim.trace import MemoryTraits


def key_with(**overrides):
    """The canonical key with individual components overridden."""
    base = dict(
        version_hash="abc123",
        backend_name="timing",
        arch_name="GTX680",
        grid_blocks=64,
        block_size=256,
        params={0: 7},
        cache_config="small_cache",
        traits=MemoryTraits(),
        ilp=1.0,
        max_events_per_warp=6000,
        global_memory=None,
        forced_warps=None,
    )
    base.update(overrides)
    return measurement_cache_key(**base)


class TestKeySensitivity:
    def test_stable_for_identical_inputs(self):
        assert key_with() == key_with()

    @pytest.mark.parametrize(
        "override",
        [
            {"version_hash": "def456"},
            {"backend_name": "analytical"},
            {"arch_name": "Tesla C2075"},
            {"grid_blocks": 65},
            {"block_size": 128},
            {"params": {0: 8}},
            {"params": {}},
            {"cache_config": "large_cache"},
            {"traits": MemoryTraits(global_lane_stride=128)},
            {"ilp": 2.0},
            {"max_events_per_warp": 3000},
            {"global_memory": {0: 1}},
            {"forced_warps": 16},
        ],
        ids=lambda o: next(iter(o)),
    )
    def test_every_component_is_load_bearing(self, override):
        assert key_with(**override) != key_with()

    def test_param_order_irrelevant(self):
        assert key_with(params={0: 1, 4: 2}) == key_with(params={4: 2, 0: 1})


class TestMemoryTier:
    def test_round_trip(self):
        cache = MeasurementCache()
        payload = {"backend": "timing", "cycles": 99, "energy": None, "stats": {}}
        key = key_with()
        assert cache.get(key) is None
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert len(cache) == 1

    def test_stats_counters(self):
        cache = MeasurementCache()
        key = key_with()
        cache.get(key)
        cache.put(key, {"cycles": 1})
        cache.get(key)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_clear_drops_entries_and_counters(self):
        cache = MeasurementCache()
        cache.put(key_with(), {"cycles": 1})
        cache.clear()
        assert len(cache) == 0
        assert cache.get(key_with()) is None
        assert cache.stats.hits == 0


class TestDiskTier:
    def test_shared_directory_across_instances(self, tmp_path):
        writer = MeasurementCache(tmp_path)
        key = key_with()
        writer.put(key, {"cycles": 42, "backend": "timing"})
        reader = MeasurementCache(tmp_path)
        assert reader.get(key) == {"cycles": 42, "backend": "timing"}
        assert reader.stats.disk_hits == 1

    def test_env_var_enables_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("ORION_MEASURE_CACHE_DIR", str(tmp_path))
        cache = MeasurementCache()
        assert cache.directory is not None
        cache.put(key_with(), {"cycles": 1})
        assert any(tmp_path.rglob("*"))

    def test_no_env_means_memory_only(self, monkeypatch):
        monkeypatch.delenv("ORION_MEASURE_CACHE_DIR", raising=False)
        assert MeasurementCache().directory is None

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        writer = MeasurementCache(tmp_path)
        key = key_with()
        writer._store.store(key, b"this is not json")
        reader = MeasurementCache(tmp_path)
        assert reader.get(key) is None
