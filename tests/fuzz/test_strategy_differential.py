"""Strategy-differential fuzzing: alt-strategy compiles vs the oracle.

``check_case(strategy=...)`` recompiles every generated module under
the requested strategy and holds it to the same bar as the reference
compile — verifier-clean and interpreter-exact — plus a fingerprint
separation check.  These tests run a small slice of what the CI fuzz
shard runs at scale.
"""

import pytest

from repro.fuzz import FuzzFailure, check_case, run_fuzz


class TestStrategyOracle:
    @pytest.mark.parametrize("strategy", ["smem-spill", "soft-limit"])
    def test_clean_cases(self, strategy):
        failures, checked = check_case(3, "branchy", strategy=strategy)
        assert failures == []
        # The alt compile's versions were actually checked, on top of
        # the reference compile's.
        assert checked > 0

    def test_run_fuzz_smem_spill_slice(self):
        report = run_fuzz(seed=0, cases=4, strategy="smem-spill")
        assert report.ok
        assert report.strategy == "smem-spill"
        assert report.versions_checked > 0

    def test_default_report_unchanged(self):
        report = run_fuzz(seed=0, cases=2)
        assert report.ok
        assert report.strategy == "local-spill"


class TestFailureRepro:
    def test_repro_line_names_the_strategy(self):
        failure = FuzzFailure(
            seed=7, shape="branchy", kind="diff", detail="x", strategy="smem-spill"
        )
        assert "--strategy smem-spill" in failure.repro

    def test_default_repro_line_unchanged(self):
        failure = FuzzFailure(seed=7, shape="branchy", kind="diff", detail="x")
        assert "--strategy" not in failure.repro
