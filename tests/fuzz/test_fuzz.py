"""Differential fuzzing harness tests (generator + oracle)."""

import pytest

from repro.fuzz import (
    SHAPES,
    FuzzFailure,
    check_case,
    generate_module,
    run_fuzz,
)
from repro.fuzz.generator import PARAM_BASE_OFFSET, PARAM_BASE_VALUE
from repro.isa.assembly import format_module
from repro.sim.interp import LaunchConfig, run_kernel

CONCRETE_SHAPES = [s for s in SHAPES if s != "mixed"]


class TestGenerator:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_deterministic(self, shape):
        first = format_module(generate_module(11, shape))
        second = format_module(generate_module(11, shape))
        assert first == second

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_valid_and_runnable(self, shape, seed):
        module = generate_module(seed, shape)
        module.validate()
        launch = LaunchConfig(
            grid_blocks=1,
            block_size=4,
            params={PARAM_BASE_OFFSET: PARAM_BASE_VALUE},
        )
        memory = {i * 4: float(i % 7 + 1) for i in range(192)}
        out = run_kernel(module, launch, global_memory=memory)
        assert out  # it stored something

    def test_seeds_differ(self):
        texts = {format_module(generate_module(s, "mixed")) for s in range(8)}
        assert len(texts) > 1

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown shape"):
            generate_module(0, "spaghetti")

    def test_branchy_has_branches(self):
        module = generate_module(4, "branchy")
        assert len(module.kernel().blocks) > 1

    def test_calls_shape_has_device_function(self):
        module = generate_module(4, "calls")
        assert len(module.functions) > 1


class TestOracle:
    @pytest.mark.parametrize("shape", CONCRETE_SHAPES)
    def test_clean_cases(self, shape):
        failures, checked = check_case(1, shape)
        assert failures == []
        assert checked > 0

    def test_run_fuzz_aggregates(self):
        report = run_fuzz(seed=0, cases=3, shape="mixed")
        assert report.ok
        assert report.cases == 3
        assert report.versions_checked >= 3

    def test_progress_callback_fires(self):
        lines = []
        run_fuzz(seed=0, cases=25, shape="straight", progress=lines.append)
        assert len(lines) == 1

    def test_crash_is_a_finding_not_an_exception(self, monkeypatch):
        import repro.fuzz.oracle as oracle

        def boom(seed, shape):
            raise RuntimeError("generator exploded")

        monkeypatch.setattr(oracle, "generate_module", boom)
        failures, checked = oracle.check_case(5, "mixed")
        assert checked == 0
        assert len(failures) == 1
        assert failures[0].kind == "crash"
        assert "generator exploded" in failures[0].detail

    def test_miscompile_is_reported_as_differential(self, monkeypatch):
        import repro.fuzz.oracle as oracle

        real = oracle.run_kernel
        state = {"calls": 0}

        def skewed(module, launch, **kwargs):
            out = real(module, launch, **kwargs)
            state["calls"] += 1
            if state["calls"] > 1:  # every *version* run, not the original
                out[max(out)] = -1.0
            return out

        monkeypatch.setattr(oracle, "run_kernel", skewed)
        failures, _ = oracle.check_case(1, "straight")
        kinds = {f.kind for f in failures}
        assert kinds == {"differential"}
        assert any("diverges" in f.detail for f in failures)

    def test_failure_repro_line(self):
        failure = FuzzFailure(131, "loopy", "verifier", "boom")
        assert failure.repro == "repro fuzz --seed 131 --cases 1 --shape loopy"
        assert "reproduce:" in str(failure)


class TestStoreOracle:
    def test_cases_round_trip_through_the_store(self, tmp_path):
        from repro.service.store import TuningStore

        store = TuningStore(tmp_path / "fuzz-store.jsonl")
        report = run_fuzz(seed=0, cases=2, shape="straight", store=store)
        assert report.ok
        # Tunable cases published exactly one record each; identical
        # keys across cases would be a fingerprint collision.
        assert len(store) == 2

    def test_unstable_fingerprint_is_reported(self, tmp_path, monkeypatch):
        import repro.fuzz.oracle as oracle
        from repro.service.store import TuningStore

        fingerprints = iter(["fp-one", "fp-two", "fp-three"])
        monkeypatch.setattr(
            "repro.service.fingerprint.kernel_fingerprint",
            lambda binary: next(fingerprints),
        )
        store = TuningStore(tmp_path / "fuzz-store.jsonl")
        failures, _ = oracle.check_case(1, "straight", store=store)
        assert {f.kind for f in failures} == {"store"}
        assert any("fingerprint" in f.detail for f in failures)


class TestSeedReproduction:
    def test_case_seed_is_base_plus_index(self):
        # Case i of a batch must behave exactly like --seed base+i with
        # one case: that is the documented reproduction recipe.
        batch = run_fuzz(seed=7, cases=3, shape="straight")
        single = run_fuzz(seed=9, cases=1, shape="straight")
        assert batch.ok and single.ok
        assert format_module(generate_module(9, "straight")) == format_module(
            generate_module(7 + 2, "straight")
        )
