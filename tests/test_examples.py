"""Example-script smoke tests (cheap ones run; heavy ones import-check)."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "occupancy_sweep",
        "custom_kernel",
        "energy_savings",
        "performance_model",
    ],
)
def test_example_imports_and_has_main(name):
    module = _load(name)
    assert callable(module.main)


def test_custom_kernel_example_runs(capsys):
    module = _load("custom_kernel")
    module.main()
    out = capsys.readouterr().out
    assert "semantics      : identical" in out
    assert "BROKEN" not in out


def test_quickstart_kernel_source_is_valid():
    from repro.isa.assembly import parse_module

    module = _load("quickstart")
    parsed = parse_module(module.build_kernel_source())
    parsed.validate()


def test_occupancy_sweep_rejects_unknown_benchmark(monkeypatch):
    module = _load("occupancy_sweep")
    monkeypatch.setattr(sys, "argv", ["occupancy_sweep.py", "nope"])
    with pytest.raises(SystemExit):
        module.main()
