"""Function-inliner tests."""

import pytest

from repro.ir.callgraph import count_static_calls
from repro.ir.inline import InlineReport, function_size, inline_module
from repro.ir.verify import verify_module
from repro.sim.interp import LaunchConfig, run_kernel
from tests.helpers import call_kernel, module_from_asm


def assert_same_behavior(original, transformed, launch, memory):
    expected = run_kernel(original, launch, global_memory=memory)
    actual = run_kernel(transformed, launch, global_memory=memory)
    assert actual == pytest.approx(expected)


class TestInlining:
    def test_small_functions_fully_inlined(self):
        module = call_kernel()
        original = module.copy()
        memory = {4 * t: float(t) for t in range(8)}
        report = inline_module(module)
        assert report.inlined_sites == 3  # two scale sites + nested offset
        assert report.remaining_sites == 0
        assert set(report.removed_functions) == {"scale", "offset"}
        module.validate()
        assert verify_module(module) == []
        assert_same_behavior(
            original, module, LaunchConfig(block_size=8), memory
        )

    def test_size_threshold_blocks_large_callees(self):
        module = call_kernel()
        report = inline_module(module, size_threshold=1)
        assert report.inlined_sites == 0
        assert report.remaining_sites == 3
        assert any(reason == "too large" for _, _, reason in report.skipped)

    def test_growth_cap(self):
        module = call_kernel()
        report = inline_module(module, max_growth=4)
        assert report.remaining_sites > 0
        assert any(
            reason == "caller growth cap" for _, _, reason in report.skipped
        )

    def test_callee_overwriting_argument(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                SHL %v1, %v0, 2
                CALL %v2, bump(%v0)
                IADD %v3, %v2, %v0
                ST.global [%v1], %v3
                EXIT
            .end
            .func bump args=1 returns=1
            BB0:
                IADD %v0, %v0, 10
                RET %v0
            .end
            """
        )
        original = module.copy()
        inline_module(module)
        # %v0 in the caller must keep its pre-call value after inlining.
        assert_same_behavior(original, module, LaunchConfig(block_size=4), {})

    def test_immediate_argument(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                SHL %v1, %v0, 2
                CALL %v2, triple(7)
                ST.global [%v1], %v2
                EXIT
            .end
            .func triple args=1 returns=1
            BB0:
                IMUL %v1, %v0, 3
                RET %v1
            .end
            """
        )
        inline_module(module)
        out = run_kernel(module, LaunchConfig(block_size=2))
        assert out[0] == 21

    def test_branchy_callee(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                SHL %v1, %v0, 2
                CALL %v2, clamp4(%v0)
                ST.global [%v1], %v2
                EXIT
            .end
            .func clamp4 args=1 returns=1
            BB0:
                ISET.gt %v1, %v0, 4
                CBR %v1, HI, LO
            HI:
                RET 4
            LO:
                RET %v0
            .end
            """
        )
        original = module.copy()
        report = inline_module(module)
        assert report.inlined_sites == 1
        assert_same_behavior(original, module, LaunchConfig(block_size=8), {})
        out = run_kernel(module, LaunchConfig(block_size=8))
        assert out[4 * 7] == 4 and out[4 * 2] == 2

    def test_nested_calls_inline_bottom_up(self):
        module = call_kernel()
        report = inline_module(module, size_threshold=100)
        assert report.remaining_sites == 0
        # The kernel absorbed everything.
        assert function_size(module.functions["k"]) > 7

    def test_dead_function_retention_optional(self):
        module = call_kernel()
        inline_module(module, drop_dead_functions=False)
        assert "scale" in module.functions

    def test_table2_calls_survive_realistic_threshold(self):
        """The benchmark call counts assume nvcc-style inlining already
        happened: a second inlining pass with the default threshold must
        not remove the calls Table 2 counts (callees exceed it)."""
        from repro.bench.kernels import BENCHMARKS

        module = BENCHMARKS["cfd"].build()
        before = count_static_calls(module, "kernel")
        inline_module(module, size_threshold=1)
        assert count_static_calls(module, "kernel") == before
