"""Liveness, max-live, and call-site liveness tests."""

from repro.ir.cfg import CFG
from repro.ir.liveness import analyze_liveness, instruction_liveness, max_live
from repro.isa.registers import VirtualReg
from tests.helpers import (
    call_kernel,
    diamond_kernel,
    loop_kernel,
    module_from_asm,
    straight_line_kernel,
)


def v(i, w=1):
    return VirtualReg(i, w)


class TestBlockLiveness:
    def test_straight_line_no_live_in(self):
        fn = straight_line_kernel().kernel()
        info = analyze_liveness(fn)
        assert info.live_in["BB0"] == set()
        assert info.live_out["BB0"] == set()

    def test_diamond_value_flows_to_join(self):
        fn = diamond_kernel().kernel()
        info = analyze_liveness(fn)
        # %v2 is defined in both arms and used at the join.
        assert v(2) in info.live_out["BBT"]
        assert v(2) in info.live_out["BBF"]
        assert v(2) in info.live_in["BBJ"]
        # %v0 is defined in BB0 and used in BBJ: live through both arms.
        assert v(0) in info.live_in["BBT"]
        assert v(0) in info.live_in["BBF"]

    def test_loop_carried_values(self):
        fn = loop_kernel().kernel()
        info = analyze_liveness(fn)
        # Accumulator and induction variable are live around the loop.
        assert v(2) in info.live_in["HEAD"]
        assert v(3) in info.live_in["HEAD"]
        assert v(2) in info.live_out["BODY"]

    def test_device_args_live_in_at_entry(self):
        module = call_kernel()
        scale = module.functions["scale"]
        info = analyze_liveness(scale)
        assert v(0) in info.live_in["BB0"]


class TestMaxLive:
    def test_straight_line_max_live(self):
        # Peak: %v0,%v1 live together, then %v3+%v4 etc.; hand count = 2.
        fn = straight_line_kernel().kernel()
        assert max_live(fn) == 2

    def test_wide_values_count_slots(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                LD.global %v1.w4, [%v0]
                LD.global %v2.w2, [%v0+16]
                FADD %v3, %v1.w4, %v2.w2
                ST.global [%v0], %v3
                EXIT
            .end
            """
        )
        # At the FADD: %v0 (1) + %v1 (4) + %v2 (2) = 7 slots.
        assert max_live(module.kernel()) == 7

    def test_parallel_chain_raises_max_live(self):
        lines = ["S2R %v0, %tid"]
        n = 10
        for i in range(1, n + 1):
            lines.append(f"LD.global %v{i}, [%v0+{4 * i}]")
        accum = "%v1"
        for i in range(2, n + 1):
            lines.append(f"IADD %v{n + i}, {accum}, %v{i}")
            accum = f"%v{n + i}"
        lines.append(f"ST.global [%v0], {accum}")
        lines.append("EXIT")
        body = "\n".join(f"    {line}" for line in lines)
        module = module_from_asm(
            f".module m\n.kernel k shared=0\nBB0:\n{body}\n.end"
        )
        assert max_live(module.kernel()) == n + 1  # all loads + %v0


class TestCallSiteLiveness:
    def test_values_live_across_call(self):
        module = call_kernel()
        fn = module.kernel()
        info = analyze_liveness(fn)
        sites = sorted(info.live_across_calls)
        assert len(sites) == 2
        first_call = info.live_across_calls[sites[0]]
        # %v1 (the address) survives the first call; %v2 does not.
        assert v(1) in first_call
        assert v(2) not in first_call

    def test_call_result_not_live_across_its_own_call(self):
        module = call_kernel()
        fn = module.kernel()
        info = analyze_liveness(fn)
        for live in info.live_across_calls.values():
            pass  # structural check above suffices; ensure no crash
        assert info.max_live >= 2


class TestInstructionLiveness:
    def test_live_after_final_store_is_empty(self):
        fn = straight_line_kernel().kernel()
        liveness = instruction_liveness(fn)
        last_idx = len(fn.blocks["BB0"].instructions) - 1
        assert liveness[("BB0", last_idx)] == set()

    def test_every_instruction_has_entry(self):
        fn = loop_kernel().kernel()
        liveness = instruction_liveness(fn)
        cfg = CFG(fn)
        total = sum(len(fn.blocks[b].instructions) for b in cfg.rpo)
        assert len(liveness) == total
