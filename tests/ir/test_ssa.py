"""SSA construction/destruction tests."""

from collections import Counter

import pytest

from repro.ir.cfg import CFG
from repro.ir.function import Function, Module
from repro.ir.liveness import analyze_liveness
from repro.ir.ssa import SSAError, construct_ssa, destruct_ssa, lift_to_virtual
from repro.isa.instructions import Imm, Opcode
from repro.isa.registers import PhysReg, VirtualReg
from tests.helpers import (
    diamond_kernel,
    loop_kernel,
    module_from_asm,
    straight_line_kernel,
)


def assert_single_assignment(fn: Function) -> None:
    defs = Counter()
    for inst in fn.instructions():
        for reg in inst.regs_written():
            defs[reg] += 1
    multiple = {r: c for r, c in defs.items() if c > 1}
    assert not multiple, f"multiply-defined: {multiple}"


class TestConstruct:
    def test_straight_line_needs_no_phi(self):
        fn = straight_line_kernel().kernel()
        construct_ssa(fn)
        assert_single_assignment(fn)
        assert not any(i.opcode is Opcode.PHI for i in fn.instructions())

    def test_diamond_gets_one_phi(self):
        fn = diamond_kernel().kernel()
        construct_ssa(fn)
        assert_single_assignment(fn)
        phis = [i for i in fn.instructions() if i.opcode is Opcode.PHI]
        assert len(phis) == 1
        assert len(phis[0].phi_args) == 2
        assert {b for b, _ in phis[0].phi_args} == {"BBT", "BBF"}

    def test_loop_gets_phis_for_carried_values(self):
        fn = loop_kernel().kernel()
        construct_ssa(fn)
        assert_single_assignment(fn)
        head_phis = fn.blocks["HEAD"].phis()
        # Accumulator and induction variable both need φs at the header.
        assert len(head_phis) == 2

    def test_pruned_ssa_skips_dead_joins(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                ISET.lt %v1, %v0, 4
                CBR %v1, T, F
            T:
                MOV %v2, 1
                ST.global [%v0], %v2
                BRA J
            F:
                MOV %v2, 2
                ST.global [%v0], %v2
                BRA J
            J:
                EXIT
            .end
            """
        )
        fn = module.kernel()
        construct_ssa(fn)
        # %v2 is dead at J: pruned SSA must not put a φ there.
        assert fn.blocks["J"].phis() == []

    def test_undefined_use_raises(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                ST.global [%v9], %v9
                EXIT
            .end
            """
        )
        with pytest.raises(SSAError):
            construct_ssa(module.kernel())

    def test_allow_undef_inserts_zero_init(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                ST.global [%v9], %v9
                EXIT
            .end
            """
        )
        fn = module.kernel()
        construct_ssa(fn, allow_undef=True)
        first = fn.entry.instructions[0]
        assert first.opcode is Opcode.MOV and first.srcs == [Imm(0)]

    def test_device_args_survive(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                CALL %v0, f(1, 2)
                ST.global [0], %v0
                EXIT
            .end
            .func f args=2 returns=1
            BB0:
                IADD %v2, %v0, %v1
                RET %v2
            .end
            """
        )
        f = module.functions["f"]
        construct_ssa(f)
        assert_single_assignment(f)
        # Args %v0 and %v1 are still read somewhere.
        read = {r for i in f.instructions() for r in i.regs_read()}
        assert VirtualReg(0) in read and VirtualReg(1) in read

    def test_widths_preserved(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                ISET.lt %v1, %v0, 4
                CBR %v1, T, F
            T:
                LD.global %v2.w2, [%v0]
                BRA J
            F:
                LD.global %v2.w2, [%v0+8]
                BRA J
            J:
                FADD %v3, %v2.w2, 1.0
                ST.global [%v0], %v3
                EXIT
            .end
            """
        )
        fn = module.kernel()
        construct_ssa(fn)
        phis = fn.blocks["J"].phis()
        assert len(phis) == 1
        assert phis[0].dst.width == 2


class TestDestruct:
    def test_round_trip_removes_phis(self):
        fn = loop_kernel().kernel()
        construct_ssa(fn)
        destruct_ssa(fn)
        assert not any(i.opcode is Opcode.PHI for i in fn.instructions())
        fn.validate()

    def test_copies_land_on_predecessor_edges(self):
        fn = diamond_kernel().kernel()
        construct_ssa(fn)
        phi_dst = fn.blocks["BBJ"].phis()[0].dst
        destruct_ssa(fn)
        writers = [
            block.label
            for block in fn.ordered_blocks()
            for inst in block.instructions
            if phi_dst in inst.regs_written()
        ]
        assert sorted(writers) == ["BBF", "BBT"]

    def test_swap_cycle_uses_temp(self):
        """φ-web that swaps two values each iteration needs a cycle break."""
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                MOV %v1, 1
                MOV %v2, 2
                MOV %v3, 0
                BRA HEAD
            HEAD:
                PHI %v4, [BB0: %v1], [BODY: %v5]
                PHI %v5, [BB0: %v2], [BODY: %v4]
                PHI %v6, [BB0: %v3], [BODY: %v7]
                IADD %v7, %v6, 1
                ISET.lt %v8, %v7, 10
                CBR %v8, BODY, DONE
            BODY:
                BRA HEAD
            DONE:
                ST.global [0], %v4
                ST.global [4], %v5
                EXIT
            .end
            """
        )
        fn = module.kernel()
        destruct_ssa(fn)
        fn.validate()
        # The swap must not clobber: some MOV writes a fresh temporary.
        body_like = [
            b for b in fn.ordered_blocks() if b.label.startswith("BODY")
        ]
        movs = [
            i
            for b in body_like
            for i in b.instructions
            if i.opcode is Opcode.MOV
        ]
        assert len(movs) >= 3  # two swapped values + temp (plus counter)


class TestLift:
    def test_lift_replaces_phys_regs(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R R0, %tid
                IADD R1, R0, 1
                ST.global [R0], R1
                EXIT
            .end
            """
        )
        fn = module.kernel()
        lift_to_virtual(fn)
        assert not any(
            isinstance(r, PhysReg) for r in fn.all_regs()
        )
        construct_ssa(fn)
        assert_single_assignment(fn)

    def test_lift_then_ssa_splits_reused_register(self):
        """R1 reused for two unrelated values becomes two variables."""
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R R0, %tid
                MOV R1, 5
                ST.global [R0], R1
                MOV R1, 9
                ST.global [R0+4], R1
                EXIT
            .end
            """
        )
        fn = module.kernel()
        lift_to_virtual(fn)
        construct_ssa(fn)
        stores = [i for i in fn.instructions() if i.opcode is Opcode.ST]
        assert stores[0].srcs[0] != stores[1].srcs[0]
