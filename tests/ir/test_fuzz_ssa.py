"""Property-based SSA and cleanup round-trip tests.

Reuses the structured random-kernel generator from the allocation
fuzzer: SSA construction + destruction (and the cleanup passes) must
preserve interpreter semantics on arbitrary structured programs.
"""

import pytest
from hypothesis import given, settings

from repro.ir.cleanup import cleanup_function
from repro.ir.ssa import construct_ssa, destruct_ssa
from repro.ir.verify import verify_module
from repro.sim.interp import LaunchConfig, run_kernel

from tests.regalloc.test_fuzz_allocation import random_kernel

_LAUNCH = LaunchConfig(grid_blocks=1, block_size=4)
_MEMORY = {i * 4: float(i % 5 + 1) for i in range(64)}


@given(random_kernel())
@settings(max_examples=40, deadline=None)
def test_ssa_round_trip_preserves_semantics(case):
    module, _ = case
    expected = run_kernel(module, _LAUNCH, global_memory=_MEMORY)
    for fn in module.functions.values():
        construct_ssa(fn, allow_undef=True)
        destruct_ssa(fn)
    module.validate()
    actual = run_kernel(module, _LAUNCH, global_memory=_MEMORY)
    assert actual == pytest.approx(expected)


@given(random_kernel())
@settings(max_examples=40, deadline=None)
def test_cleanup_preserves_semantics_and_never_grows(case):
    module, _ = case
    expected = run_kernel(module, _LAUNCH, global_memory=_MEMORY)
    for fn in module.functions.values():
        construct_ssa(fn, allow_undef=True)
        destruct_ssa(fn)
        before = len(fn.instructions())
        cleanup_function(fn)
        assert len(fn.instructions()) <= before
    module.validate()
    actual = run_kernel(module, _LAUNCH, global_memory=_MEMORY)
    assert actual == pytest.approx(expected)


@given(random_kernel())
@settings(max_examples=25, deadline=None)
def test_generated_programs_verify_clean_modulo_undef(case):
    """Random programs may read may-undefined values (by construction),
    but must raise no *structural* verifier issues."""
    module, _ = case
    issues = verify_module(module)
    structural = [
        i for i in issues if "before definition" not in i.message
    ]
    assert structural == []
