"""Machine verifier tests."""

import pytest

from repro.ir.function import Function, Module
from repro.ir.verify import (
    VerificationError,
    assert_verified,
    verify_module,
)
from repro.isa.instructions import (
    CmpOp,
    Imm,
    Instruction,
    MemSpace,
    Opcode,
)
from repro.isa.registers import PhysReg, VirtualReg
from repro.regalloc import allocate_module
from tests.helpers import (
    call_kernel,
    diamond_kernel,
    loop_kernel,
    module_from_asm,
    straight_line_kernel,
)


@pytest.mark.parametrize(
    "make", [straight_line_kernel, diamond_kernel, loop_kernel, call_kernel]
)
def test_clean_fixtures_verify(make):
    assert verify_module(make()) == []


def _kernel_with(instructions):
    module = Module("m")
    fn = Function("k", is_kernel=True)
    block = fn.add_block("BB0")
    for inst in instructions:
        block.append(inst)
    block.append(Instruction(Opcode.EXIT))
    module.add(fn)
    return module


class TestStructuralChecks:
    def test_comparison_without_predicate(self):
        module = _kernel_with(
            [Instruction(Opcode.ISET, dst=VirtualReg(0), srcs=[Imm(1), Imm(2)])]
        )
        issues = verify_module(module)
        assert any("predicate" in str(i) for i in issues)

    def test_memory_without_space(self):
        module = _kernel_with(
            [Instruction(Opcode.LD, dst=VirtualReg(0), srcs=[], offset=0)]
        )
        issues = verify_module(module)
        assert any("memory space" in str(i) for i in issues)

    def test_param_store_flagged(self):
        module = _kernel_with(
            [Instruction(Opcode.ST, srcs=[Imm(1)], space=MemSpace.PARAM)]
        )
        issues = verify_module(module)
        assert any("read-only" in str(i) for i in issues)

    def test_surviving_phi_flagged(self):
        fn = diamond_kernel().kernel()
        from repro.ir.ssa import construct_ssa

        construct_ssa(fn)
        module = Module("m")
        module.add(fn)
        issues = verify_module(module)
        assert any("φ" in str(i) for i in issues)

    def test_s2r_without_special(self):
        module = _kernel_with([Instruction(Opcode.S2R, dst=VirtualReg(0))])
        issues = verify_module(module)
        assert any("special" in str(i) for i in issues)


class TestDefinedness:
    def test_read_before_write_flagged(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                IADD %v1, %v0, 1
                ST.global [0], %v1
                EXIT
            .end
            """
        )
        issues = verify_module(module)
        assert any("before definition" in str(i) for i in issues)

    def test_one_armed_definition_flagged(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                ISET.lt %v1, %v0, 4
                CBR %v1, T, J
            T:
                MOV %v2, 1
                BRA J
            J:
                ST.global [0], %v2
                EXIT
            .end
            """
        )
        issues = verify_module(module)
        assert any("%v2" in str(i) for i in issues)

    def test_both_arms_defined_is_clean(self):
        assert verify_module(diamond_kernel()) == []

    def test_device_args_are_defined(self):
        assert verify_module(call_kernel()) == []


class TestPhysicalChecks:
    def test_allocated_modules_verify(self):
        # allocate_module runs the verifier internally; reaching here
        # without VerificationError is itself the test.
        outcome = allocate_module(call_kernel(), "k", 24)
        assert verify_module(outcome.module, physical=True, reg_budget=24) == []

    def test_misaligned_wide_flagged(self):
        module = _kernel_with(
            [
                Instruction(Opcode.MOV, dst=PhysReg(0), srcs=[Imm(0)]),
                Instruction(
                    Opcode.MOV, dst=PhysReg(1, 2), srcs=[Imm(0.0)]
                ),
            ]
        )
        issues = verify_module(module, physical=True)
        assert any("misaligned" in str(i) for i in issues)

    def test_budget_overflow_flagged(self):
        module = _kernel_with(
            [Instruction(Opcode.MOV, dst=PhysReg(30), srcs=[Imm(1)])]
        )
        issues = verify_module(module, physical=True, reg_budget=16)
        assert any("budget" in str(i) for i in issues)

    def test_leftover_virtual_flagged(self):
        module = _kernel_with(
            [Instruction(Opcode.MOV, dst=VirtualReg(5), srcs=[Imm(1)])]
        )
        issues = verify_module(module, physical=True)
        assert any("virtual register" in str(i) for i in issues)

    def test_value_abi_call_flagged(self):
        module = call_kernel()
        issues = verify_module(module, physical=True)
        assert any("value-ABI" in str(i) for i in issues)


class TestAssertVerified:
    def test_raises_with_issue_list(self):
        module = _kernel_with(
            [Instruction(Opcode.S2R, dst=VirtualReg(0))]
        )
        with pytest.raises(VerificationError) as excinfo:
            assert_verified(module)
        assert excinfo.value.issues

    def test_clean_module_passes(self):
        assert_verified(straight_line_kernel())
