"""Machine verifier tests."""

import pytest

from repro.ir.function import Function, Module
from repro.ir.verify import (
    VerificationError,
    assert_verified,
    verify_module,
)
from repro.isa.instructions import (
    CmpOp,
    Imm,
    Instruction,
    MemSpace,
    Opcode,
)
from repro.isa.registers import PhysReg, VirtualReg
from repro.regalloc import allocate_module
from tests.helpers import (
    call_kernel,
    diamond_kernel,
    loop_kernel,
    module_from_asm,
    straight_line_kernel,
)


@pytest.mark.parametrize(
    "make", [straight_line_kernel, diamond_kernel, loop_kernel, call_kernel]
)
def test_clean_fixtures_verify(make):
    assert verify_module(make()) == []


def _kernel_with(instructions):
    module = Module("m")
    fn = Function("k", is_kernel=True)
    block = fn.add_block("BB0")
    for inst in instructions:
        block.append(inst)
    block.append(Instruction(Opcode.EXIT))
    module.add(fn)
    return module


class TestStructuralChecks:
    def test_comparison_without_predicate(self):
        module = _kernel_with(
            [Instruction(Opcode.ISET, dst=VirtualReg(0), srcs=[Imm(1), Imm(2)])]
        )
        issues = verify_module(module)
        assert any("predicate" in str(i) for i in issues)

    def test_memory_without_space(self):
        module = _kernel_with(
            [Instruction(Opcode.LD, dst=VirtualReg(0), srcs=[], offset=0)]
        )
        issues = verify_module(module)
        assert any("memory space" in str(i) for i in issues)

    def test_param_store_flagged(self):
        module = _kernel_with(
            [Instruction(Opcode.ST, srcs=[Imm(1)], space=MemSpace.PARAM)]
        )
        issues = verify_module(module)
        assert any("read-only" in str(i) for i in issues)

    def test_surviving_phi_flagged(self):
        fn = diamond_kernel().kernel()
        from repro.ir.ssa import construct_ssa

        construct_ssa(fn)
        module = Module("m")
        module.add(fn)
        issues = verify_module(module)
        assert any("φ" in str(i) for i in issues)

    def test_s2r_without_special(self):
        module = _kernel_with([Instruction(Opcode.S2R, dst=VirtualReg(0))])
        issues = verify_module(module)
        assert any("special" in str(i) for i in issues)


class TestDefinedness:
    def test_read_before_write_flagged(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                IADD %v1, %v0, 1
                ST.global [0], %v1
                EXIT
            .end
            """
        )
        issues = verify_module(module)
        assert any("before definition" in str(i) for i in issues)

    def test_one_armed_definition_flagged(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                ISET.lt %v1, %v0, 4
                CBR %v1, T, J
            T:
                MOV %v2, 1
                BRA J
            J:
                ST.global [0], %v2
                EXIT
            .end
            """
        )
        issues = verify_module(module)
        assert any("%v2" in str(i) for i in issues)

    def test_both_arms_defined_is_clean(self):
        assert verify_module(diamond_kernel()) == []

    def test_device_args_are_defined(self):
        assert verify_module(call_kernel()) == []


class TestPhysicalChecks:
    def test_allocated_modules_verify(self):
        # allocate_module runs the verifier internally; reaching here
        # without VerificationError is itself the test.
        outcome = allocate_module(call_kernel(), "k", 24)
        assert verify_module(outcome.module, physical=True, reg_budget=24) == []

    def test_misaligned_wide_flagged(self):
        module = _kernel_with(
            [
                Instruction(Opcode.MOV, dst=PhysReg(0), srcs=[Imm(0)]),
                Instruction(
                    Opcode.MOV, dst=PhysReg(1, 2), srcs=[Imm(0.0)]
                ),
            ]
        )
        issues = verify_module(module, physical=True)
        assert any("misaligned" in str(i) for i in issues)

    def test_budget_overflow_flagged(self):
        module = _kernel_with(
            [Instruction(Opcode.MOV, dst=PhysReg(30), srcs=[Imm(1)])]
        )
        issues = verify_module(module, physical=True, reg_budget=16)
        assert any("budget" in str(i) for i in issues)

    def test_leftover_virtual_flagged(self):
        module = _kernel_with(
            [Instruction(Opcode.MOV, dst=VirtualReg(5), srcs=[Imm(1)])]
        )
        issues = verify_module(module, physical=True)
        assert any("virtual register" in str(i) for i in issues)

    def test_value_abi_call_flagged(self):
        module = call_kernel()
        issues = verify_module(module, physical=True)
        assert any("value-ABI" in str(i) for i in issues)


class TestAssertVerified:
    def test_raises_with_issue_list(self):
        module = _kernel_with(
            [Instruction(Opcode.S2R, dst=VirtualReg(0))]
        )
        with pytest.raises(VerificationError) as excinfo:
            assert_verified(module)
        assert excinfo.value.issues

    def test_clean_module_passes(self):
        assert_verified(straight_line_kernel())


class TestWideArgDefinedness:
    def test_wide_argument_is_defined_at_entry(self):
        # Regression: entry definedness used to seed only the 32-bit
        # form of each argument, flagging every 64/96/128-bit argument
        # as read before definition.
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                LD.global %v0.w2, [0]
                CALL %v1, f(%v0.w2)
                ST.global [0], %v1
                EXIT
            .end
            .func f args=1 returns=1
            BB0:
                FADD %v1, %v0.w2, 0.0
                RET %v1
            .end
            """
        )
        assert verify_module(module) == []

    def test_undefined_wide_non_argument_still_flagged(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                FADD %v1, %v4.w2, 0.0
                ST.global [0], %v1
                EXIT
            .end
            """
        )
        issues = verify_module(module)
        assert any("before definition" in str(i) for i in issues)


class TestSlotLiveness:
    def test_wide_write_clobbering_live_narrow_flagged(self):
        module = _kernel_with(
            [
                Instruction(Opcode.MOV, dst=PhysReg(1), srcs=[Imm(5)]),
                Instruction(Opcode.MOV, dst=PhysReg(0, 2), srcs=[Imm(0.0)]),
                Instruction(
                    Opcode.ST, srcs=[PhysReg(1)],
                    space=MemSpace.GLOBAL, offset=0,
                ),
            ]
        )
        issues = verify_module(module, physical=True)
        assert any("clobbers" in str(i) for i in issues)

    def test_overwrite_of_dead_value_is_clean(self):
        # Same wide write, but nothing reads R1 afterwards: reusing the
        # slots of a dead value is exactly what allocation is for.
        module = _kernel_with(
            [
                Instruction(Opcode.MOV, dst=PhysReg(1), srcs=[Imm(5)]),
                Instruction(Opcode.MOV, dst=PhysReg(0, 2), srcs=[Imm(0.0)]),
                Instruction(
                    Opcode.ST, srcs=[PhysReg(0, 2)],
                    space=MemSpace.GLOBAL, offset=0,
                ),
            ]
        )
        assert verify_module(module, physical=True) == []

    def test_exact_redefinition_is_clean(self):
        module = _kernel_with(
            [
                Instruction(Opcode.MOV, dst=PhysReg(1), srcs=[Imm(1)]),
                Instruction(Opcode.MOV, dst=PhysReg(1), srcs=[Imm(2)]),
                Instruction(
                    Opcode.ST, srcs=[PhysReg(1)],
                    space=MemSpace.GLOBAL, offset=0,
                ),
            ]
        )
        assert verify_module(module, physical=True) == []

    def test_clobber_across_branch_flagged(self):
        # The overwrite sits on one path; the value is read at the join.
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                ISET.lt %v1, %v0, 4
                CBR %v1, T, J
            T:
                MOV %v2, 1
                BRA J
            J:
                ST.global [0], %v3
                EXIT
            .end
            """
        )
        k = module.kernel()
        # Rewrite to physical by hand: %v3 -> R1, the branch-arm MOV
        # overwrites R0.w2 (slots 0-1) while R1 holds the stored value.
        for block in k.ordered_blocks():
            for inst in block.instructions:
                if inst.dst == VirtualReg(2):
                    inst.dst = PhysReg(0, 2)
                elif inst.dst is not None:
                    inst.dst = PhysReg(4 + inst.dst.index)
                inst.srcs = [
                    PhysReg(4 + s.index) if isinstance(s, VirtualReg) else s
                    for s in inst.srcs
                ]
        # R5 (= old %v1) feeds the CBR, R7 (= old %v3) is stored at J but
        # never written: seed it so only the clobber is interesting.
        k.blocks["BB0"].instructions.insert(
            0, Instruction(Opcode.MOV, dst=PhysReg(1), srcs=[Imm(0)])
        )
        k.blocks["J"].instructions[0].srcs = [PhysReg(1)]
        issues = verify_module(module, physical=True)
        assert any("clobbers" in str(i) and "R0.w2" in str(i) for i in issues)

    def test_spill_slot_clobber_flagged(self):
        # A narrow local slot is overwritten by an overlapping wide
        # store while a later reload still needs it.
        module = _kernel_with(
            [
                Instruction(Opcode.MOV, dst=PhysReg(0), srcs=[Imm(1)]),
                Instruction(
                    Opcode.ST, srcs=[PhysReg(0)],
                    space=MemSpace.LOCAL, offset=0,
                ),
                Instruction(Opcode.MOV, dst=PhysReg(2, 2), srcs=[Imm(0.0)]),
                Instruction(
                    Opcode.ST, srcs=[PhysReg(2, 2)],
                    space=MemSpace.LOCAL, offset=0,
                ),
                Instruction(
                    Opcode.LD, dst=PhysReg(1), srcs=[],
                    space=MemSpace.LOCAL, offset=0,
                ),
                Instruction(
                    Opcode.ST, srcs=[PhysReg(1)],
                    space=MemSpace.GLOBAL, offset=0,
                ),
            ]
        )
        issues = verify_module(module, physical=True)
        assert any(
            "store to local[0..7] clobbers live value local[0..3]" in str(i)
            for i in issues
        )

    def test_disjoint_spill_slots_are_clean(self):
        module = _kernel_with(
            [
                Instruction(Opcode.MOV, dst=PhysReg(0), srcs=[Imm(1)]),
                Instruction(
                    Opcode.ST, srcs=[PhysReg(0)],
                    space=MemSpace.LOCAL, offset=0,
                ),
                Instruction(Opcode.MOV, dst=PhysReg(2, 2), srcs=[Imm(0.0)]),
                Instruction(
                    Opcode.ST, srcs=[PhysReg(2, 2)],
                    space=MemSpace.LOCAL, offset=8,
                ),
                Instruction(
                    Opcode.LD, dst=PhysReg(1), srcs=[],
                    space=MemSpace.LOCAL, offset=0,
                ),
                Instruction(
                    Opcode.ST, srcs=[PhysReg(1)],
                    space=MemSpace.GLOBAL, offset=0,
                ),
            ]
        )
        assert verify_module(module, physical=True) == []


def _frame_call_module(live_reg):
    """A kernel holding ``live_reg`` across a frame-ABI call to ``g``,
    where ``g``'s register window is slot 2 (its derived base)."""
    module = Module("m")
    k = Function("k", is_kernel=True)
    block = k.add_block("BB0")
    block.append(Instruction(Opcode.MOV, dst=live_reg, srcs=[Imm(7)]))
    block.append(Instruction(Opcode.CALL, callee="g"))
    block.append(
        Instruction(
            Opcode.ST, srcs=[live_reg], space=MemSpace.GLOBAL, offset=0
        )
    )
    block.append(Instruction(Opcode.EXIT))
    module.add(k)
    g = Function("g", is_kernel=False)
    gb = g.add_block("BB0")
    gb.append(Instruction(Opcode.MOV, dst=PhysReg(2), srcs=[Imm(1)]))
    gb.append(Instruction(Opcode.RET))
    module.add(g)
    return module


class TestFrameCallWindow:
    def test_live_value_inside_callee_window_flagged(self):
        issues = verify_module(_frame_call_module(PhysReg(2)), physical=True)
        assert any("register window" in str(i) for i in issues)

    def test_live_value_below_callee_window_is_clean(self):
        assert (
            verify_module(_frame_call_module(PhysReg(0)), physical=True) == []
        )


SAVES_ASM = """
.module m
.kernel k shared=0
BB0:
    S2R %v0, %tid
    SHL %v1, %v0, 2
    LD.global %v2, [%v1]
    LD.global %v3, [%v1+4]
    LD.global %v4, [%v1+8]
    LD.global %v5, [%v1+12]
    FADD %v6, %v3, %v4
    FADD %v7, %v6, %v5
    CALL %v8, f(%v2)
    FADD %v9, %v8, %v7
    CALL %v10, g(%v9)
    ST.global [%v1], %v10
    EXIT
.end
.func f args=1 returns=1
BB0:
    FADD %v1, %v0, 1.0
    RET %v1
.end
.func g args=1 returns=1
BB0:
    FMUL %v1, %v0, 2.0
    RET %v1
.end
"""


def _allocation_with_saves():
    """An allocation whose plan contains real compressible-stack saves.

    The identity-layout ablation (``movement_minimization=False``)
    leaves the address register above both callees' compressed heights,
    forcing a save/restore pair around each call site.
    """
    from repro.isa.assembly import parse_module

    outcome = allocate_module(
        parse_module(SAVES_ASM), "k", 12, movement_minimization=False
    )
    assert outcome.stack_moves > 0, "fixture must produce saves"
    return outcome


class TestStackProtocol:
    def test_allocation_with_saves_verifies(self):
        outcome = _allocation_with_saves()
        assert (
            verify_module(
                outcome.module, physical=True, reg_budget=12,
                interproc=outcome.interproc,
            )
            == []
        )

    def _mov_index(self, block, dst, src):
        for i, inst in enumerate(block.instructions):
            if (
                inst.opcode is Opcode.MOV
                and inst.dst == dst
                and inst.srcs == [src]
            ):
                return i
        raise AssertionError(f"no MOV {dst} <- {src} in block")

    def test_missing_restore_flagged(self):
        outcome = _allocation_with_saves()
        plan = outcome.interproc.plans["k"][0]
        _, from_rel, to_rel = plan.saves[0]
        block = outcome.module.functions["k"].blocks[plan.block]
        calls = [i for i, x in enumerate(block.instructions) if x.is_call]
        # The restore mirrors the save after the first call.
        idx = self._mov_index(
            block, PhysReg(from_rel), PhysReg(to_rel)
        )
        assert idx > calls[0]
        del block.instructions[idx]
        issues = verify_module(
            outcome.module, physical=True, interproc=outcome.interproc
        )
        assert any("unbalanced save/restore" in str(i) for i in issues)

    def test_missing_save_flagged(self):
        outcome = _allocation_with_saves()
        plan = outcome.interproc.plans["k"][0]
        _, from_rel, to_rel = plan.saves[0]
        block = outcome.module.functions["k"].blocks[plan.block]
        idx = self._mov_index(block, PhysReg(to_rel), PhysReg(from_rel))
        del block.instructions[idx]
        issues = verify_module(
            outcome.module, physical=True, interproc=outcome.interproc
        )
        assert any("missing save" in str(i) for i in issues)


class TestDeadFunctionElimination:
    def test_unreachable_function_dropped_not_flagged(self):
        # Regression (fuzz seed 129): an unreachable device function
        # kept its virtual registers and crashed the output verifier.
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                SHL %v1, %v0, 2
                LD.global %v2, [%v1]
                FADD %v3, %v2, 1.0
                ST.global [%v1], %v3
                EXIT
            .end
            .func orphan args=1 returns=1
            BB0:
                FMUL %v1, %v0, 2.0
                RET %v1
            .end
            """
        )
        outcome = allocate_module(module, "k", 8)
        assert "orphan" not in outcome.module.functions
        assert verify_module(outcome.module, physical=True) == []
        # The input module is untouched.
        assert "orphan" in module.functions
