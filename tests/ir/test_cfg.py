"""CFG, dominator, frontier, and loop tests."""

import pytest

from repro.ir.cfg import CFG, split_critical_edges
from repro.ir.callgraph import CallGraph, RecursionError_, count_static_calls
from tests.helpers import (
    call_kernel,
    diamond_kernel,
    loop_kernel,
    module_from_asm,
    straight_line_kernel,
)


class TestCFGShape:
    def test_straight_line(self):
        fn = straight_line_kernel().kernel()
        cfg = CFG(fn)
        assert cfg.rpo == ["BB0"]
        assert cfg.back_edges == []

    def test_diamond(self):
        fn = diamond_kernel().kernel()
        cfg = CFG(fn)
        assert cfg.rpo[0] == "BB0"
        assert set(cfg.succs["BB0"]) == {"BBT", "BBF"}
        assert set(cfg.preds["BBJ"]) == {"BBT", "BBF"}

    def test_diamond_dominators(self):
        fn = diamond_kernel().kernel()
        cfg = CFG(fn)
        assert cfg.idom["BBT"] == "BB0"
        assert cfg.idom["BBF"] == "BB0"
        assert cfg.idom["BBJ"] == "BB0"
        assert cfg.dominates("BB0", "BBJ")
        assert not cfg.dominates("BBT", "BBJ")

    def test_diamond_frontiers(self):
        fn = diamond_kernel().kernel()
        cfg = CFG(fn)
        assert cfg.frontier["BBT"] == {"BBJ"}
        assert cfg.frontier["BBF"] == {"BBJ"}
        assert cfg.frontier["BB0"] == set()

    def test_loop_detection(self):
        fn = loop_kernel().kernel()
        cfg = CFG(fn)
        assert cfg.back_edges == [("BODY", "HEAD")]
        loop = cfg.natural_loop(("BODY", "HEAD"))
        assert loop == {"HEAD", "BODY"}
        assert cfg.loop_depth["BODY"] == 1
        assert cfg.loop_depth["BB0"] == 0
        assert cfg.loop_depth["DONE"] == 0

    def test_unreachable_block_excluded_from_rpo(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                EXIT
            DEAD:
                EXIT
            .end
            """
        )
        cfg = CFG(module.kernel())
        assert "DEAD" not in cfg.rpo

    def test_nested_loop_depth(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                MOV %v0, 0
                BRA H1
            H1:
                ISET.lt %v1, %v0, 10
                CBR %v1, H2PRE, DONE
            H2PRE:
                MOV %v2, 0
                BRA H2
            H2:
                ISET.lt %v3, %v2, 10
                CBR %v3, B2, L1LATCH
            B2:
                IADD %v2, %v2, 1
                BRA H2
            L1LATCH:
                IADD %v0, %v0, 1
                BRA H1
            DONE:
                EXIT
            .end
            """
        )
        cfg = CFG(module.kernel())
        assert cfg.loop_depth["B2"] == 2
        assert cfg.loop_depth["H2"] == 2
        assert cfg.loop_depth["H1"] == 1
        assert cfg.loop_depth["DONE"] == 0


class TestCriticalEdges:
    def test_loop_kernel_has_critical_edge(self):
        fn = loop_kernel().kernel()
        cfg = CFG(fn)
        # HEAD has two successors and HEAD has two predecessors via BRA;
        # the edge HEAD->... check: BODY has 1 pred, DONE has 1 pred, so
        # no critical edges in this shape.
        assert cfg.critical_edges() == []

    def test_split_inserts_block(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            A:
                S2R %v0, %tid
                ISET.lt %v1, %v0, 4
                CBR %v1, B, C
            B:
                ISET.lt %v2, %v0, 2
                CBR %v2, C, D
            C:
                EXIT
            D:
                EXIT
            .end
            """
        )
        fn = module.kernel()
        assert CFG(fn).critical_edges() != []
        assert split_critical_edges(fn)
        fn.validate()
        cfg = CFG(fn)
        assert cfg.critical_edges() == []

    def test_split_noop_when_clean(self):
        fn = diamond_kernel().kernel()
        assert not split_critical_edges(fn)


class TestCallGraph:
    def test_call_sites_counted_transitively(self):
        module = call_kernel()
        assert count_static_calls(module, "k") == 3

    def test_bottom_up_order(self):
        module = call_kernel()
        order = CallGraph(module).bottom_up_order("k")
        assert order.index("offset") < order.index("scale") < order.index("k")

    def test_reachable(self):
        module = call_kernel()
        cg = CallGraph(module)
        assert cg.reachable("scale") == {"scale", "offset"}

    def test_recursion_rejected(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                CALL %v0, f(1)
                EXIT
            .end
            .func f args=1 returns=1
            BB0:
                CALL %v1, f(%v0)
                RET %v1
            .end
            """
        )
        with pytest.raises(RecursionError_):
            CallGraph(module)

    def test_direct_callers(self):
        module = call_kernel()
        cg = CallGraph(module)
        assert cg.direct_callers("offset") == ["scale"]
