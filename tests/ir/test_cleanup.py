"""Copy-propagation and DCE tests."""

import pytest

from repro.ir.cleanup import (
    cleanup_function,
    cleanup_module,
    eliminate_dead_code,
    propagate_copies,
)
from repro.ir.ssa import construct_ssa, destruct_ssa
from repro.isa.instructions import Opcode
from repro.sim.interp import LaunchConfig, run_kernel
from tests.helpers import loop_kernel, module_from_asm


class TestCopyPropagation:
    def test_simple_forwarding(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                MOV %v1, %v0
                SHL %v2, %v1, 2
                ST.global [%v2], %v1
                EXIT
            .end
            """
        )
        fn = module.kernel()
        count = propagate_copies(fn)
        assert count == 2
        shl = fn.instructions()[2]
        assert str(shl.srcs[0]) == "%v0"

    def test_redefinition_kills_copy(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                MOV %v1, %v0
                S2R %v0, %ctaid
                SHL %v2, %v1, 2
                ST.global [%v2], %v0
                EXIT
            .end
            """
        )
        fn = module.kernel()
        propagate_copies(fn)
        shl = fn.instructions()[3]
        # %v1 must NOT be replaced by the redefined %v0.
        assert str(shl.srcs[0]) == "%v1"

    def test_copies_do_not_cross_blocks(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                MOV %v1, %v0
                BRA NEXT
            NEXT:
                ST.global [0], %v1
                EXIT
            .end
            """
        )
        fn = module.kernel()
        propagate_copies(fn)
        store = fn.blocks["NEXT"].instructions[0]
        assert str(store.srcs[0]) == "%v1"


class TestDeadCodeElimination:
    def test_unused_result_removed(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                IADD %v1, %v0, 1
                IADD %v2, %v0, 2
                SHL %v3, %v0, 2
                ST.global [%v3], %v1
                EXIT
            .end
            """
        )
        fn = module.kernel()
        removed = eliminate_dead_code(fn)
        assert removed == 1  # %v2 is dead
        assert all("%v2" not in str(i) for i in fn.instructions())

    def test_dead_chain_removed_transitively(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                IADD %v1, %v0, 1
                IMUL %v2, %v1, 3
                IADD %v3, %v2, 5
                EXIT
            .end
            """
        )
        fn = module.kernel()
        removed = eliminate_dead_code(fn)
        # The whole chain AND the now-unused S2R disappear.
        assert removed == 4
        assert len(fn.instructions()) == 1  # just EXIT

    def test_stores_calls_barriers_kept(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=4
            BB0:
                S2R %v0, %tid
                CALL %v1, noise(%v0)
                ST.shared [0], %v0
                BAR
                EXIT
            .end
            .func noise args=1 returns=1
            BB0:
                FMUL %v1, %v0, 2.0
                RET %v1
            .end
            """
        )
        fn = module.kernel()
        eliminate_dead_code(fn)
        opcodes = [i.opcode for i in fn.instructions()]
        assert Opcode.CALL in opcodes
        assert Opcode.ST in opcodes
        assert Opcode.BAR in opcodes

    def test_dead_loads_removed(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                LD.global %v1, [%v0]
                EXIT
            .end
            """
        )
        fn = module.kernel()
        # The load and the address-producing S2R both die.
        assert eliminate_dead_code(fn) == 2


class TestCleanupPipeline:
    def test_phi_copy_residue_cleaned(self):
        module = loop_kernel()
        launch = LaunchConfig(block_size=4, params={0: 5})
        expected = run_kernel(module, launch)
        fn = module.kernel()
        construct_ssa(fn)
        destruct_ssa(fn)
        before = len(fn.instructions())
        report = cleanup_function(fn)
        assert (
            report.copies_propagated > 0 or report.instructions_removed >= 0
        )
        assert len(fn.instructions()) <= before
        module.validate()
        assert run_kernel(module, launch) == pytest.approx(expected)

    def test_cleanup_module_aggregates(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                MOV %v1, %v0
                IADD %v9, %v0, 7
                ST.global [0], %v1
                EXIT
            .end
            """
        )
        report = cleanup_module(module)
        assert report.copies_propagated >= 1
        assert report.instructions_removed >= 1
