"""Interference-graph construction tests."""

from repro.ir.interference import build_interference, move_pairs
from repro.isa.registers import VirtualReg
from tests.helpers import (
    call_kernel,
    diamond_kernel,
    loop_kernel,
    module_from_asm,
    straight_line_kernel,
)


def v(i, w=1):
    return VirtualReg(i, w)


class TestConstruction:
    def test_straight_line_chain(self):
        fn = straight_line_kernel().kernel()
        graph = build_interference(fn)
        # %v0 (tid) is live until %v2 is defined: they interfere.
        assert graph.interferes(v(0), v(1))
        # %v4 defined after %v0's last use at... %v0 dies at IADD; the
        # loaded value and the address register coexist.
        assert graph.interferes(v(3), v(4))

    def test_non_overlapping_do_not_interfere(self):
        fn = straight_line_kernel().kernel()
        graph = build_interference(fn)
        # %v1 dies at IADD (its only use); %v5 is defined much later.
        assert not graph.interferes(v(1), v(5))

    def test_loop_carried_interference(self):
        fn = loop_kernel().kernel()
        graph = build_interference(fn)
        # accumulator and induction variable are both live in the loop.
        assert graph.interferes(v(2), v(3))

    def test_branch_arms_interfere_with_shared_values(self):
        fn = diamond_kernel().kernel()
        graph = build_interference(fn)
        # %v0 (tid) is used at the join: live through both arms, so it
        # interferes with the per-arm definition of %v2.
        assert graph.interferes(v(0), v(2))

    def test_move_does_not_create_interference(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                MOV %v1, %v0
                SHL %v2, %v1, 2
                ST.global [%v2], %v1
                EXIT
            .end
            """
        )
        graph = build_interference(module.kernel())
        # Chaitin's move refinement: MOV dst and src may share a slot.
        assert not graph.interferes(v(0), v(1))

    def test_device_args_interfere_with_each_other(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                CALL %v0, f(1, 2)
                ST.global [0], %v0
                EXIT
            .end
            .func f args=2 returns=1
            BB0:
                IADD %v2, %v0, %v1
                RET %v2
            .end
            """
        )
        graph = build_interference(module.functions["f"])
        assert graph.interferes(v(0), v(1))

    def test_blocking_degree_counts_widths(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                LD.global %v1.w2, [%v0]
                FADD %v2, %v1.w2, 1.0
                ST.global [%v0], %v2
                ST.global [%v0+4], %v1.w2
                EXIT
            .end
            """
        )
        graph = build_interference(module.kernel())
        assert graph.blocking_degree(v(0), removed=set()) >= 2  # w2 counts 2


class TestMovePairs:
    def test_collects_reg_to_reg_moves(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                MOV %v1, %v0
                MOV %v2, 5
                ST.global [%v1], %v2
                EXIT
            .end
            """
        )
        pairs = move_pairs(module.kernel())
        assert (v(1), v(0)) in pairs
        assert all(isinstance(src, VirtualReg) for _, src in pairs)


class TestGraphOps:
    def test_copy_is_independent(self):
        fn = loop_kernel().kernel()
        graph = build_interference(fn)
        clone = graph.copy()
        clone.add_edge(v(90), v(91))
        assert not graph.interferes(v(90), v(91))

    def test_len_counts_nodes(self):
        fn = straight_line_kernel().kernel()
        graph = build_interference(fn)
        assert len(graph) == len(fn.all_regs())
