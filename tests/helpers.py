"""Shared test utilities: small hand-written ORAS programs."""

from __future__ import annotations

from repro.ir.function import Function, Module
from repro.isa.assembly import parse_module


def module_from_asm(text: str) -> Module:
    module = parse_module(text)
    module.validate()
    return module


def straight_line_kernel() -> Module:
    """A branch-free kernel touching params, global memory, and ALU ops."""
    return module_from_asm(
        """
        .module straight
        .kernel k shared=0
        BB0:
            S2R %v0, %tid
            LD.param %v1, [0]
            IADD %v2, %v0, %v1
            SHL %v3, %v2, 2
            LD.global %v4, [%v3]
            FMUL %v5, %v4, 2.0
            ST.global [%v3], %v5
            EXIT
        .end
        """
    )


def diamond_kernel() -> Module:
    """If/else reconverging at an exit block."""
    return module_from_asm(
        """
        .module diamond
        .kernel k shared=0
        BB0:
            S2R %v0, %tid
            ISET.lt %v1, %v0, 16
            CBR %v1, BBT, BBF
        BBT:
            MOV %v2, 1
            BRA BBJ
        BBF:
            MOV %v2, 2
            BRA BBJ
        BBJ:
            SHL %v3, %v0, 2
            ST.global [%v3], %v2
            EXIT
        .end
        """
    )


def loop_kernel() -> Module:
    """A counted loop accumulating into a register, then storing."""
    return module_from_asm(
        """
        .module loopy
        .kernel k shared=0
        BB0:
            S2R %v0, %tid
            LD.param %v1, [0]
            MOV %v2, 0
            MOV %v3, 0
            BRA HEAD
        HEAD:
            ISET.lt %v4, %v3, %v1
            CBR %v4, BODY, DONE
        BODY:
            IADD %v2, %v2, %v3
            IADD %v3, %v3, 1
            BRA HEAD
        DONE:
            SHL %v5, %v0, 2
            ST.global [%v5], %v2
            EXIT
        .end
        """
    )


def call_kernel() -> Module:
    """A kernel calling a device function twice plus a nested call."""
    return module_from_asm(
        """
        .module callee
        .kernel k shared=0
        BB0:
            S2R %v0, %tid
            SHL %v1, %v0, 2
            LD.global %v2, [%v1]
            CALL %v3, scale(%v2)
            CALL %v4, scale(%v3)
            ST.global [%v1], %v4
            EXIT
        .end
        .func scale args=1 returns=1
        BB0:
            CALL %v1, offset(%v0)
            FMUL %v2, %v1, 3.0
            RET %v2
        .end
        .func offset args=1 returns=1
        BB0:
            FADD %v1, %v0, 1.0
            RET %v1
        .end
        """
    )


def wide_kernel() -> Module:
    """Uses 64-bit and 128-bit values to exercise wide allocation."""
    return module_from_asm(
        """
        .module wide
        .kernel k shared=0
        BB0:
            S2R %v0, %tid
            SHL %v1, %v0, 3
            LD.global %v2.w2, [%v1]
            LD.global %v3.w4, [%v1+16]
            FADD %v4.w2, %v2.w2, %v3.w4
            FMUL %v5, %v4.w2, 0.5
            ST.global [%v1], %v5
            EXIT
        .end
        """
    )
