"""Structured logging and the flight recorder.

The logger's contract is deterministic output: fixed leading keys
(``seq``, ``lvl``, ``event``), extras in sorted order, wall-clock
timestamps last and suppressible via ``ORION_TRACE_WALL=0`` — so two
identical runs produce byte-identical logs, and a log line diff reads
like a trace diff.
"""

import json

import pytest

from repro.obs.flight import FlightRecorder
from repro.obs.log import LEVELS, StructuredLogger, configure, get_logger
from repro.obs.tracectx import TraceContext, use_trace


def read_log(path):
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
    ]


class TestStructuredLogger:
    def test_disabled_logger_writes_nothing(self, tmp_path):
        log = StructuredLogger(None)
        log.info("ignored", a=1)
        assert not log.enabled

    def test_levels_filter(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = StructuredLogger(path, level="warn", record_time=False)
        log.debug("d")
        log.info("i")
        log.warn("w")
        log.error("e")
        log.close()
        assert [r["event"] for r in read_log(path)] == ["w", "e"]

    def test_unknown_level_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            StructuredLogger(tmp_path / "x", level="loud")
        log = StructuredLogger(tmp_path / "x")
        with pytest.raises(ValueError):
            log.log("loud", "event")

    def test_field_order_is_deterministic(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = StructuredLogger(path, record_time=False)
        log.info("evt", zebra=1, alpha=2, mid=3)
        log.close()
        line = path.read_text(encoding="utf-8").strip()
        # seq/lvl/event lead; extras follow sorted.
        assert list(json.loads(line)) == [
            "seq", "lvl", "event", "alpha", "mid", "zebra",
        ]

    def test_seq_is_monotonic(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = StructuredLogger(path, record_time=False)
        for index in range(3):
            log.info("evt", index=index)
        log.close()
        assert [r["seq"] for r in read_log(path)] == [1, 2, 3]

    def test_none_valued_fields_are_dropped(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = StructuredLogger(path, record_time=False)
        log.info("evt", kept=0, dropped=None)
        log.close()
        (record,) = read_log(path)
        assert "dropped" not in record
        assert record["kept"] == 0

    def test_ambient_trace_is_attached(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = StructuredLogger(path, record_time=False)
        log.info("untraced")
        with use_trace(TraceContext("cafe1234cafe1234")):
            log.info("traced")
            log.info("explicit", trace="override")
        log.close()
        records = read_log(path)
        assert "trace" not in records[0]
        assert records[1]["trace"] == "cafe1234cafe1234"
        assert records[2]["trace"] == "override"

    def test_wall_suppression_tracks_trace_wall_env(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("ORION_TRACE_WALL", "0")
        log = StructuredLogger(tmp_path / "a.jsonl")
        log.info("evt")
        log.close()
        (record,) = read_log(tmp_path / "a.jsonl")
        assert "ts" not in record
        monkeypatch.delenv("ORION_TRACE_WALL")
        log = StructuredLogger(tmp_path / "b.jsonl")
        log.info("evt")
        log.close()
        (record,) = read_log(tmp_path / "b.jsonl")
        assert isinstance(record["ts"], float)

    def test_first_open_truncates_reopen_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"stale": true}\n', encoding="utf-8")
        log = StructuredLogger(path, record_time=False)
        log.info("fresh")
        log.close()
        log.info("appended")  # same logger object: append, not truncate
        log.close()
        assert [r["event"] for r in read_log(path)] == ["fresh", "appended"]

    def test_level_values_are_ordered(self):
        assert (
            LEVELS["debug"] < LEVELS["info"] < LEVELS["warn"] < LEVELS["error"]
        )


class TestProcessLogger:
    def test_env_configured_logger(self, tmp_path, monkeypatch):
        path = tmp_path / "proc.jsonl"
        monkeypatch.setenv("ORION_LOG", str(path))
        monkeypatch.setenv("ORION_LOG_LEVEL", "warn")
        configure(None)  # reset whatever an earlier test installed
        try:
            log = get_logger()
            assert log.enabled
            log.info("below-threshold")
            log.warn("kept")
            log.close()
            assert [r["event"] for r in read_log(path)] == ["kept"]
        finally:
            configure(None)

    def test_default_is_disabled(self, monkeypatch):
        monkeypatch.delenv("ORION_LOG", raising=False)
        configure(None)
        assert not get_logger().enabled

    def test_configure_replaces(self, tmp_path):
        first = tmp_path / "one.jsonl"
        configure(first)
        try:
            get_logger().info("one")
            configure(tmp_path / "two.jsonl")
            get_logger().info("two")
        finally:
            configure(None)
        assert [r["event"] for r in read_log(first)] == ["one"]
        assert [
            r["event"] for r in read_log(tmp_path / "two.jsonl")
        ] == ["two"]


class TestFlightRecorder:
    def test_capacity_bounds_entries(self):
        flight = FlightRecorder(capacity=3)
        for index in range(5):
            flight.record(index=index)
        entries = flight.snapshot()
        assert [e["index"] for e in entries] == [2, 3, 4]
        assert flight.total == 5
        assert len(flight) == 3

    def test_ordinals_survive_eviction(self):
        flight = FlightRecorder(capacity=2)
        for index in range(4):
            flight.record(index=index)
        assert [e["n"] for e in flight.snapshot()] == [3, 4]

    def test_none_fields_dropped(self):
        flight = FlightRecorder(capacity=4)
        entry = flight.record(trace=None, type="ping", peer=None)
        assert entry == {"n": 1, "type": "ping"}

    def test_tail(self):
        flight = FlightRecorder(capacity=8)
        for index in range(5):
            flight.record(index=index)
        assert [e["index"] for e in flight.tail(2)] == [3, 4]
        assert len(flight.tail(99)) == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_snapshot_is_a_copy(self):
        flight = FlightRecorder(capacity=2)
        flight.record(value=1)
        snap = flight.snapshot()
        snap[0]["value"] = 99
        assert flight.snapshot()[0]["value"] == 1
