"""Span API tests: nesting, re-entrancy, hub events, timer charging."""

import pytest

from repro.obs.spans import current_hub, current_span, span, use_hub
from repro.perf.timers import TIMERS
from repro.runtime.telemetry import EventKind, InMemorySink, TelemetryHub


@pytest.fixture(autouse=True)
def fresh_timers():
    TIMERS.reset()
    yield
    TIMERS.reset()


def hub_with_sink(**kwargs):
    sink = InMemorySink()
    return TelemetryHub(sink, **kwargs), sink


class TestTimerCharging:
    def test_outermost_span_charges_timers_once(self):
        with span("alpha"):
            pass
        assert TIMERS.phases["alpha"].calls == 1

    def test_reentrant_same_name_charges_only_outermost(self):
        """The old ``phase()`` double-counted this exact shape."""
        with span("alpha"):
            with span("alpha"):
                with span("alpha"):
                    pass
        assert TIMERS.phases["alpha"].calls == 1

    def test_distinct_names_both_charge(self):
        with span("alpha"):
            with span("beta"):
                pass
        assert TIMERS.phases["alpha"].calls == 1
        assert TIMERS.phases["beta"].calls == 1

    def test_timer_false_charges_nothing(self):
        with span("alpha", timer=False):
            pass
        assert "alpha" not in TIMERS.phases

    def test_outermost_also_charges_span_metrics(self):
        from repro.obs.metrics import get_registry, reset_registry

        reset_registry()
        with span("alpha"):
            with span("alpha"):
                pass
        counter = get_registry().get("orion_spans_total")
        assert counter.value(name="alpha") == 1


class TestHubEvents:
    def test_no_hub_means_no_events_but_still_times(self):
        assert current_hub() is None
        with span("alpha"):
            pass
        assert TIMERS.phases["alpha"].calls == 1

    def test_emits_paired_start_end_with_labels(self):
        hub, sink = hub_with_sink()
        with use_hub(hub):
            with span("allocate", session="s", kernel="k"):
                pass
        start, end = sink.events
        assert start.kind is EventKind.SPAN_START
        assert end.kind is EventKind.SPAN_END
        assert start.session == end.session == "s"
        assert start.data["name"] == end.data["name"] == "allocate"
        assert start.data["kernel"] == end.data["kernel"] == "k"
        assert start.data["span"] == end.data["span"] == 1
        assert end.data["status"] == "ok"

    def test_nested_spans_link_parents(self):
        hub, sink = hub_with_sink()
        with use_hub(hub):
            with span("outer", session="s"):
                with span("inner", session="s"):
                    pass
        starts = sink.of(EventKind.SPAN_START)
        outer, inner = starts
        assert outer.data["parent"] is None
        assert inner.data["parent"] == outer.data["span"]

    def test_span_ids_are_scoped_per_session(self):
        hub, sink = hub_with_sink()
        with use_hub(hub):
            with span("work", session="a"):
                pass
            with span("work", session="b"):
                pass
        starts = sink.of(EventKind.SPAN_START)
        # Each session numbers its spans independently from 1.
        assert [e.data["span"] for e in starts] == [1, 1]

    def test_parent_links_do_not_cross_sessions(self):
        hub, sink = hub_with_sink()
        with use_hub(hub):
            with span("outer", session="a"):
                with span("inner", session="b"):
                    pass
        inner = sink.of(EventKind.SPAN_START)[1]
        assert inner.data["parent"] is None

    def test_error_status_propagates_and_reraises(self):
        hub, sink = hub_with_sink()
        with pytest.raises(RuntimeError):
            with use_hub(hub):
                with span("explode"):
                    raise RuntimeError("boom")
        (end,) = sink.of(EventKind.SPAN_END)
        assert end.data["status"] == "error"
        assert current_span() is None  # stack unwound

    def test_wall_duration_rides_the_separate_field(self):
        hub, sink = hub_with_sink()
        with use_hub(hub):
            with span("alpha"):
                pass
        start, end = sink.events
        assert start.wall is None
        assert end.wall is not None and end.wall >= 0

    def test_record_wall_false_suppresses_durations(self):
        hub, sink = hub_with_sink(record_wall=False)
        with use_hub(hub):
            with span("alpha"):
                pass
        assert all(e.wall is None for e in sink.events)


class TestUseHub:
    def test_nesting_restores_previous_hub(self):
        a, _ = hub_with_sink()
        b, _ = hub_with_sink()
        with use_hub(a):
            assert current_hub() is a
            with use_hub(b):
                assert current_hub() is b
            assert current_hub() is a
        assert current_hub() is None

    def test_reentrant_same_hub_is_harmless(self):
        hub, sink = hub_with_sink()
        with use_hub(hub), use_hub(hub):
            with span("alpha"):
                pass
        assert current_hub() is None
        assert len(sink.events) == 2
