"""Trace tooling tests: read, summarize, filter, diff, Chrome export."""

import json

import pytest

from repro.obs.spans import span, use_hub
from repro.obs.tracefile import (
    diff_traces,
    filter_trace,
    read_trace,
    summarize_trace,
    to_chrome,
)
from repro.runtime.telemetry import EventKind, JsonlSink, TelemetryHub


@pytest.fixture()
def trace_path(tmp_path):
    """A small real trace: spans + plain events from two sessions."""
    path = tmp_path / "trace.jsonl"
    hub = TelemetryHub(JsonlSink(path), record_wall=False)
    with use_hub(hub):
        with span("session", session="bfs"):
            hub.emit(EventKind.CACHE_MISS, "bfs", label="original")
            hub.emit(EventKind.BACKEND_INVOKE, "bfs", backend="timing")
            with span("measure", session="bfs", label="original"):
                pass
            hub.emit(EventKind.CACHE_HIT, "bfs", label="original")
        with span("session", session="nn"):
            hub.emit(EventKind.CACHE_HIT, "nn", label="original")
        hub.emit(EventKind.ENGINE_FINISH, None, sessions=2)
    hub.close()
    return path


class TestReadTrace:
    def test_parses_events_in_seq_order(self, trace_path):
        events = read_trace(trace_path)
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
        assert events[0]["kind"] == "span_start"

    def test_rejects_non_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 1, "kind": "trial", "data": {}}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(path)

    def test_rejects_events_without_seq_or_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"data": {}}\n')
        with pytest.raises(ValueError, match="missing seq/kind"):
            read_trace(path)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"seq": 1, "kind": "trial", "data": {}}\n\n')
        assert len(read_trace(path)) == 1


class TestSummarize:
    def test_counts_spans_and_cache_rates(self, trace_path):
        text = summarize_trace(read_trace(trace_path))
        assert "2 session(s): bfs, nn" in text
        assert "cache_hit" in text and "span_end" in text
        assert "session" in text and "measure" in text
        assert "hit rate 66.7%" in text  # 2 hits, 1 miss

    def test_empty_trace(self):
        assert "0 event(s)" in summarize_trace([])


class TestFilter:
    def test_by_session(self, trace_path):
        events = read_trace(trace_path)
        kept = filter_trace(events, session="nn")
        assert kept and all(e.get("session") == "nn" for e in kept)

    def test_by_kind(self, trace_path):
        events = read_trace(trace_path)
        kept = filter_trace(events, kinds=["cache_hit", "cache_miss"])
        assert {e["kind"] for e in kept} == {"cache_hit", "cache_miss"}

    def test_combined(self, trace_path):
        events = read_trace(trace_path)
        kept = filter_trace(events, session="bfs", kinds=["cache_hit"])
        assert len(kept) == 1


class TestDiff:
    def test_identical_traces_have_no_diffs(self, trace_path):
        events = read_trace(trace_path)
        assert diff_traces(events, list(events)) == []

    def test_wall_clock_is_ignored_by_default(self, trace_path):
        events = read_trace(trace_path)
        other = [dict(e) for e in events]
        other[0]["wall"] = 1.5
        assert diff_traces(events, other) == []
        assert diff_traces(events, other, ignore_wall=False)

    def test_divergent_event_is_reported_with_seq(self, trace_path):
        events = read_trace(trace_path)
        other = [dict(e) for e in events]
        other[2] = {**other[2], "kind": "cache_hit"}
        diffs = diff_traces(events, other)
        assert len(diffs) == 1
        assert diffs[0].startswith("seq 3:")

    def test_length_mismatch_is_reported(self, trace_path):
        events = read_trace(trace_path)
        diffs = diff_traces(events, events[:-1])
        assert any("lengths differ" in d for d in diffs)

    def test_limit_stops_the_flood(self, trace_path):
        events = read_trace(trace_path)
        other = [{**e, "kind": "trial"} for e in events]
        diffs = diff_traces(events, other, limit=2)
        assert any("stopped after 2" in d for d in diffs)


class TestChromeExport:
    def test_emits_balanced_duration_events(self, trace_path):
        doc = to_chrome(read_trace(trace_path))
        events = doc["traceEvents"]
        b = [e for e in events if e["ph"] == "B"]
        e_ = [e for e in events if e["ph"] == "E"]
        assert len(b) == len(e_) == 3
        assert all(ev["cat"] == "span" for ev in b + e_)

    def test_sessions_become_named_threads(self, trace_path):
        doc = to_chrome(read_trace(trace_path))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"bfs", "nn", "<engine>"} <= names
        # All events of one session share that session's tid.
        tid = next(e["tid"] for e in meta if e["args"]["name"] == "bfs")
        bfs = [
            e
            for e in doc["traceEvents"]
            if e["ph"] != "M" and e["tid"] == tid
        ]
        assert bfs and all(e["pid"] == 1 for e in bfs)

    def test_timestamps_are_sequence_numbers(self, trace_path):
        events = read_trace(trace_path)
        doc = to_chrome(events)
        timed = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert [e["ts"] for e in timed] == [e["seq"] for e in events]

    def test_document_is_valid_trace_event_json(self, trace_path):
        doc = to_chrome(read_trace(trace_path))
        revived = json.loads(json.dumps(doc))
        assert revived["displayTimeUnit"] == "ms"
        assert revived["otherData"]["trace_schema_version"] == 1
        for event in revived["traceEvents"]:
            assert {"ph", "pid", "tid"} <= event.keys()

    def test_instant_events_carry_data_as_args(self, trace_path):
        doc = to_chrome(read_trace(trace_path))
        finish = next(
            e for e in doc["traceEvents"] if e["name"] == "engine_finish"
        )
        assert finish["ph"] == "i"
        assert finish["args"]["sessions"] == 2
