"""Trace tooling tests: read, summarize, filter, diff, Chrome export."""

import json

import pytest

from repro.obs.spans import span, use_hub
from repro.obs.tracefile import (
    diff_traces,
    filter_trace,
    merge_traces,
    merged_to_chrome,
    parse_trace_text,
    read_trace,
    slow_traces,
    summarize_trace,
    to_chrome,
)
from repro.runtime.telemetry import EventKind, JsonlSink, TelemetryHub


@pytest.fixture()
def trace_path(tmp_path):
    """A small real trace: spans + plain events from two sessions."""
    path = tmp_path / "trace.jsonl"
    hub = TelemetryHub(JsonlSink(path), record_wall=False)
    with use_hub(hub):
        with span("session", session="bfs"):
            hub.emit(EventKind.CACHE_MISS, "bfs", label="original")
            hub.emit(EventKind.BACKEND_INVOKE, "bfs", backend="timing")
            with span("measure", session="bfs", label="original"):
                pass
            hub.emit(EventKind.CACHE_HIT, "bfs", label="original")
        with span("session", session="nn"):
            hub.emit(EventKind.CACHE_HIT, "nn", label="original")
        hub.emit(EventKind.ENGINE_FINISH, None, sessions=2)
    hub.close()
    return path


class TestReadTrace:
    def test_parses_events_in_seq_order(self, trace_path):
        events = read_trace(trace_path)
        assert [e["seq"] for e in events] == list(range(1, len(events) + 1))
        assert events[0]["kind"] == "span_start"

    def test_rejects_non_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"seq": 1, "kind": "trial", "data": {}}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(path)

    def test_rejects_events_without_seq_or_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"data": {}}\n')
        with pytest.raises(ValueError, match="missing seq/kind"):
            read_trace(path)

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text('{"seq": 1, "kind": "trial", "data": {}}\n\n')
        assert len(read_trace(path)) == 1


class TestSummarize:
    def test_counts_spans_and_cache_rates(self, trace_path):
        text = summarize_trace(read_trace(trace_path))
        assert "2 session(s): bfs, nn" in text
        assert "cache_hit" in text and "span_end" in text
        assert "session" in text and "measure" in text
        assert "hit rate 66.7%" in text  # 2 hits, 1 miss

    def test_empty_trace(self):
        assert "0 event(s)" in summarize_trace([])


class TestFilter:
    def test_by_session(self, trace_path):
        events = read_trace(trace_path)
        kept = filter_trace(events, session="nn")
        assert kept and all(e.get("session") == "nn" for e in kept)

    def test_by_kind(self, trace_path):
        events = read_trace(trace_path)
        kept = filter_trace(events, kinds=["cache_hit", "cache_miss"])
        assert {e["kind"] for e in kept} == {"cache_hit", "cache_miss"}

    def test_combined(self, trace_path):
        events = read_trace(trace_path)
        kept = filter_trace(events, session="bfs", kinds=["cache_hit"])
        assert len(kept) == 1


class TestDiff:
    def test_identical_traces_have_no_diffs(self, trace_path):
        events = read_trace(trace_path)
        assert diff_traces(events, list(events)) == []

    def test_wall_clock_is_ignored_by_default(self, trace_path):
        events = read_trace(trace_path)
        other = [dict(e) for e in events]
        other[0]["wall"] = 1.5
        assert diff_traces(events, other) == []
        assert diff_traces(events, other, ignore_wall=False)

    def test_divergent_event_is_reported_with_seq(self, trace_path):
        events = read_trace(trace_path)
        other = [dict(e) for e in events]
        other[2] = {**other[2], "kind": "cache_hit"}
        diffs = diff_traces(events, other)
        assert len(diffs) == 1
        assert diffs[0].startswith("seq 3:")

    def test_length_mismatch_is_reported(self, trace_path):
        events = read_trace(trace_path)
        diffs = diff_traces(events, events[:-1])
        assert any("lengths differ" in d for d in diffs)

    def test_limit_stops_the_flood(self, trace_path):
        events = read_trace(trace_path)
        other = [{**e, "kind": "trial"} for e in events]
        diffs = diff_traces(events, other, limit=2)
        assert any("stopped after 2" in d for d in diffs)


class TestChromeExport:
    def test_emits_balanced_duration_events(self, trace_path):
        doc = to_chrome(read_trace(trace_path))
        events = doc["traceEvents"]
        b = [e for e in events if e["ph"] == "B"]
        e_ = [e for e in events if e["ph"] == "E"]
        assert len(b) == len(e_) == 3
        assert all(ev["cat"] == "span" for ev in b + e_)

    def test_sessions_become_named_threads(self, trace_path):
        doc = to_chrome(read_trace(trace_path))
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"bfs", "nn", "<engine>"} <= names
        # All events of one session share that session's tid.
        tid = next(e["tid"] for e in meta if e["args"]["name"] == "bfs")
        bfs = [
            e
            for e in doc["traceEvents"]
            if e["ph"] != "M" and e["tid"] == tid
        ]
        assert bfs and all(e["pid"] == 1 for e in bfs)

    def test_timestamps_are_sequence_numbers(self, trace_path):
        events = read_trace(trace_path)
        doc = to_chrome(events)
        timed = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert [e["ts"] for e in timed] == [e["seq"] for e in events]

    def test_document_is_valid_trace_event_json(self, trace_path):
        doc = to_chrome(read_trace(trace_path))
        revived = json.loads(json.dumps(doc))
        assert revived["displayTimeUnit"] == "ms"
        assert revived["otherData"]["trace_schema_version"] == 1
        for event in revived["traceEvents"]:
            assert {"ph", "pid", "tid"} <= event.keys()

    def test_instant_events_carry_data_as_args(self, trace_path):
        doc = to_chrome(read_trace(trace_path))
        finish = next(
            e for e in doc["traceEvents"] if e["name"] == "engine_finish"
        )
        assert finish["ph"] == "i"
        assert finish["args"]["sessions"] == 2


# ----------------------------------------------------------------------
# Cross-node merge
# ----------------------------------------------------------------------
TID = "9f2ab31c77d0e884"


def _span_pair(seq, name, span_id, trace=None, parent_span=None,
               wall=None, **extra):
    """A span_start/span_end pair at consecutive local seqs."""
    data = {"name": name, "span": span_id, "parent": None, **extra}
    if trace is not None:
        data["trace"] = trace
    if parent_span is not None:
        data["parent_span"] = parent_span
    start = {"seq": seq, "kind": "span_start", "session": None,
             "data": dict(data)}
    end = {"seq": seq + 1, "kind": "span_end", "session": None,
           "data": {**data, "status": "ok"}}
    if wall is not None:
        end["wall"] = wall
    return [start, end]


def two_node_traces(wall=None):
    """A client trace and a daemon trace linked by one remote hop.

    The client opens ``client_request`` span 1; the daemon's
    ``daemon_request`` names it via ``parent_span`` — the same link the
    real wire protocol produces — but the daemon's local seqs *start
    below* the client's, so an unnormalized merge would order effect
    before cause.
    """
    client = _span_pair(
        5, "client_request", 1, trace=TID, type="tune", wall=wall
    )
    daemon = _span_pair(
        1, "daemon_request", 1, trace=TID, parent_span=1, type="tune",
        wall=wall,
    )
    return {"client": client, "daemon": daemon}


class TestMergeTraces:
    def test_causality_shifts_the_downstream_node(self):
        merged = merge_traces(two_node_traces())
        by_node = {
            (e["node"], e["kind"]): e["ts"] for e in merged
        }
        # The daemon's span_start (local seq 1) lands after the
        # client's span_start (local seq 5): offset relaxation.
        assert by_node[("daemon", "span_start")] > by_node[
            ("client", "span_start")
        ]

    def test_events_are_sorted_by_merged_timestamp(self):
        merged = merge_traces(two_node_traces())
        stamps = [e["ts"] for e in merged]
        assert stamps == sorted(stamps)

    def test_unlinked_nodes_keep_offset_zero(self):
        traces = {
            "a": _span_pair(1, "session", 1),
            "b": _span_pair(1, "session", 1),
        }
        merged = merge_traces(traces)
        assert all(e["ts"] == e["seq"] for e in merged)

    def test_inputs_are_not_mutated(self):
        traces = two_node_traces()
        merge_traces(traces)
        assert "ts" not in traces["client"][0]
        assert "node" not in traces["daemon"][0]

    def test_three_hop_chain_is_transitive(self):
        # client -> entry (forward) -> owner: the owner's offset must
        # absorb both hops even though it only links to the entry node.
        traces = {
            "client": _span_pair(9, "client_request", 1, trace=TID),
            "entry": _span_pair(
                1, "daemon_request", 1, trace=TID, parent_span=1
            ),
            "owner": _span_pair(
                1, "daemon_request", 7, trace=TID, parent_span=1
            ),
        }
        # Disambiguate: the owner's parent_span 1 exists on both other
        # nodes; entry's own request span must be found via (trace,
        # span) identity. Give entry a distinct span id for the hop.
        traces["entry"] = _span_pair(
            1, "daemon_request", 2, trace=TID, parent_span=1
        )
        traces["owner"] = _span_pair(
            1, "daemon_request", 7, trace=TID, parent_span=2
        )
        merged = merge_traces(traces)
        start = {
            e["node"]: e["ts"] for e in merged if e["kind"] == "span_start"
        }
        assert start["client"] < start["entry"] < start["owner"]


class TestMergedChrome:
    def test_each_node_becomes_a_process(self):
        doc = merged_to_chrome(merge_traces(two_node_traces()))
        procs = {
            e["args"]["name"]: e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert set(procs) == {"client", "daemon"}
        assert len(set(procs.values())) == 2

    def test_timestamps_are_merged_not_local(self):
        merged = merge_traces(two_node_traces())
        doc = merged_to_chrome(merged)
        timed = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert [e["ts"] for e in timed] == [e["ts"] for e in merged]

    def test_span_pairs_balance_per_process(self):
        doc = merged_to_chrome(merge_traces(two_node_traces()))
        for ph in ("B", "E"):
            assert (
                len([e for e in doc["traceEvents"] if e["ph"] == ph]) == 2
            )


class TestSlowTraces:
    def test_ranks_by_request_span_wall(self):
        fast = {"n1": _span_pair(
            1, "daemon_request", 1, trace="aa" * 8, type="ping", wall=0.01
        )}
        slow = {"n1": fast["n1"] + _span_pair(
            3, "daemon_request", 2, trace="bb" * 8, type="tune", wall=2.5
        )}
        rows = slow_traces(merge_traces(slow))
        assert [row["trace"] for row in rows] == ["bb" * 8, "aa" * 8]
        assert rows[0]["wall"] == 2.5
        assert rows[0]["types"] == ["tune"]

    def test_wall_suppressed_traces_rank_by_extent(self):
        rows = slow_traces(merge_traces(two_node_traces()))
        (row,) = rows
        assert row["wall"] is None
        assert row["extent"] >= 2
        assert row["nodes"] == ["client", "daemon"]

    def test_top_limits_rows(self):
        events = []
        for index in range(5):
            events.extend(_span_pair(
                1 + 2 * index, "daemon_request", index + 1,
                trace=f"{index:016x}", wall=float(index),
            ))
        rows = slow_traces(merge_traces({"n1": events}), top=2)
        assert len(rows) == 2
        assert rows[0]["wall"] == 4.0

    def test_untraced_events_are_ignored(self):
        rows = slow_traces(merge_traces({"n1": _span_pair(1, "session", 1)}))
        assert rows == []


class TestParseTraceText:
    def test_parses_and_labels_errors_with_source(self):
        text = '{"seq": 1, "kind": "trial", "data": {}}\nbroken\n'
        with pytest.raises(ValueError, match="daemon-a:2"):
            parse_trace_text(text, source="daemon-a")

    def test_matches_read_trace(self, trace_path):
        text = trace_path.read_text(encoding="utf-8")
        assert parse_trace_text(text) == read_trace(trace_path)
