"""Bench-report tests: build, validate, round-trip."""

from types import SimpleNamespace

import pytest

from repro.obs.metrics import get_registry, reset_registry
from repro.obs.report import (
    SCHEMA,
    SCHEMA_VERSION,
    build_bench_report,
    compare_reports,
    load_report,
    validate_bench_report,
    write_report,
)
from repro.perf.cache import CacheStats
from repro.runtime.telemetry import EventKind, TelemetryHub


def fake_rows():
    final = SimpleNamespace(
        occupancy=0.75, regs_per_thread=32, smem_per_block=2048
    )
    report = SimpleNamespace(
        final_version=final,
        final_label="conservative warps=48",
        total_cycles=123456,
        records=[object()] * 10,
        iterations_to_converge=3,
        was_split=False,
    )
    return [("gaussian", report)]


@pytest.fixture()
def charged_registry():
    reset_registry()
    get_registry().counter(
        "orion_cache_lookups_total", "lookups"
    ).inc(cache="measure", result="miss")
    yield get_registry()
    reset_registry()


def build(charge=True, **kwargs):
    stats = CacheStats(memory_hits=8, misses=2, stores=2)
    return build_bench_report(
        "GTX680", "timing", fake_rows(), stats, **kwargs
    )


class TestBuild:
    def test_shape_and_schema(self, charged_registry):
        report = build()
        assert report["schema"] == SCHEMA
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["arch"] == "GTX680"
        assert report["backend"] == "timing"
        (kernel,) = report["kernels"]
        assert kernel["name"] == "gaussian"
        assert kernel["final_version"] == "conservative warps=48"
        assert kernel["total_cycles"] == 123456
        assert kernel["iterations"] == 10
        assert kernel["iterations_to_converge"] == 3
        assert report["cache"]["measurement"]["hit_rate"] == 0.8

    def test_git_sha_recorded_in_a_checkout(self, charged_registry):
        sha = build()["git_sha"]
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))

    def test_embeds_telemetry_counts(self, charged_registry):
        hub = TelemetryHub()
        hub.emit(EventKind.CACHE_HIT)
        hub.emit(EventKind.CACHE_HIT)
        report = build(telemetry=hub)
        assert report["telemetry"]["event_counts"] == {"cache_hit": 2}

    def test_compile_stats_are_optional(self, charged_registry):
        assert "compile" not in build()["cache"]
        with_compile = build(compile_stats=CacheStats(memory_hits=1))
        assert with_compile["cache"]["compile"]["hits"] == 1

    def test_defaults_to_process_registry_snapshot(self, charged_registry):
        names = {f["name"] for f in build()["metrics"]["metrics"]}
        assert "orion_cache_lookups_total" in names


class TestValidate:
    def test_valid_report_has_no_errors(self, charged_registry):
        assert validate_bench_report(build()) == []

    def test_survives_disk_round_trip(self, tmp_path, charged_registry):
        path = write_report(build(), tmp_path / "report.json")
        assert validate_bench_report(load_report(path)) == []

    def test_wrong_schema_version(self, charged_registry):
        report = build()
        report["schema_version"] = 99
        assert any("schema_version" in e for e in validate_bench_report(report))

    def test_empty_kernels(self, charged_registry):
        report = build()
        report["kernels"] = []
        assert any("kernels" in e for e in validate_bench_report(report))

    def test_kernel_missing_timing_field(self, charged_registry):
        report = build()
        del report["kernels"][0]["total_cycles"]
        assert any("total_cycles" in e for e in validate_bench_report(report))

    def test_missing_cache_hit_rate(self, charged_registry):
        report = build()
        del report["cache"]["measurement"]["hit_rate"]
        assert any("hit_rate" in e for e in validate_bench_report(report))

    def test_missing_metrics_snapshot(self, charged_registry):
        report = build()
        report["metrics"] = {}
        assert any("metrics" in e for e in validate_bench_report(report))

    def test_absent_cache_metric_family_is_flagged(self):
        reset_registry()
        try:
            report = build()  # registry empty: no cache lookups recorded
        finally:
            reset_registry()
        assert any(
            "orion_cache_lookups_total" in e
            for e in validate_bench_report(report)
        )

    def test_non_object_report(self):
        assert validate_bench_report(["not", "a", "dict"]) == [
            "report is not a JSON object"
        ]


class TestWrite:
    def test_output_is_stable_json(self, tmp_path, charged_registry):
        a = write_report(build(), tmp_path / "a.json").read_text()
        b = write_report(build(), tmp_path / "b.json").read_text()
        assert a == b
        assert a.endswith("\n")


def _timed_report(kernels=None, **phases):
    return {
        "kernels": kernels
        or [
            {
                "name": "gaussian",
                "total_cycles": 1000,
                "final_version": "conservative warps=48",
            }
        ],
        "timings": {
            name: {"calls": 1, "seconds": seconds}
            for name, seconds in phases.items()
        },
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        report = _timed_report(tuning=4.0, measure=8.0)
        assert compare_reports(report, report) == []

    def test_uniform_machine_slowdown_passes(self):
        base = _timed_report(tuning=4.0, measure=8.0)
        # The whole box is 3x slower — normalized, nothing regressed.
        slow = _timed_report(tuning=12.0, measure=24.0)
        assert compare_reports(base, slow) == []

    def test_single_phase_regression_flagged(self):
        base = _timed_report(tuning=4.0, measure=8.0, realize=4.0)
        bad = _timed_report(tuning=4.0, measure=8.0, realize=12.0)
        problems = compare_reports(base, bad)
        assert len(problems) == 1
        assert "phase realize" in problems[0]

    def test_cycles_drift_is_exact(self):
        base = _timed_report()
        drifted = _timed_report(
            kernels=[
                {
                    "name": "gaussian",
                    "total_cycles": 1001,
                    "final_version": "conservative warps=48",
                }
            ]
        )
        problems = compare_reports(base, drifted)
        assert any("total_cycles" in p for p in problems)

    def test_small_phases_and_slack_ignore_jitter(self):
        base = _timed_report(tuning=4.0, blink=0.01)
        # blink is under min_seconds; tuning within the slack allowance.
        jittery = _timed_report(tuning=4.3, blink=0.05)
        assert compare_reports(base, jittery) == []

    def test_missing_timings_still_checks_kernels(self):
        base = {"kernels": [{"name": "k", "total_cycles": 5}]}
        cur = {"kernels": [{"name": "k", "total_cycles": 6}]}
        assert compare_reports(base, cur)
        cur["kernels"][0]["total_cycles"] = 5
        assert compare_reports(base, cur) == []


class TestStrategyFields:
    def test_report_carries_strategies(self, charged_registry):
        report = build(strategy="smem-spill")
        assert report["strategy"] == "smem-spill"
        (kernel,) = report["kernels"]
        # The fake final version has no strategy attribute: the builder
        # defaults it to the reference id rather than failing.
        assert kernel["strategy"] == "local-spill"
        assert validate_bench_report(report) == []

    def test_default_strategy_recorded(self, charged_registry):
        assert build()["strategy"] == "local-spill"

    def test_non_string_strategy_rejected(self, charged_registry):
        report = build()
        report["strategy"] = 7
        report["kernels"][0]["strategy"] = ["local-spill"]
        problems = validate_bench_report(report)
        assert any("strategy: not a string" in p for p in problems)
        assert any("kernels[0].strategy" in p for p in problems)

    def test_pre_strategy_reports_still_validate(self, charged_registry):
        report = build()
        del report["strategy"]
        del report["kernels"][0]["strategy"]
        assert validate_bench_report(report) == []

    def test_cross_strategy_compare_rejected(self):
        base = _timed_report()
        base["strategy"] = "local-spill"
        cur = _timed_report()
        cur["strategy"] = "smem-spill"
        problems = compare_reports(base, cur)
        assert any("not comparable" in p for p in problems)

    def test_winner_strategy_drift_flagged(self):
        base = _timed_report()
        base["kernels"][0]["strategy"] = "local-spill"
        cur = _timed_report()
        cur["kernels"][0]["strategy"] = "smem-spill"
        problems = compare_reports(base, cur)
        assert any("winning strategy changed" in p for p in problems)

    def test_strategy_absent_in_baseline_is_not_drift(self):
        # Comparing a new report against a pre-strategy baseline must
        # not invent problems.
        base = _timed_report()
        cur = _timed_report()
        cur["strategy"] = "local-spill"
        cur["kernels"][0]["strategy"] = "local-spill"
        assert compare_reports(base, cur) == []
