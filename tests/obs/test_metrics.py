"""Metrics registry tests: counters, gauges, histograms, exposition."""

import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
    reset_registry,
)


class TestCounter:
    def test_inc_and_value_per_label_set(self):
        c = Counter("orion_test_total")
        c.inc()
        c.inc(2, cache="compile")
        c.inc(3, cache="compile")
        assert c.value() == 1
        assert c.value(cache="compile") == 5
        assert c.value(cache="measure") == 0

    def test_label_order_does_not_matter(self):
        c = Counter("orion_test_total")
        c.inc(a="1", b="2")
        c.inc(b="2", a="1")
        assert c.value(a="1", b="2") == 2

    def test_cannot_decrease(self):
        c = Counter("orion_test_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_concurrent_increments_are_lossless(self):
        c = Counter("orion_test_total")

        def worker():
            for _ in range(1000):
                c.inc(result="ok")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value(result="ok") == 4000


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("orion_test_width")
        g.set(4)
        g.add(-1)
        assert g.value() == 3
        g.set(8, pool="engine")
        assert g.value(pool="engine") == 8


class TestHistogram:
    def test_buckets_are_cumulative_with_inf(self):
        h = Histogram("orion_test_iters", buckets=(1, 2, 4))
        for v in (1, 1, 3, 100):
            h.observe(v)
        (sample,) = h.snapshot_samples()
        assert sample["buckets"] == [["1", 2], ["2", 2], ["4", 3], ["+Inf", 4]]
        assert sample["sum"] == 105
        assert sample["count"] == 4

    def test_boundary_is_upper_inclusive(self):
        h = Histogram("orion_test_iters", buckets=(2,))
        h.observe(2)
        (sample,) = h.snapshot_samples()
        assert sample["buckets"][0] == ["2", 1]

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("orion_test_iters", buckets=(3, 1))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        r = MetricsRegistry()
        assert r.counter("a_total") is r.counter("a_total")
        assert r.histogram("h") is r.histogram("h")

    def test_kind_mismatch_is_an_error(self):
        r = MetricsRegistry()
        r.counter("a_total")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("a_total")
        with pytest.raises(ValueError, match="already registered"):
            r.histogram("a_total")

    def test_histogram_bucket_mismatch_is_an_error(self):
        r = MetricsRegistry()
        r.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError, match="different buckets"):
            r.histogram("h", buckets=(1, 2, 3))

    def test_snapshot_is_deterministically_ordered(self):
        r = MetricsRegistry()
        r.counter("b_total").inc(z="1")
        r.counter("b_total").inc(a="1")
        r.counter("a_total").inc()
        r.gauge("c_width").set(2)
        snap = r.snapshot()
        assert [f["name"] for f in snap["metrics"]] == [
            "a_total", "b_total", "c_width",
        ]
        b = snap["metrics"][1]
        assert [s["labels"] for s in b["samples"]] == [{"a": "1"}, {"z": "1"}]

    def test_snapshot_is_json_safe_and_renders_after_round_trip(self):
        r = MetricsRegistry()
        r.counter("a_total", "help text").inc(5, cache="compile")
        r.histogram("h_iters", buckets=(1, 2)).observe(2)
        revived = json.loads(json.dumps(r.snapshot()))
        text = render_prometheus(revived)
        assert text == render_prometheus(r.snapshot())
        assert 'a_total{cache="compile"} 5' in text
        assert 'h_iters_bucket{le="+Inf"} 1' in text
        assert "h_iters_sum 2" in text

    def test_process_registry_resets_in_place(self):
        registry = get_registry()
        registry.counter("orion_reset_probe_total").inc()
        reset_registry()
        assert get_registry() is registry
        assert registry.get("orion_reset_probe_total") is None


class TestRenderPrometheus:
    def test_help_type_and_label_escaping(self):
        r = MetricsRegistry()
        r.counter("a_total", "what it counts").inc(1, path='a"b\nc\\d')
        text = render_prometheus(r.snapshot())
        assert "# HELP a_total what it counts" in text
        assert "# TYPE a_total counter" in text
        assert 'path="a\\"b\\nc\\\\d"' in text

    def test_default_buckets_shape(self):
        # The shared default is iteration-count shaped and ascending.
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] == 1

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({"metrics": []}) == ""
