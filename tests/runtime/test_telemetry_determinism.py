"""Scheduler-invariance of telemetry: the PR's determinism contract.

Each session's event subsequence — kinds, payloads, span ids — must be
identical whatever ``ORION_ENGINE_JOBS`` says, because span ids are
allocated per session scope and all other event data is a pure function
of the session's own work.  Concurrency may only change how the
subsequences interleave into the global stream.

The sessions here run *disjoint* workloads (different grids), so no
cross-session measurement-cache races can blur hit/miss attribution.
"""

import pytest

from repro.arch import GTX680
from repro.compiler import CompileOptions, compile_binary
from repro.runtime import Workload
from repro.runtime.engine import ExecutionEngine
from repro.runtime.session import TuningSession
from repro.runtime.telemetry import InMemorySink, TelemetryHub
from repro.sim import LaunchConfig
from tests.runtime.test_launcher import pressure_module


@pytest.fixture(scope="module")
def binary():
    return compile_binary(pressure_module(), "k", CompileOptions(arch=GTX680))


def sessions_for(binary):
    return [
        TuningSession(
            binary,
            Workload(
                launch=LaunchConfig(grid_blocks=16 * (i + 1), block_size=256),
                iterations=6,
                max_events_per_warp=1000,
            ),
            name=f"s{i}",
        )
        for i in range(3)
    ]


def run_engine(binary, jobs):
    sink = InMemorySink()
    engine = ExecutionEngine(
        GTX680, telemetry=TelemetryHub(sink, record_wall=False)
    )
    reports = engine.run_many(sessions_for(binary), jobs=jobs)
    return reports, sink.events


def per_session_subsequences(events):
    # The engine-level (session=None) events carry the scheduler width
    # in their ``jobs`` field — the one datum that *should* differ
    # between runs; everything else must not.
    scopes = {}
    for event in events:
        scopes.setdefault(event.session, []).append(
            (
                event.kind.value,
                tuple(
                    sorted(
                        (k, repr(v))
                        for k, v in event.data.items()
                        if k != "jobs"
                    )
                ),
            )
        )
    return scopes


@pytest.mark.parametrize("jobs", [2, 4])
def test_subsequences_invariant_under_scheduling(binary, jobs):
    sequential_reports, sequential_events = run_engine(binary, jobs=1)
    concurrent_reports, concurrent_events = run_engine(binary, jobs=jobs)
    for a, b in zip(sequential_reports, concurrent_reports):
        assert a.total_cycles == b.total_cycles
        assert a.final_label == b.final_label
    assert per_session_subsequences(
        sequential_events
    ) == per_session_subsequences(concurrent_events)


def test_env_var_scheduling_is_equally_invariant(binary, monkeypatch):
    monkeypatch.setenv("ORION_ENGINE_JOBS", "1")
    _, sequential = run_engine(binary, jobs=None)
    monkeypatch.setenv("ORION_ENGINE_JOBS", "4")
    _, concurrent = run_engine(binary, jobs=None)
    assert per_session_subsequences(sequential) == per_session_subsequences(
        concurrent
    )


def test_wall_suppression_holds_under_concurrency(binary):
    _, events = run_engine(binary, jobs=4)
    assert all(event.wall is None for event in events)


def test_global_stream_is_seq_ordered(binary):
    _, events = run_engine(binary, jobs=4)
    seqs = [event.seq for event in events]
    assert seqs == sorted(seqs)
