"""OrionRuntime integration tests (tuner + simulator)."""

import pytest

from repro.arch import GTX680
from repro.compiler import CompileOptions, compile_binary
from repro.runtime import OrionRuntime, Workload
from repro.sim import LaunchConfig
from tests.helpers import module_from_asm


def pressure_module(n=36, trips=6):
    lines = ["S2R %v0, %tid", "S2R %v1, %ctaid", "S2R %v2, %ntid",
             "IMAD %v3, %v1, %v2, %v0", "SHL %v4, %v3, 7", "MOV %v60, 0"]
    for i in range(n):
        lines.append(f"LD.global %v{5 + i}, [%v4+{4 * i}]")
    lines.append("BRA HEAD")
    head = f"HEAD:\n    ISET.lt %v99, %v60, {trips}\n    CBR %v99, BODY, DONE\nBODY:"
    body = ["    IMAD %v90, %v60, 16384, %v4", "    LD.global %v91, [%v90+65536]"]
    accum = "%v91"
    for i in range(1, n):
        body.append(f"    FFMA %v{100 + i}, %v{5 + i}, 1.01, {accum}")
        accum = f"%v{100 + i}"
    body += ["    IADD %v60, %v60, 1", "    BRA HEAD"]
    tail = f"DONE:\n    ST.global [%v4], {accum}\n    EXIT"
    text = (".module m\n.kernel k shared=0\nBB0:\n"
            + "\n".join(f"    {l}" for l in lines) + "\n" + head + "\n"
            + "\n".join(body) + "\n" + tail + "\n.end")
    return module_from_asm(text)


@pytest.fixture(scope="module")
def binary():
    return compile_binary(pressure_module(), "k", CompileOptions(arch=GTX680))


@pytest.fixture(scope="module")
def workload():
    return Workload(
        launch=LaunchConfig(grid_blocks=64, block_size=256),
        iterations=10,
        max_events_per_warp=1500,
    )


class TestExecution:
    def test_executes_all_iterations(self, binary, workload):
        report = OrionRuntime(GTX680, binary).execute(workload)
        assert len(report.records) == 10
        assert report.total_cycles == sum(r.cycles for r in report.records)

    def test_converges_and_sticks(self, binary, workload):
        report = OrionRuntime(GTX680, binary).execute(workload)
        assert report.iterations_to_converge is not None
        assert report.iterations_to_converge <= 5
        tail = report.records[report.iterations_to_converge:]
        assert all(r.label == report.final_label for r in tail)

    def test_final_never_the_worst_candidate(self, binary, workload):
        runtime = OrionRuntime(GTX680, binary)
        report = runtime.execute(workload)
        final_cycles = runtime.measure_version(report.final_version, workload)
        for version in binary.versions:
            if version.label == report.final_label:
                continue
        worst = max(
            runtime.measure_version(v, workload)
            for v in binary.versions + binary.failsafe
        )
        assert final_cycles <= worst

    def test_measure_version_scales_with_iterations(self, binary, workload):
        runtime = OrionRuntime(GTX680, binary)
        ten = runtime.measure_version(binary.original, workload)
        twenty = runtime.measure_version(
            binary.original,
            Workload(
                launch=workload.launch,
                iterations=20,
                max_events_per_warp=workload.max_events_per_warp,
            ),
        )
        assert twenty == 2 * ten


class TestSplitting:
    def test_single_invocation_splits_for_tuning(self, binary):
        workload = Workload(
            launch=LaunchConfig(grid_blocks=64, block_size=256),
            iterations=1,
            max_events_per_warp=1500,
        )
        report = OrionRuntime(GTX680, binary).execute(workload)
        assert report.was_split
        assert len(report.records) > 1

    def test_tiny_grid_does_not_split(self, binary):
        workload = Workload(
            launch=LaunchConfig(grid_blocks=2, block_size=256),
            iterations=1,
            max_events_per_warp=1500,
        )
        report = OrionRuntime(GTX680, binary).execute(workload)
        assert not report.was_split
        assert len(report.records) == 1
