"""Fig. 9 dynamic selection state machine tests (no simulator needed)."""

import pytest

from repro.compiler.multiversion import MultiVersionBinary
from repro.compiler.realize import KernelVersion
from repro.regalloc.allocator import AllocationOutcome
from repro.ir.function import Function, Module
from repro.isa.instructions import Instruction, Opcode
from repro.runtime.adaptation import DynamicTuner


def _dummy_version(label, warps):
    module = Module(label)
    fn = Function("k", is_kernel=True)
    fn.add_block("BB0").append(Instruction(Opcode.EXIT))
    module.add(fn)
    outcome = AllocationOutcome(
        module=module,
        kernel_name="k",
        registers_per_thread=16,
        shared_bytes_per_block=0,
        local_bytes_per_thread=0,
        spilled_variables=0,
        stack_moves=0,
    )
    from repro.isa.encoding import encode_module

    return KernelVersion(
        label=label,
        target_warps=warps,
        achieved_warps=warps,
        occupancy=warps / 64,
        regs_per_thread=16,
        smem_per_block=0,
        smem_padding=0,
        outcome=outcome,
        binary=encode_module(module),
    )


def make_binary(warp_list, direction="increasing", failsafe=(), can_tune=True):
    return MultiVersionBinary(
        kernel_name="k",
        arch_name="GTX680",
        block_size=256,
        direction=direction,
        can_tune=can_tune,
        versions=[_dummy_version(f"v{w}", w) for w in warp_list],
        failsafe=[_dummy_version(f"fs{w}", w) for w in failsafe],
    )


def drive(tuner, runtimes_by_label):
    """Feed runtimes until convergence; returns labels tried in order."""
    tried = []
    for _ in range(20):
        version = tuner.next_version()
        tried.append(version.label)
        tuner.report(runtimes_by_label[version.label])
        if tuner.converged:
            break
    return tried


class TestUpwardSearch:
    def test_walks_until_degradation_then_keeps_previous(self):
        binary = make_binary([16, 32, 48, 64])
        tuner = DynamicTuner(binary)
        runtimes = {"v16": 100.0, "v32": 80.0, "v48": 70.0, "v64": 90.0}
        drive(tuner, runtimes)
        assert tuner.converged
        assert tuner.final_version.label == "v48"

    def test_two_percent_plateau_keeps_climbing(self):
        """<=2% slowdown is not degradation in the upward direction."""
        binary = make_binary([16, 32, 48])
        tuner = DynamicTuner(binary)
        runtimes = {"v16": 100.0, "v32": 101.0, "v48": 80.0}
        drive(tuner, runtimes)
        assert tuner.final_version.label == "v48"

    def test_exhausting_candidates_picks_best(self):
        binary = make_binary([16, 32, 48])
        tuner = DynamicTuner(binary)
        runtimes = {"v16": 100.0, "v32": 90.0, "v48": 85.0}
        drive(tuner, runtimes)
        assert tuner.final_version.label == "v48"

    def test_converges_within_three_for_typical_profile(self):
        """Paper: 'usually only needs three iterations'."""
        binary = make_binary([16, 32, 48, 64])
        tuner = DynamicTuner(binary)
        runtimes = {"v16": 100.0, "v32": 70.0, "v48": 95.0, "v64": 99.0}
        drive(tuner, runtimes)
        assert tuner.iterations_to_converge <= 3
        assert tuner.final_version.label == "v32"


class TestDownwardSearch:
    def test_slowdown_beyond_noise_stops(self):
        binary = make_binary([48, 32, 16], direction="decreasing")
        tuner = DynamicTuner(binary)
        runtimes = {"v48": 100.0, "v32": 104.0, "v16": 50.0}
        drive(tuner, runtimes)
        assert tuner.final_version.label == "v48"

    def test_sub_noise_slowdown_keeps_walking(self):
        """Half the upward tolerance is treated as measurement noise."""
        binary = make_binary([48, 32, 16], direction="decreasing")
        tuner = DynamicTuner(binary)
        runtimes = {"v48": 100.0, "v32": 100.5, "v16": 100.9}
        drive(tuner, runtimes)
        assert tuner.final_version.label == "v16"

    def test_flat_profile_reaches_lowest(self):
        """Equal performance lets occupancy drop all the way (srad case)."""
        binary = make_binary([48, 32, 16], direction="decreasing")
        tuner = DynamicTuner(binary)
        runtimes = {"v48": 100.0, "v32": 100.0, "v16": 100.0}
        drive(tuner, runtimes)
        assert tuner.final_version.label == "v16"


class TestFailsafe:
    def test_misprediction_tries_failsafe(self):
        binary = make_binary([32, 48, 64], failsafe=[16])
        tuner = DynamicTuner(binary)
        runtimes = {"v32": 100.0, "v48": 150.0, "fs16": 80.0}
        tried = drive(tuner, runtimes)
        assert "fs16" in tried
        assert tuner.final_version.label == "fs16"

    def test_failsafe_losing_keeps_original(self):
        binary = make_binary([32, 48], failsafe=[16])
        tuner = DynamicTuner(binary)
        runtimes = {"v32": 100.0, "v48": 150.0, "fs16": 200.0}
        drive(tuner, runtimes)
        assert tuner.final_version.label == "v32"


class TestExhaustionSelection:
    """Locking after trying every candidate: dedupe + deterministic ties."""

    def test_flat_tie_breaks_on_label(self):
        """Same occupancy, same runtime: lowest label wins, always."""
        binary = MultiVersionBinary(
            kernel_name="k",
            arch_name="GTX680",
            block_size=256,
            direction="increasing",
            can_tune=True,
            versions=[
                _dummy_version("m16", 16),
                _dummy_version("k16", 16),
                _dummy_version("v32", 32),
            ],
            failsafe=[],
        )
        tuner = DynamicTuner(binary)
        drive(tuner, {"m16": 100.0, "k16": 100.0, "v32": 100.0})
        assert tuner.final_version.label == "k16"

    def test_candidates_counted_once(self):
        """Exhaustion must not double-weight the candidate pool."""
        binary = make_binary([16, 32, 48])
        tuner = DynamicTuner(binary)
        drive(tuner, {"v16": 100.0, "v32": 100.0, "v48": 100.0})
        assert tuner.final_version.label == "v16"
        # Every version was trialled exactly once before locking.
        assert [r.label for r in tuner.history] == ["v16", "v32", "v48"]

    def test_failsafe_exhaustion_considers_both_pools(self):
        """A flat profile in the fail-safe direction still locks the
        lowest occupancy seen anywhere (candidate or fail-safe)."""
        binary = make_binary([32], failsafe=[16, 48])
        tuner = DynamicTuner(binary)
        drive(tuner, {"v32": 100.0, "fs16": 100.0, "fs48": 100.0})
        assert tuner.final_version.label == "fs16"

    def test_band_excludes_slow_low_occupancy(self):
        """Lowest occupancy only wins inside the tolerance band."""
        binary = make_binary([16, 32, 48])
        tuner = DynamicTuner(binary)
        drive(tuner, {"v16": 110.0, "v32": 108.0, "v48": 100.0})
        assert tuner.final_version.label == "v48"


class TestEdgeCases:
    def test_not_tunable_locks_immediately(self):
        binary = make_binary([32], can_tune=False)
        tuner = DynamicTuner(binary)
        assert tuner.converged
        assert tuner.next_version().label == "v32"

    def test_single_candidate(self):
        binary = make_binary([64])
        tuner = DynamicTuner(binary)
        drive(tuner, {"v64": 50.0})
        assert tuner.final_version.label == "v64"

    def test_negative_runtime_rejected(self):
        tuner = DynamicTuner(make_binary([16, 32]))
        tuner.next_version()
        with pytest.raises(ValueError):
            tuner.report(-1.0)

    def test_final_version_stable_after_convergence(self):
        binary = make_binary([16, 32])
        tuner = DynamicTuner(binary)
        drive(tuner, {"v16": 100.0, "v32": 200.0})
        label = tuner.final_version.label
        for _ in range(5):
            assert tuner.next_version().label == label
            tuner.report(123.0)
        assert tuner.final_version.label == label


class TestFailsafeBaseline:
    """The first fail-safe trial competes against the *original*
    version's runtime, not the degraded trial that triggered the
    misprediction switch (regression: a fail-safe slower than the
    original but faster than the degraded candidate used to win)."""

    def test_failsafe_slower_than_original_rejected(self):
        binary = make_binary([32, 48], failsafe=[16, 8])
        tuner = DynamicTuner(binary)
        drive(
            tuner,
            {"v32": 100.0, "v48": 150.0, "fs16": 140.0, "fs8": 145.0},
        )
        # fs16 (140) beats the degraded v48 (150) but loses to the
        # original (100): the tuner must keep the original.
        assert tuner.final_version.label == "v32"

    def test_failsafe_faster_than_original_kept(self):
        binary = make_binary([32, 48], failsafe=[16, 8])
        tuner = DynamicTuner(binary)
        drive(
            tuner,
            {"v32": 100.0, "v48": 150.0, "fs16": 90.0, "fs8": 95.0},
        )
        assert tuner.final_version.label == "fs16"
