"""Kernel splitting tests (Section 3.4)."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.splitting import (
    pieces_for_tuning,
    split_launch,
    splittable,
)
from repro.sim.interp import LaunchConfig


class TestSplitLaunch:
    def test_even_split(self):
        launch = LaunchConfig(grid_blocks=8, block_size=128)
        pieces = split_launch(launch, 4)
        assert [p.launch.grid_blocks for p in pieces] == [2, 2, 2, 2]
        assert [p.first_block for p in pieces] == [0, 2, 4, 6]

    def test_uneven_split(self):
        launch = LaunchConfig(grid_blocks=10, block_size=128)
        pieces = split_launch(launch, 4)
        assert [p.launch.grid_blocks for p in pieces] == [3, 3, 2, 2]

    def test_more_pieces_than_blocks(self):
        launch = LaunchConfig(grid_blocks=3, block_size=64)
        pieces = split_launch(launch, 10)
        assert len(pieces) == 3
        assert all(p.launch.grid_blocks == 1 for p in pieces)

    def test_params_preserved(self):
        launch = LaunchConfig(grid_blocks=4, block_size=64, params={0: 7})
        for piece in split_launch(launch, 2):
            assert piece.launch.params == {0: 7}

    def test_zero_pieces_rejected(self):
        with pytest.raises(ValueError):
            split_launch(LaunchConfig(grid_blocks=4), 0)

    @given(
        blocks=st.integers(min_value=1, max_value=500),
        pieces=st.integers(min_value=1, max_value=20),
    )
    def test_blocks_conserved(self, blocks, pieces):
        launch = LaunchConfig(grid_blocks=blocks, block_size=32)
        out = split_launch(launch, pieces)
        assert sum(p.launch.grid_blocks for p in out) == blocks
        # Pieces tile the grid contiguously.
        cursor = 0
        for piece in out:
            assert piece.first_block == cursor
            cursor += piece.launch.grid_blocks


    def test_remainder_goes_to_leading_pieces(self):
        launch = LaunchConfig(grid_blocks=11, block_size=32)
        sizes = [p.launch.grid_blocks for p in split_launch(launch, 4)]
        assert sizes == [3, 3, 3, 2]
        assert sizes == sorted(sizes, reverse=True)

    def test_single_piece_is_identity(self):
        launch = LaunchConfig(grid_blocks=7, block_size=96, params={4: 2})
        (piece,) = split_launch(launch, 1)
        assert piece.first_block == 0
        assert piece.launch.grid_blocks == 7
        assert piece.launch.block_size == 96
        assert piece.launch.params == {4: 2}

    def test_single_block_grid(self):
        (piece,) = split_launch(LaunchConfig(grid_blocks=1), 5)
        assert piece.launch.grid_blocks == 1
        assert piece.first_block == 0

    def test_params_are_copies(self):
        launch = LaunchConfig(grid_blocks=4, block_size=64, params={0: 7})
        pieces = split_launch(launch, 2)
        pieces[0].launch.params[0] = 99
        assert launch.params == {0: 7}
        assert pieces[1].launch.params == {0: 7}

    def test_negative_pieces_rejected(self):
        with pytest.raises(ValueError):
            split_launch(LaunchConfig(grid_blocks=4), -1)


class TestSplitPolicy:
    def test_small_grid_not_splittable(self):
        assert not splittable(LaunchConfig(grid_blocks=3))

    def test_large_grid_splittable(self):
        assert splittable(LaunchConfig(grid_blocks=64))

    def test_splittable_boundary(self):
        """Exactly two min-size pieces is the smallest splittable grid."""
        assert splittable(LaunchConfig(grid_blocks=4))
        assert not splittable(LaunchConfig(grid_blocks=4), min_blocks_per_piece=3)
        assert splittable(LaunchConfig(grid_blocks=6), min_blocks_per_piece=3)

    def test_pieces_covers_candidates(self):
        launch = LaunchConfig(grid_blocks=100)
        assert pieces_for_tuning(launch, candidate_versions=4) == 5

    def test_pieces_limited_by_grid(self):
        launch = LaunchConfig(grid_blocks=6)
        assert pieces_for_tuning(launch, candidate_versions=10) == 3

    def test_pieces_never_below_one(self):
        """A grid smaller than one min-size piece still launches once."""
        launch = LaunchConfig(grid_blocks=1)
        assert pieces_for_tuning(launch, candidate_versions=4) == 1

    def test_pieces_honours_min_blocks(self):
        launch = LaunchConfig(grid_blocks=100)
        assert (
            pieces_for_tuning(launch, candidate_versions=30, min_blocks_per_piece=10)
            == 10
        )
