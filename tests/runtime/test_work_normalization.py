"""Work-normalised tuning (the paper's future-work fix for bfs).

Paper Section 4.2: "bfs does different amounts of work in each
iteration, making it difficult to compare consecutive invocations ...
we may be able to improve tuning for such cases by calculating the
amount of work at each iteration and applying a multiplicative factor
to the runtime."  This implements and tests exactly that.
"""

import pytest

from repro.arch import GTX680
from repro.runtime.adaptation import DynamicTuner
from repro.runtime.launcher import OrionRuntime, Workload
from repro.sim import LaunchConfig

from tests.runtime.test_adaptation import make_binary


class TestTunerNormalization:
    def test_growing_work_without_normalization_mistunes(self):
        """A growing frontier makes every next version look slower."""
        binary = make_binary([16, 32, 48], direction="increasing")
        tuner = DynamicTuner(binary)
        # True per-work cost improves (100 -> 90 -> 80) but raw runtimes
        # grow because iterations do 1x, 2x, 3x work.
        tuner.next_version(); tuner.report(100.0)
        tuner.next_version(); tuner.report(180.0)
        assert tuner.converged
        assert tuner.final_version.label == "v16"  # wrong: stopped early

    def test_growing_work_with_normalization_tunes_correctly(self):
        binary = make_binary([16, 32, 48], direction="increasing")
        tuner = DynamicTuner(binary)
        tuner.next_version(); tuner.report(100.0, work=1.0)
        tuner.next_version(); tuner.report(180.0, work=2.0)
        tuner.next_version(); tuner.report(240.0, work=3.0)
        assert tuner.converged
        assert tuner.final_version.label == "v48"

    def test_shrinking_work_downward_exposes_true_slowdown(self):
        """Raw runtimes fall only because the frontier halves; per-work
        cost doubles at the next version — normalisation must catch it."""
        binary = make_binary([48, 32, 16], direction="decreasing")
        tuner = DynamicTuner(binary)
        tuner.next_version(); tuner.report(100.0, work=1.0)
        tuner.next_version(); tuner.report(75.0, work=0.5)
        assert tuner.converged
        assert tuner.final_version.label == "v48"

    def test_history_stores_normalised_runtimes(self):
        binary = make_binary([16, 32])
        tuner = DynamicTuner(binary)
        tuner.next_version()
        tuner.report(100.0, work=2.0)
        assert tuner.history[0].runtime == 50.0

    def test_invalid_work_rejected(self):
        binary = make_binary([16, 32])
        tuner = DynamicTuner(binary)
        tuner.next_version()
        with pytest.raises(ValueError):
            tuner.report(10.0, work=0.0)


class TestWorkloadProfile:
    def test_work_at_cycles_through_profile(self):
        workload = Workload(
            launch=LaunchConfig(grid_blocks=8),
            iterations=4,
            work_profile=[1.0, 0.5],
        )
        assert workload.work_at(0) == 1.0
        assert workload.work_at(1) == 0.5
        assert workload.work_at(2) == 1.0

    def test_no_profile_means_unit_work(self):
        workload = Workload(launch=LaunchConfig(grid_blocks=8))
        assert workload.work_at(7) == 1.0


class TestEndToEnd:
    def test_varying_grid_still_converges(self):
        """bfs-style shrinking frontier: tuner still locks a version."""
        from repro.compiler import CompileOptions, compile_binary
        from tests.helpers import module_from_asm

        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                S2R %v1, %ctaid
                S2R %v2, %ntid
                IMAD %v3, %v1, %v2, %v0
                SHL %v4, %v3, 7
                LD.global %v5, [%v4]
                FADD %v6, %v5, 1.0
                ST.global [%v4], %v6
                EXIT
            .end
            """
        )
        binary = compile_binary(module, "k", CompileOptions(arch=GTX680))
        runtime = OrionRuntime(GTX680, binary)
        workload = Workload(
            launch=LaunchConfig(grid_blocks=64, block_size=256),
            iterations=8,
            work_profile=[1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.25, 0.2],
            max_events_per_warp=500,
        )
        report = runtime.execute(workload)
        assert report.final_version is not None
        assert len(report.records) == 8
        # Later iterations launch fewer blocks.
        assert report.records[-1].cycles <= report.records[0].cycles
