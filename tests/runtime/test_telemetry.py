"""Structured telemetry tests: hub, sinks, event stream."""

import json
import threading

from repro.runtime.telemetry import (
    EventKind,
    InMemorySink,
    JsonlSink,
    TelemetryEvent,
    TelemetryHub,
)


class TestHub:
    def test_sequence_is_monotonic_from_one(self):
        sink = InMemorySink()
        hub = TelemetryHub(sink)
        for _ in range(5):
            hub.emit(EventKind.ITERATION, "s")
        assert [e.seq for e in sink.events] == [1, 2, 3, 4, 5]

    def test_counts_per_kind(self):
        hub = TelemetryHub()
        hub.emit(EventKind.CACHE_HIT)
        hub.emit(EventKind.CACHE_HIT)
        hub.emit(EventKind.CACHE_MISS)
        assert hub.counts[EventKind.CACHE_HIT] == 2
        assert hub.counts[EventKind.CACHE_MISS] == 1

    def test_fan_out_to_all_sinks(self):
        a, b = InMemorySink(), InMemorySink()
        hub = TelemetryHub(a)
        hub.add_sink(b)
        hub.emit(EventKind.TRIAL, "s", cycles=7)
        assert len(a.events) == len(b.events) == 1
        assert a.events[0] is b.events[0]

    def test_concurrent_emits_keep_unique_ordered_seqs(self):
        sink = InMemorySink()
        hub = TelemetryHub(sink)

        def worker():
            for _ in range(50):
                hub.emit(EventKind.ITERATION)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        seqs = [e.seq for e in sink.events]
        assert sorted(seqs) == list(range(1, 201))
        # Sinks receive events in sequence order (emitted under the lock).
        assert seqs == sorted(seqs)


class TestInMemorySink:
    def test_of_and_count(self):
        sink = InMemorySink()
        hub = TelemetryHub(sink)
        hub.emit(EventKind.SESSION_START, "a")
        hub.emit(EventKind.TRIAL, "a")
        hub.emit(EventKind.TRIAL, "a")
        assert sink.count(EventKind.TRIAL) == 2
        assert [e.kind for e in sink.of(EventKind.SESSION_START)] == [
            EventKind.SESSION_START
        ]


class TestJsonlSink:
    def test_lines_parse_back(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        hub = TelemetryHub(JsonlSink(path))
        hub.emit(EventKind.SESSION_START, "bfs", kernel="k")
        hub.emit(EventKind.ENGINE_FINISH, None, sessions=1)
        hub.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {
            "seq": 1,
            "kind": "session_start",
            "session": "bfs",
            "data": {"kernel": "k"},
        }
        second = json.loads(lines[1])
        assert "session" not in second  # engine-level events have no session

    def test_lazy_open_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "trace.jsonl"
        sink = JsonlSink(path)
        assert not path.parent.exists()  # nothing happens before an event
        sink.emit(TelemetryEvent(seq=1, kind=EventKind.TRIAL, session=None))
        sink.close()
        assert path.exists()

    def test_close_without_events_is_noop(self, tmp_path):
        sink = JsonlSink(tmp_path / "never.jsonl")
        sink.close()
        assert not (tmp_path / "never.jsonl").exists()

    def test_truncates_stale_file_then_appends_across_reopens(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("stale line from an earlier run\n")
        sink = JsonlSink(path)
        # The first open of a run truncates: a stale trace must never be
        # silently appended to.
        sink.emit(TelemetryEvent(seq=1, kind=EventKind.TRIAL, session=None))
        sink.close()
        assert len(path.read_text().splitlines()) == 1
        # ... but the *same* sink re-opening after a close appends, so
        # one logical run stays one file.
        sink.emit(TelemetryEvent(seq=2, kind=EventKind.TRIAL, session=None))
        sink.close()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["seq"] for line in lines] == [1, 2]

    def test_fresh_sink_replaces_previous_runs_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for seq in (1, 2):
            sink = JsonlSink(path)
            sink.emit(TelemetryEvent(seq=seq, kind=EventKind.TRIAL, session=None))
            sink.close()
        (line,) = path.read_text().splitlines()
        assert json.loads(line)["seq"] == 2


class TestEventJson:
    def test_keys_sorted_for_diffability(self):
        event = TelemetryEvent(
            seq=3, kind=EventKind.CACHE_HIT, session="s", data={"b": 1, "a": 2}
        )
        text = event.to_json()
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text)["kind"] == "cache_hit"
