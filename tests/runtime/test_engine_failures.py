"""Session-failure isolation: one bad workload must not sink the batch."""

import pytest

from repro.arch import GTX680
from repro.compiler import CompileOptions, compile_binary
from repro.obs.metrics import get_registry
from repro.runtime import Workload
from repro.runtime.engine import ExecutionEngine
from repro.runtime.session import TuningSession
from repro.runtime.telemetry import EventKind, InMemorySink, TelemetryHub
from repro.sim import LaunchConfig
from repro.sim.backend import get_backend
from tests.runtime.test_launcher import pressure_module


@pytest.fixture(scope="module")
def binary():
    return compile_binary(pressure_module(), "k", CompileOptions(arch=GTX680))


def workload(grid_blocks: int) -> Workload:
    return Workload(
        launch=LaunchConfig(grid_blocks=grid_blocks, block_size=256),
        iterations=10,
        max_events_per_warp=1500,
    )


class PoisonedBackend:
    """The timing backend, except one grid size explodes."""

    name = "timing"

    def __init__(self, poison_grid: int) -> None:
        self.poison_grid = poison_grid
        self._inner = get_backend("timing")

    def measure(self, request):
        if request.launch.grid_blocks == self.poison_grid:
            raise RuntimeError("poisoned measurement")
        return self._inner.measure(request)


def engine_with_sink(**kwargs):
    sink = InMemorySink()
    engine = ExecutionEngine(GTX680, telemetry=TelemetryHub(sink), **kwargs)
    return engine, sink


class TestRunManyIsolation:
    def test_failed_session_does_not_abort_the_batch(self, binary):
        engine, sink = engine_with_sink(backend=PoisonedBackend(13))
        sessions = [
            TuningSession(binary, workload(64), name="healthy-a"),
            TuningSession(binary, workload(13), name="poisoned"),
            TuningSession(binary, workload(32), name="healthy-b"),
        ]
        reports = engine.run_many(sessions)
        assert reports[0] is not None and reports[2] is not None
        assert reports[1] is None
        assert reports[0].total_cycles > 0

    def test_failure_lands_in_session_error_and_telemetry(self, binary):
        engine, sink = engine_with_sink(backend=PoisonedBackend(13))
        session = TuningSession(binary, workload(13), name="poisoned")
        engine.run_many([session])
        assert "poisoned measurement" in session.error
        assert "Traceback" in session.error
        failed = sink.of(EventKind.SESSION_FAILED)
        assert len(failed) == 1
        assert failed[0].session == "poisoned"
        assert "RuntimeError: poisoned measurement" in failed[0].data["error"]
        assert "Traceback" in failed[0].data["traceback"]
        finish = sink.of(EventKind.ENGINE_FINISH)
        assert finish[0].data["failed"] == 1

    def test_failures_counted_by_exception_type(self, binary):
        counter = get_registry().counter(
            "orion_session_failures_total",
            "Tuning sessions isolated after raising in the engine.",
        )
        before = counter.value(error="RuntimeError")
        engine, _ = engine_with_sink(backend=PoisonedBackend(13))
        engine.run_many([TuningSession(binary, workload(13))])
        assert counter.value(error="RuntimeError") == before + 1

    def test_concurrent_batch_isolates_failures_identically(self, binary):
        sequential_engine, _ = engine_with_sink(backend=PoisonedBackend(13))
        sequential = sequential_engine.run_many(
            [
                TuningSession(binary, workload(g), name=f"g{g}")
                for g in (64, 13, 32)
            ],
            jobs=1,
        )
        concurrent_engine, _ = engine_with_sink(backend=PoisonedBackend(13))
        concurrent = concurrent_engine.run_many(
            [
                TuningSession(binary, workload(g), name=f"g{g}")
                for g in (64, 13, 32)
            ],
            jobs=3,
        )
        assert [r is None for r in sequential] == [r is None for r in concurrent]
        for a, b in zip(sequential, concurrent):
            if a is not None:
                assert a.total_cycles == b.total_cycles

    def test_direct_run_still_raises(self, binary):
        engine, _ = engine_with_sink(backend=PoisonedBackend(13))
        with pytest.raises(RuntimeError, match="poisoned measurement"):
            engine.run(TuningSession(binary, workload(13)))


class TestBenchSuiteSurfacing:
    def test_bench_suite_reports_failed_sessions_after_the_batch(
        self, monkeypatch
    ):
        from repro.harness import experiments

        real_run = ExecutionEngine._run

        def poisoned_run(self, session):
            if session.name == "srad":
                raise RuntimeError("srad went sideways")
            return real_run(self, session)

        monkeypatch.setattr(ExecutionEngine, "_run", poisoned_run)
        engine, _ = engine_with_sink()
        with pytest.raises(RuntimeError) as excinfo:
            experiments.bench_suite(
                GTX680, only=["bfs", "srad"], suite_engine=engine
            )
        message = str(excinfo.value)
        assert "benchmark session(s) failed: srad" in message
        assert "srad went sideways" in message
