"""Execution engine tests: scheduling, caching, telemetry, backends."""

import json

import pytest

from repro.arch import GTX680
from repro.compiler import CompileOptions, compile_binary
from repro.perf.measure_cache import MeasurementCache
from repro.runtime import OrionRuntime, Workload
from repro.runtime.engine import ExecutionEngine, _resolve_jobs
from repro.runtime.session import TuningSession
from repro.runtime.telemetry import EventKind, InMemorySink, TelemetryHub
from repro.sim import LaunchConfig
from tests.runtime.test_launcher import pressure_module


@pytest.fixture(scope="module")
def binary():
    return compile_binary(pressure_module(), "k", CompileOptions(arch=GTX680))


@pytest.fixture(scope="module")
def workload():
    return Workload(
        launch=LaunchConfig(grid_blocks=64, block_size=256),
        iterations=10,
        max_events_per_warp=1500,
    )


def session_for(binary, workload, name="k"):
    return TuningSession(binary, workload, name=name)


def engine_with_sink(**kwargs):
    sink = InMemorySink()
    engine = ExecutionEngine(GTX680, telemetry=TelemetryHub(sink), **kwargs)
    return engine, sink


def reports_equal(a, b):
    return (
        a.total_cycles == b.total_cycles
        and a.final_label == b.final_label
        and a.iterations_to_converge == b.iterations_to_converge
        and a.was_split == b.was_split
        and [(r.label, r.cycles) for r in a.records]
        == [(r.label, r.cycles) for r in b.records]
    )


class TestEngineRun:
    def test_matches_orion_runtime(self, binary, workload):
        engine, _ = engine_with_sink()
        via_engine = engine.run(session_for(binary, workload))
        via_runtime = OrionRuntime(GTX680, binary).execute(workload)
        assert reports_equal(via_engine, via_runtime)

    def test_session_records_and_report(self, binary, workload):
        engine, _ = engine_with_sink()
        session = session_for(binary, workload)
        report = engine.run(session)
        assert session.finished
        assert session.report is report
        assert len(report.records) == workload.iterations
        assert report.total_cycles == sum(r.cycles for r in report.records)

    def test_emits_session_lifecycle_events(self, binary, workload):
        engine, sink = engine_with_sink()
        engine.run(session_for(binary, workload, name="pressure"))
        assert sink.count(EventKind.SESSION_START) == 1
        assert sink.count(EventKind.ITERATION) == workload.iterations
        assert sink.count(EventKind.CONVERGED) == 1
        assert sink.count(EventKind.SESSION_FINALIZED) == 1
        # Trials stop once converged, so there are fewer than iterations.
        assert 0 < sink.count(EventKind.TRIAL) < workload.iterations
        assert all(
            e.session == "pressure"
            for e in sink.events
            if e.kind is not EventKind.ENGINE_START
        )

    def test_converged_tail_hits_cache(self, binary, workload):
        """Post-convergence iterations re-run one version: pure cache hits."""
        engine, sink = engine_with_sink()
        engine.run(session_for(binary, workload))
        assert sink.count(EventKind.CACHE_HIT) > 0
        assert (
            sink.count(EventKind.BACKEND_INVOKE)
            == sink.count(EventKind.CACHE_MISS)
            < workload.iterations
        )


class TestRunMany:
    def test_concurrent_identical_to_sequential(self, binary, workload):
        sequential_engine, _ = engine_with_sink()
        sequential = sequential_engine.run_many(
            [session_for(binary, workload, name=f"s{i}") for i in range(3)],
            jobs=1,
        )
        concurrent_engine, _ = engine_with_sink()
        concurrent = concurrent_engine.run_many(
            [session_for(binary, workload, name=f"s{i}") for i in range(3)],
            jobs=4,
        )
        assert len(sequential) == len(concurrent) == 3
        for a, b in zip(sequential, concurrent):
            assert reports_equal(a, b)

    def test_cross_session_cache_hits(self, binary, workload):
        """Identical sessions collapse to one backend invocation each.

        Sequential scheduling makes the hit count exact; concurrently
        two sessions may race to the same key and both miss the cache,
        in which case the measurement pool's single-flight still
        collapses them to one backend call.
        """
        engine, sink = engine_with_sink()
        engine.run_many(
            [session_for(binary, workload, name=f"s{i}") for i in range(2)],
            jobs=1,
        )
        invokes = sink.count(EventKind.BACKEND_INVOKE)
        hits = sink.count(EventKind.CACHE_HIT)
        # The second session measures nothing the first didn't already.
        assert invokes + hits == 2 * workload.iterations
        assert hits >= workload.iterations
        sessions_hitting = {e.session for e in sink.of(EventKind.CACHE_HIT)}
        assert "s1" in sessions_hitting

    def test_engine_start_finish_events(self, binary, workload):
        engine, sink = engine_with_sink()
        engine.run_many([session_for(binary, workload)], jobs=1)
        (start,) = sink.of(EventKind.ENGINE_START)
        (finish,) = sink.of(EventKind.ENGINE_FINISH)
        assert start.data["sessions"] == finish.data["sessions"] == 1
        assert finish.data["cache_misses"] == engine.cache.stats.misses

    def test_empty_session_list(self):
        engine, _ = engine_with_sink()
        assert engine.run_many([], jobs=4) == []


class TestMeasurePinned:
    def test_honours_work_profile(self, binary):
        """The old measure_version bug: work_profile was ignored."""
        engine, _ = engine_with_sink()
        base = Workload(
            launch=LaunchConfig(grid_blocks=64, block_size=256),
            iterations=2,
            max_events_per_warp=1500,
        )
        shrunk = Workload(
            launch=base.launch,
            iterations=2,
            work_profile=[1.0, 0.5],
            max_events_per_warp=1500,
        )
        full = engine.measure_pinned(binary, binary.original, base)
        partial = engine.measure_pinned(binary, binary.original, shrunk)
        assert partial < full

    def test_matches_scaled_measurements(self, binary):
        engine, _ = engine_with_sink()
        workload = Workload(
            launch=LaunchConfig(grid_blocks=64, block_size=256),
            iterations=2,
            work_profile=[1.0, 0.5],
            max_events_per_warp=1500,
        )
        pinned = engine.measure_pinned(binary, binary.original, workload)
        expected = sum(
            engine.measure(
                binary.original,
                LaunchConfig(grid_blocks=blocks, block_size=256),
                workload,
            ).cycles
            for blocks in (64, 32)
        )
        assert pinned == expected

    def test_runtime_facade_carries_the_fix(self, binary):
        runtime = OrionRuntime(GTX680, binary)
        base = Workload(
            launch=LaunchConfig(grid_blocks=64, block_size=256),
            iterations=2,
            max_events_per_warp=1500,
        )
        shrunk = Workload(
            launch=base.launch,
            iterations=2,
            work_profile=[1.0, 0.5],
            max_events_per_warp=1500,
        )
        assert runtime.measure_version(
            binary.original, shrunk
        ) < runtime.measure_version(binary.original, base)


class TestBackendsThroughEngine:
    def test_analytical_backend_runs_sessions(self, binary, workload):
        engine, _ = engine_with_sink(backend="analytical")
        report = engine.run(session_for(binary, workload))
        assert report.final_version is not None
        assert len(report.records) == workload.iterations

    def test_functional_backend_prefers_lowest_occupancy(self, binary, workload):
        """Identical 'runtimes' per version: tuner takes the low end."""
        engine, _ = engine_with_sink(backend="functional")
        report = engine.run(session_for(binary, workload))
        assert report.final_version is not None

    def test_backends_share_nothing_in_cache(self, binary, workload):
        cache = MeasurementCache()
        timing = ExecutionEngine(GTX680, measurement_cache=cache)
        analytical = ExecutionEngine(
            GTX680, backend="analytical", measurement_cache=cache
        )
        launch = workload.launch
        a = timing.measure(binary.original, launch, workload)
        b = analytical.measure(binary.original, launch, workload)
        assert not b.cached  # different backend → different key
        assert a.backend != b.backend


class TestTraceFile:
    def test_writes_parseable_jsonl(self, binary, workload, tmp_path):
        trace = tmp_path / "trace.jsonl"
        engine = ExecutionEngine(GTX680, trace_file=trace)
        engine.run_many([session_for(binary, workload)], jobs=1)
        engine.telemetry.close()
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        # The engine span brackets the whole run.
        assert records[0]["kind"] == "span_start"
        assert records[0]["data"]["name"] == "engine"
        assert records[-1]["kind"] == "span_end"
        assert records[-1]["data"]["name"] == "engine"
        assert records[1]["kind"] == "engine_start"
        assert records[-2]["kind"] == "engine_finish"
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)
        kinds = {r["kind"] for r in records}
        assert {"session_start", "trial", "iteration", "converged"} <= kinds

    def test_env_var_enables_trace(self, binary, workload, tmp_path, monkeypatch):
        trace = tmp_path / "env_trace.jsonl"
        monkeypatch.setenv("ORION_TRACE_FILE", str(trace))
        engine = ExecutionEngine(GTX680)
        engine.run(session_for(binary, workload))
        engine.telemetry.close()
        assert trace.exists()


class TestJobsResolution:
    def test_explicit_wins(self):
        assert _resolve_jobs(3) == 3

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv("ORION_ENGINE_JOBS", "7")
        assert _resolve_jobs(None) == 7

    def test_missing_env_means_sequential(self, monkeypatch):
        monkeypatch.delenv("ORION_ENGINE_JOBS", raising=False)
        assert _resolve_jobs(None) == 1

    def test_garbage_env_degrades_to_sequential(self, monkeypatch):
        monkeypatch.setenv("ORION_ENGINE_JOBS", "many")
        assert _resolve_jobs(None) == 1

    def test_floor_of_one(self):
        assert _resolve_jobs(0) == 1
        assert _resolve_jobs(-4) == 1
