"""Measurement-pool tests: batching, single-flight, identity, metrics.

The pool must be invisible in every result: batched-concurrent
execution produces reports byte-identical to sequential unbatched
execution, and its only observable effects are fewer backend
invocations and the ``orion_engine_*`` metrics.
"""

import threading

import pytest

from repro.arch import GTX680
from repro.compiler import CompileOptions, compile_binary
from repro.obs.metrics import get_registry, reset_registry
from repro.runtime import Workload
from repro.runtime.engine import (
    ExecutionEngine,
    MeasurementPool,
    _resolve_batch,
)
from repro.runtime.session import TuningSession
from repro.runtime.telemetry import InMemorySink, TelemetryHub
from repro.sim import LaunchConfig
from repro.sim.backend import MeasurementResult
from tests.runtime.test_launcher import pressure_module


@pytest.fixture(scope="module")
def binary():
    return compile_binary(pressure_module(), "k", CompileOptions(arch=GTX680))


@pytest.fixture(scope="module")
def workload():
    return Workload(
        launch=LaunchConfig(grid_blocks=64, block_size=256),
        iterations=10,
        max_events_per_warp=1500,
    )


def reports_equal(a, b):
    return (
        a.total_cycles == b.total_cycles
        and a.final_label == b.final_label
        and a.iterations_to_converge == b.iterations_to_converge
        and a.was_split == b.was_split
        and [(r.label, r.cycles) for r in a.records]
        == [(r.label, r.cycles) for r in b.records]
    )


class _CountingBackend:
    """A backend that records every invocation (and can block)."""

    name = "counting"

    def __init__(self, gate: threading.Event | None = None):
        self.calls = []
        self.lock = threading.Lock()
        self.gate = gate

    def measure(self, request):
        if self.gate is not None:
            self.gate.wait(5)
        with self.lock:
            self.calls.append(request)
        return MeasurementResult(backend=self.name, cycles=len(str(request)))


class TestResolveBatch:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("ORION_ENGINE_BATCH", raising=False)
        assert _resolve_batch(None) == 8

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("ORION_ENGINE_BATCH", "3")
        assert _resolve_batch(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("ORION_ENGINE_BATCH", "3")
        assert _resolve_batch(16) == 16

    def test_garbage_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("ORION_ENGINE_BATCH", "many")
        assert _resolve_batch(None) == 8

    def test_disable(self):
        assert _resolve_batch(0) == 0
        assert _resolve_batch(-2) == 0


class TestMeasurementPool:
    def test_batch_leq_one_calls_backend_directly(self):
        backend = _CountingBackend()
        pool = MeasurementPool(backend, batch=1)
        r1 = pool.measure("key-a", "req-a")
        r2 = pool.measure("key-a", "req-a")
        # No dedup without pooling: two calls, two invocations.
        assert len(backend.calls) == 2
        assert r1.cycles == r2.cycles

    def test_sequential_measures_resolve(self):
        backend = _CountingBackend()
        pool = MeasurementPool(backend, batch=8)
        assert pool.measure("key-a", "req-a").cycles == len("req-a")
        assert pool.measure("key-b", "req-b").cycles == len("req-b")
        assert len(backend.calls) == 2

    def test_concurrent_same_key_single_flight(self):
        gate = threading.Event()
        backend = _CountingBackend(gate)
        pool = MeasurementPool(backend, batch=8)
        results = [None] * 4

        def worker(i):
            results[i] = pool.measure("key-a", "req-a")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(10)
        assert all(t.is_alive() is False for t in threads)
        # One backend call served every waiter.
        assert len(backend.calls) == 1
        assert all(r is not None and r.cycles == len("req-a") for r in results)

    def test_concurrent_distinct_keys_all_resolve(self):
        gate = threading.Event()
        backend = _CountingBackend(gate)
        pool = MeasurementPool(backend, batch=4)
        results = {}

        def worker(i):
            results[i] = pool.measure(f"key-{i}", f"req-{i}")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        gate.set()
        for t in threads:
            t.join(10)
        assert all(t.is_alive() is False for t in threads)
        assert len(backend.calls) == 8
        assert set(results) == set(range(8))

    def test_backend_error_reaches_every_waiter(self):
        class _Exploding:
            name = "exploding"

            def measure(self, request):
                raise RuntimeError("boom")

        pool = MeasurementPool(_Exploding(), batch=8)
        with pytest.raises(RuntimeError, match="boom"):
            pool.measure("key-a", "req-a")
        # The failed flight is retired, not wedged: retry re-invokes.
        with pytest.raises(RuntimeError, match="boom"):
            pool.measure("key-a", "req-a")

    def test_metrics_recorded(self):
        reset_registry()
        backend = _CountingBackend()
        pool = MeasurementPool(backend, batch=8)
        pool.measure("key-a", "req-a")
        pool.measure("key-b", "req-b")
        registry = get_registry()
        counter = registry.counter("orion_engine_measurements_total")
        assert counter.value(result="queued") == 2
        hist = registry.histogram(
            "orion_engine_batch_size",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
        )
        samples = hist.snapshot_samples()
        assert samples and samples[0]["count"] >= 1
        reset_registry()


class TestBatchedEngineIdentity:
    def test_batched_concurrent_identical_to_unbatched_sequential(
        self, binary, workload
    ):
        plain = ExecutionEngine(
            GTX680, telemetry=TelemetryHub(InMemorySink()), batch=0
        )
        sequential = plain.run_many(
            [
                TuningSession(binary, workload, name=f"s{i}")
                for i in range(3)
            ],
            jobs=1,
        )
        pooled = ExecutionEngine(
            GTX680, telemetry=TelemetryHub(InMemorySink()), batch=8
        )
        batched = pooled.run_many(
            [
                TuningSession(binary, workload, name=f"s{i}")
                for i in range(3)
            ],
            jobs=4,
        )
        assert len(sequential) == len(batched) == 3
        for a, b in zip(sequential, batched):
            assert a is not None and b is not None
            assert reports_equal(a, b)

    def test_env_knob_reaches_pool(self, monkeypatch):
        monkeypatch.setenv("ORION_ENGINE_BATCH", "5")
        engine = ExecutionEngine(GTX680, telemetry=TelemetryHub())
        assert engine.pool.batch == 5
