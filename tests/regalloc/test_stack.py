"""Compressible-stack math: Theorem 1 weights, optimal layout, packing."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.registers import VirtualReg
from repro.regalloc.stack import (
    Cluster,
    build_clusters,
    count_total_moves,
    movement_weight,
    optimal_layout,
    packed_height,
)


def v(i, w=1):
    return VirtualReg(i, w)


def make_clusters(n):
    return [
        Cluster(cid=i, base=i, width=1, vars=[v(i)]) for i in range(n)
    ]


class TestBuildClusters:
    def test_singles(self):
        coloring = {v(0): 0, v(1): 1, v(2): 0}
        clusters = build_clusters(coloring)
        assert len(clusters) == 2
        assert {c.base for c in clusters} == {0, 1}
        by_base = {c.base: c for c in clusters}
        assert set(by_base[0].vars) == {v(0), v(2)}

    def test_wide_merges_slots(self):
        coloring = {v(0, 2): 0, v(1): 1}
        clusters = build_clusters(coloring)
        # slot 1 is shared by the wide var and the single: one cluster.
        assert len(clusters) == 1
        assert clusters[0].width == 2

    def test_disjoint_wide(self):
        coloring = {v(0, 2): 0, v(1): 2}
        clusters = build_clusters(coloring)
        assert len(clusters) == 2
        widths = sorted(c.width for c in clusters)
        assert widths == [1, 2]

    def test_empty(self):
        assert build_clusters({}) == []


class TestMovementWeight:
    def test_paper_theorem1(self):
        """C_ijk = 1 iff live at k and position >= B_k."""
        c = Cluster(cid=0, base=0, width=1, vars=[v(0)])
        live = [True, False, True]
        heights = [2, 2, 4]
        # position 1: below every B_k -> no moves.
        assert movement_weight(c, 1, live, heights) == 0
        # position 2: >= B_0 (live) and < B_2 -> 1 move.
        assert movement_weight(c, 2, live, heights) == 1
        # position 5: >= B_0 and >= B_2, live at both -> 2 moves.
        assert movement_weight(c, 5, live, heights) == 2
        # dead at site 1 regardless of position.
        assert movement_weight(c, 5, [False, False, False], heights) == 0

    def test_wide_cluster_costs_width(self):
        c = Cluster(cid=0, base=0, width=2, vars=[v(0, 2)])
        assert movement_weight(c, 3, [True], [4]) == 2
        # straddling B_k still forces a move.
        assert movement_weight(c, 3, [True], [4]) == 2
        assert movement_weight(c, 2, [True], [4]) == 0


class TestOptimalLayout:
    def _moves(self, layout, clusters, live, heights):
        return count_total_moves(clusters, layout, live, heights)

    def test_paper_figure6_example(self):
        """Fig. 6: reordering slots drops 3 movements to 1.

        Four variable sets; three call sites.  In layout (a) three moves
        happen; the optimal relabelling achieves 1 (matching the paper's
        narrative for var1/var2/var3/var5 with var4 arriving late).
        """
        # Sets: S1=var1 (live at all calls), S2=var3 then var4,
        # S3=var2, S4=var5 (live at calls 1 and 2).
        clusters = make_clusters(4)
        live = {
            0: [True, True, True],  # var1: live everywhere
            1: [True, False, True],  # var3 / var4
            2: [False, True, False],  # var2
            3: [True, True, False],  # var5
        }
        heights = [3, 3, 2]  # callee windows demanded at the three calls
        identity = {c.cid: c.base for c in clusters}
        optimal = optimal_layout(clusters, live, heights, 4)
        id_cost = self._moves(identity, clusters, live, heights)
        opt_cost = self._moves(optimal, clusters, live, heights)
        assert opt_cost <= id_cost
        assert opt_cost == 1

    def test_layout_is_injective(self):
        clusters = make_clusters(5)
        live = {i: [True] for i in range(5)}
        layout = optimal_layout(clusters, live, [3], 5)
        positions = list(layout.values())
        assert len(set(positions)) == len(positions)

    def test_movement_minimization_off_is_identity(self):
        clusters = make_clusters(3)
        live = {i: [True] for i in range(3)}
        layout = optimal_layout(clusters, live, [1], 3, minimize_movement=False)
        assert layout == {0: 0, 1: 1, 2: 2}

    def test_optimal_never_worse_than_any_permutation(self):
        """KM layout beats or ties brute force over all permutations."""
        clusters = make_clusters(5)
        live = {
            0: [True, True],
            1: [False, True],
            2: [True, False],
            3: [True, True],
            4: [False, False],
        }
        heights = [2, 3]
        optimal = optimal_layout(clusters, live, heights, 5)
        opt_cost = self._moves(optimal, clusters, live, heights)
        best = min(
            self._moves(
                {c.cid: p for c, p in zip(clusters, perm)},
                clusters,
                live,
                heights,
            )
            for perm in itertools.permutations(range(5))
        )
        assert opt_cost == best

    @given(
        n=st.integers(min_value=1, max_value=6),
        sites=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=9999),
    )
    @settings(max_examples=50, deadline=None)
    def test_random_instances_match_brute_force(self, n, sites, seed):
        import random

        rng = random.Random(seed)
        clusters = make_clusters(n)
        live = {
            i: [rng.random() < 0.5 for _ in range(sites)] for i in range(n)
        }
        heights = [rng.randint(0, n) for _ in range(sites)]
        optimal = optimal_layout(clusters, live, heights, n)
        opt_cost = self._moves(optimal, clusters, live, heights)
        best = min(
            self._moves(
                {c.cid: p for c, p in zip(clusters, perm)},
                clusters,
                live,
                heights,
            )
            for perm in itertools.permutations(range(n))
        )
        assert opt_cost == best


class TestPackedHeight:
    def test_singles(self):
        assert packed_height([(1, 1)] * 3 ) == 3

    def test_empty(self):
        assert packed_height([]) == 0

    def test_wide_alignment_padding(self):
        # One single + one 64-bit: the pair packs into 4 slots at worst
        # (w2 at 0..1, single at 2) -> height 3.
        assert packed_height([(2, 2), (1, 1)]) == 3

    def test_quad(self):
        assert packed_height([(4, 4), (1, 1), (1, 1)]) == 6
