"""Property-based end-to-end fuzzing of the whole allocation pipeline.

Hypothesis generates random structured kernels (straight-line segments,
diamonds, counted loops, device-function calls, wide values); each is
allocated at a randomly chosen register budget and must produce global
memory identical to the original program under the functional
interpreter — the strongest single invariant in the repository.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.function import Module
from repro.isa.assembly import parse_module
from repro.regalloc.allocator import BudgetError, allocate_module
from repro.sim.interp import LaunchConfig, run_kernel


@st.composite
def random_kernel(draw) -> tuple[Module, int]:
    """A random structured kernel plus a plausible register budget."""
    rng_vals = st.integers(min_value=0, max_value=9)
    n_persistent = draw(st.integers(min_value=1, max_value=10))
    n_segments = draw(st.integers(min_value=1, max_value=3))
    use_loop = draw(st.booleans())
    use_call = draw(st.booleans())
    use_diamond = draw(st.booleans())
    use_wide = draw(st.booleans())

    lines = [
        "S2R %v0, %tid",
        "SHL %v1, %v0, 2",
    ]
    next_reg = 2
    live = []

    def fresh() -> str:
        nonlocal next_reg
        name = f"%v{next_reg}"
        next_reg += 1
        return name

    for i in range(n_persistent):
        r = fresh()
        lines.append(f"LD.global {r}, [%v1+{4 * i}]")
        live.append(r)

    if use_wide:
        w = fresh() + ".w2"
        lines.append(f"LD.global {w}, [%v1+64]")
        live.append(w)

    blocks = []
    if use_diamond:
        cond, t_val = fresh(), fresh()
        lines.append(f"ISET.lt {cond}, %v0, 2")
        lines.append(f"CBR {cond}, ARM_T, ARM_F")
        blocks.append(("ARM_T", [f"MOV {t_val}, 3.5", "BRA JOIN"]))
        blocks.append(("ARM_F", [f"MOV {t_val}, 1.5", "BRA JOIN"]))
        join_lines = []
        blocks.append(("JOIN", join_lines))
        live.append(t_val)
        tail = join_lines
    else:
        tail = lines

    if use_loop:
        counter, accum = fresh(), fresh()
        trips = draw(st.integers(min_value=1, max_value=4))
        tail.append(f"MOV {counter}, 0")
        tail.append(f"MOV {accum}, 0.0")
        tail.append("BRA HEAD")
        body = []
        for value in live[: draw(st.integers(min_value=1, max_value=len(live)))]:
            nxt = fresh()
            body.append(f"FFMA {nxt}, {value}, 1.25, {accum}")
            accum = nxt
        blocks.append(
            (
                "HEAD",
                [
                    f"ISET.lt %v90, {counter}, {trips}",
                    "CBR %v90, BODY, DONE",
                ],
            )
        )
        blocks.append(
            ("BODY", body + [f"IADD {counter}, {counter}, 1", "BRA HEAD"])
        )
        done_lines = []
        blocks.append(("DONE", done_lines))
        live.append(accum)
        tail = done_lines

    result = live[draw(st.integers(min_value=0, max_value=len(live) - 1))]
    if use_call:
        out = fresh()
        base = result if not result.endswith(".w2") else live[0]
        tail.append(f"CALL {out}, helper({base})")
        result = out
    if result.endswith(".w2"):
        narrowed = fresh()
        tail.append(f"FADD {narrowed}, {result}, 0.0")
        result = narrowed
    tail.append(f"ST.global [%v1], {result}")
    tail.append("EXIT")

    text = [".module fuzz", ".kernel k shared=0", "BB0:"]
    text.extend(f"    {line}" for line in lines)
    for label, body_lines in blocks:
        text.append(f"{label}:")
        text.extend(f"    {line}" for line in body_lines)
    if use_call:
        text.append(".end")
        text.append(".func helper args=1 returns=1")
        text.append("BB0:")
        text.append("    FMUL %v1, %v0, 2.0")
        text.append("    FADD %v2, %v1, 0.25")
        text.append("    RET %v2")
    text.append(".end")

    module = parse_module("\n".join(text))
    module.validate()
    budget = draw(st.integers(min_value=4, max_value=24))
    return module, budget


@given(random_kernel())
@settings(max_examples=40, deadline=None)
def test_allocation_preserves_semantics_on_random_programs(case):
    module, budget = case
    launch = LaunchConfig(grid_blocks=1, block_size=4)
    memory = {i * 4: float(i % 5 + 1) for i in range(64)}
    expected = run_kernel(module, launch, global_memory=memory)
    try:
        outcome = allocate_module(module, "k", budget, block_size=4)
    except BudgetError:
        return  # too tight for this program: a legitimate outcome
    actual = run_kernel(outcome.module, launch, global_memory=memory)
    assert actual == pytest.approx(expected)
    assert outcome.registers_per_thread <= budget
