"""Differential tests: LAPJV (scipy) fast path vs. pure Kuhn–Munkres.

Both solvers are deterministic and optimal; on every matrix the fast
path must produce a *valid* assignment with exactly the reference
optimal cost, and on infeasible matrices it must raise the reference
``ValueError``.  (On real MMA matrices the assignments themselves are
identical as well; random matrices can tie, so here we assert the
invariants the rest of the compiler relies on — validity + optimal
cost — plus byte-identical behaviour between ``ORION_ACCEL`` modes.)
"""

from __future__ import annotations

import os

import pytest

from repro.regalloc.matching import (
    INFINITY,
    _min_cost_assignment_pure,
    assignment_weight,
    min_cost_assignment,
)

hypothesis = pytest.importorskip("hypothesis")
pytest.importorskip("scipy.optimize")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402


class _forced_mode:
    """Temporarily pin ``ORION_ACCEL`` for a differential run."""

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self._saved: str | None = None

    def __enter__(self):
        self._saved = os.environ.get("ORION_ACCEL")
        os.environ["ORION_ACCEL"] = self.mode
        return self

    def __exit__(self, *exc):
        if self._saved is None:
            os.environ.pop("ORION_ACCEL", None)
        else:
            os.environ["ORION_ACCEL"] = self._saved


def _finite_matrix(min_rows=1, max_rows=8, extra_cols=0):
    @st.composite
    def build(draw):
        n = draw(st.integers(min_rows, max_rows))
        m = draw(st.integers(n, n + extra_cols)) if extra_cols else n
        cell = st.integers(-50, 50).map(float)
        return [[draw(cell) for _ in range(m)] for _ in range(n)]

    return build()


def _check_equivalent(cost):
    reference = _min_cost_assignment_pure(cost)
    with _forced_mode("numpy"):
        fast = min_cost_assignment(cost)
    n = len(cost)
    assert sorted(fast) == sorted(set(fast)), "fast path reused a column"
    assert len(fast) == n
    assert all(0 <= j < len(cost[0]) for j in fast)
    assert assignment_weight(cost, fast) == assignment_weight(cost, reference)


@settings(max_examples=150, deadline=None)
@given(_finite_matrix())
def test_square_matrices_equivalent(cost):
    _check_equivalent(cost)


@settings(max_examples=150, deadline=None)
@given(_finite_matrix(extra_cols=5))
def test_rectangular_matrices_equivalent(cost):
    _check_equivalent(cost)


@settings(max_examples=150, deadline=None)
@given(
    _finite_matrix(min_rows=2, extra_cols=3),
    st.data(),
)
def test_matrices_with_forbidden_entries(cost, data):
    # Poison a random subset of entries with +inf; both solvers must
    # agree on cost when feasible and on the error when not.
    n, m = len(cost), len(cost[0])
    k = data.draw(st.integers(0, n * m))
    for _ in range(k):
        i = data.draw(st.integers(0, n - 1))
        j = data.draw(st.integers(0, m - 1))
        cost[i][j] = INFINITY

    try:
        reference = _min_cost_assignment_pure(cost)
    except ValueError as exc:
        with _forced_mode("numpy"):
            with pytest.raises(ValueError) as caught:
                min_cost_assignment(cost)
        assert str(caught.value) == str(exc)
        return
    # Optimal-but-tied assignments may differ; costs may not.  The
    # infeasible guard means any returned assignment is all-finite.
    with _forced_mode("numpy"):
        fast = min_cost_assignment(cost)
    assert all(cost[i][j] < INFINITY for i, j in enumerate(fast))
    assert assignment_weight(cost, fast) == assignment_weight(cost, reference)


def test_infeasible_error_message_matches_reference():
    cost = [[INFINITY, INFINITY], [1.0, 2.0]]
    with _forced_mode("off"):
        with pytest.raises(ValueError) as pure_err:
            min_cost_assignment(cost)
    with _forced_mode("numpy"):
        with pytest.raises(ValueError) as fast_err:
            min_cost_assignment(cost)
    assert "infeasible assignment: row 0" in str(pure_err.value)
    assert str(fast_err.value) == str(pure_err.value)


def test_validation_errors_identical_across_modes():
    ragged = [[1.0, 2.0], [3.0]]
    tall = [[1.0], [2.0]]
    for mode in ("off", "numpy"):
        with _forced_mode(mode):
            with pytest.raises(ValueError, match="unequal lengths"):
                min_cost_assignment(ragged)
            with pytest.raises(ValueError, match="at least as many columns"):
                min_cost_assignment(tall)
            assert min_cost_assignment([]) == []


def test_off_mode_uses_pure_solver_result():
    cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]]
    with _forced_mode("off"):
        off = min_cost_assignment(cost)
    with _forced_mode("numpy"):
        fast = min_cost_assignment(cost)
    assert off == _min_cost_assignment_pure(cost)
    assert assignment_weight(cost, fast) == assignment_weight(cost, off)
