"""Kuhn–Munkres tests, cross-checked against scipy and brute force."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

# Only the scipy cross-check needs the scientific stack; the pure
# Kuhn–Munkres tests must keep running in accelerator-free installs.
try:
    import numpy as np
    from scipy.optimize import linear_sum_assignment
except ImportError:  # pragma: no cover - exercised by the pure CI job
    np = None
    linear_sum_assignment = None

from repro.regalloc.matching import (
    assignment_weight,
    max_weight_assignment,
    min_cost_assignment,
)


class TestSmallCases:
    def test_identity(self):
        cost = [[0.0, 1.0], [1.0, 0.0]]
        assert min_cost_assignment(cost) == [0, 1]

    def test_swap(self):
        cost = [[5.0, 1.0], [1.0, 5.0]]
        assert min_cost_assignment(cost) == [1, 0]

    def test_empty(self):
        assert min_cost_assignment([]) == []

    def test_single(self):
        assert min_cost_assignment([[3.0]]) == [0]

    def test_rectangular_rows_less_than_columns(self):
        cost = [[9.0, 1.0, 9.0], [9.0, 9.0, 1.0]]
        assert min_cost_assignment(cost) == [1, 2]

    def test_more_rows_than_columns_rejected(self):
        with pytest.raises(ValueError):
            min_cost_assignment([[1.0], [2.0]])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            min_cost_assignment([[1.0, 2.0], [1.0]])

    def test_max_weight_negates(self):
        weights = [[5.0, 1.0], [1.0, 5.0]]
        assert max_weight_assignment(weights) == [0, 1]


class TestDegenerateShapes:
    def test_all_zero_costs(self):
        cost = [[0.0] * 4 for _ in range(3)]
        assign = min_cost_assignment(cost)
        assert len(set(assign)) == 3
        assert all(0 <= j < 4 for j in assign)
        assert assignment_weight(cost, assign) == 0.0

    def test_all_zero_weights_max(self):
        weights = [[0.0] * 3 for _ in range(3)]
        assign = max_weight_assignment(weights)
        assert sorted(assign) == [0, 1, 2]
        assert assignment_weight(weights, assign) == 0.0

    def test_single_row_picks_cheapest_column(self):
        assert min_cost_assignment([[7.0, 3.0, 5.0]]) == [1]

    def test_single_row_max_picks_heaviest_column(self):
        assert max_weight_assignment([[7.0, 3.0, 5.0]]) == [0]

    def test_single_cell(self):
        assert min_cost_assignment([[4.0]]) == [0]
        assert max_weight_assignment([[4.0]]) == [0]

    def test_every_small_rectangular_instance(self):
        """Exhaustive 2×3 sweep over a small value alphabet."""
        values = (0.0, 1.0, 2.0)
        for flat in itertools.product(values, repeat=6):
            cost = [list(flat[:3]), list(flat[3:])]
            best, _ = _brute_force_min(cost)
            assign = min_cost_assignment(cost)
            assert len(set(assign)) == 2
            total = sum(cost[i][assign[i]] for i in range(2))
            assert total == pytest.approx(best), cost


def _brute_force_min(cost):
    n, m = len(cost), len(cost[0])
    best, best_assign = float("inf"), None
    for perm in itertools.permutations(range(m), n):
        total = sum(cost[i][perm[i]] for i in range(n))
        if total < best:
            best, best_assign = total, list(perm)
    return best, best_assign


@given(
    st.integers(min_value=1, max_value=6).flatmap(
        lambda n: st.lists(
            st.lists(
                st.integers(min_value=0, max_value=50), min_size=n, max_size=n
            ),
            min_size=n,
            max_size=n,
        )
    )
)
@settings(max_examples=80, deadline=None)
def test_matches_brute_force(cost):
    cost = [[float(c) for c in row] for row in cost]
    best, _ = _brute_force_min(cost)
    assign = min_cost_assignment(cost)
    assert len(set(assign)) == len(assign)  # injective
    total = sum(cost[i][assign[i]] for i in range(len(cost)))
    assert total == pytest.approx(best)


@pytest.mark.skipif(np is None, reason="needs numpy + scipy")
@given(
    n=st.integers(min_value=1, max_value=12),
    m=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_matches_scipy(n, m, seed):
    rng = np.random.default_rng(seed)
    cost = rng.integers(0, 1000, size=(n, n + m)).astype(float)
    assign = min_cost_assignment(cost.tolist())
    rows, cols = linear_sum_assignment(cost)
    ours = sum(cost[i][assign[i]] for i in range(n))
    theirs = cost[rows, cols].sum()
    assert ours == pytest.approx(theirs)


def test_assignment_weight_helper():
    weights = [[2.0, 0.0], [0.0, 3.0]]
    assert assignment_weight(weights, [0, 1]) == 5.0


class TestForbiddenEdges:
    """Infinite-cost edges model forbidden pairings (e.g. a pinned
    cluster that must not move); a row with no finite column left must
    fail loudly, not corrupt the matching via ``match[-1]``."""

    def test_all_infinite_row_raises(self):
        inf = float("inf")
        with pytest.raises(ValueError, match="infeasible"):
            min_cost_assignment([[inf, inf], [1.0, inf]])

    def test_infeasibility_found_mid_augmentation_raises(self):
        # Both rows only afford column 0: the second augmenting path
        # runs out of finite columns after displacing the first row.
        inf = float("inf")
        with pytest.raises(ValueError, match="infeasible"):
            min_cost_assignment([[1.0, inf], [1.0, inf]])

    def test_feasible_despite_forbidden_edges(self):
        inf = float("inf")
        assert min_cost_assignment([[inf, 1.0], [1.0, inf]]) == [1, 0]

    def test_max_weight_with_forbidden_edges_raises(self):
        ninf = -float("inf")
        with pytest.raises(ValueError, match="infeasible"):
            max_weight_assignment([[ninf, ninf], [1.0, 2.0]])
