"""End-to-end allocation tests: every budget must preserve semantics.

The functional interpreter is the oracle: the allocated (physical,
frame-ABI) module must produce byte-identical global memory to the
original (virtual, value-ABI) module for every register budget tried —
including budgets small enough to force spilling, shared-memory
promotion, and compressible-stack save/restore moves.
"""

import pytest

from repro.isa.instructions import MemSpace, Opcode
from repro.isa.registers import PhysReg, VirtualReg
from repro.regalloc.allocator import (
    BudgetError,
    allocate_module,
    minimal_budget,
)
from repro.sim.interp import LaunchConfig, run_kernel
from tests.helpers import (
    call_kernel,
    diamond_kernel,
    loop_kernel,
    module_from_asm,
    straight_line_kernel,
    wide_kernel,
)


def assert_equivalent(module, outcome, launch, memory=None):
    expected = run_kernel(module, launch, global_memory=memory)
    actual = run_kernel(outcome.module, launch, global_memory=memory)
    assert actual == pytest.approx(expected)


def assert_fully_physical(outcome):
    for name in outcome.colorings:
        fn = outcome.module.functions[name]
        for reg in fn.all_regs():
            assert isinstance(reg, PhysReg), f"{name} still uses {reg}"
        top = fn.max_phys_slot()
        assert top <= outcome.registers_per_thread


LAUNCH = LaunchConfig(grid_blocks=1, block_size=8, params={0: 6})


class TestSimpleKernels:
    @pytest.mark.parametrize(
        "make", [straight_line_kernel, diamond_kernel, loop_kernel, wide_kernel]
    )
    def test_generous_budget_equivalent(self, make):
        module = make()
        memory = {i * 4: float(i % 7 + 1) for i in range(64)}
        outcome = allocate_module(module, "k", 32)
        assert outcome.spilled_variables == 0
        assert_fully_physical(outcome)
        assert_equivalent(module, outcome, LAUNCH, memory)

    @pytest.mark.parametrize(
        "make", [straight_line_kernel, diamond_kernel, loop_kernel]
    )
    def test_every_feasible_budget_equivalent(self, make):
        module = make()
        memory = {i * 4: float(i % 5 + 1) for i in range(64)}
        smallest = minimal_budget(module, "k")
        for budget in range(smallest, smallest + 6):
            outcome = allocate_module(module, "k", budget)
            assert_fully_physical(outcome)
            assert_equivalent(module, outcome, LAUNCH, memory)

    def test_tiny_budget_forces_spills_but_stays_correct(self):
        module = loop_kernel()
        memory = {i * 4: 0.0 for i in range(16)}
        smallest = minimal_budget(module, "k")
        # Squeeze below the spill-free minimum.
        for budget in range(2, smallest):
            try:
                outcome = allocate_module(module, "k", budget)
            except BudgetError:
                continue
            assert outcome.spilled_variables > 0
            assert outcome.local_bytes_per_thread > 0
            assert_equivalent(module, outcome, LAUNCH, memory)

    def test_registers_reported_not_exceeding_budget(self):
        module = diamond_kernel()
        outcome = allocate_module(module, "k", 16)
        assert outcome.registers_per_thread <= 16


class TestCalls:
    def test_call_tree_equivalent_generous(self):
        module = call_kernel()
        memory = {4 * t: float(t) for t in range(8)}
        outcome = allocate_module(module, "k", 24)
        assert_fully_physical(outcome)
        assert_equivalent(module, outcome, LaunchConfig(block_size=8), memory)

    def test_call_tree_all_budgets(self):
        module = call_kernel()
        memory = {4 * t: float(t) for t in range(8)}
        smallest = minimal_budget(module, "k")
        for budget in range(smallest, smallest + 8):
            outcome = allocate_module(module, "k", budget)
            assert_equivalent(
                module, outcome, LaunchConfig(block_size=8), memory
            )

    def test_calls_are_frame_abi_after_allocation(self):
        outcome = allocate_module(call_kernel(), "k", 24)
        for inst in outcome.module.functions["k"].instructions():
            if inst.is_call:
                assert inst.srcs == [] and inst.dst is None

    def test_space_minimization_lowers_register_count(self):
        """The Fig. 5 'no space minimization' ablation uses more slots."""
        module = _deep_call_module()
        memory = {4 * t: float(t + 1) for t in range(8)}
        opt = allocate_module(module, "k", 64, space_minimization=True)
        unopt = allocate_module(module, "k", 64, space_minimization=False)
        assert opt.registers_per_thread <= unopt.registers_per_thread
        launch = LaunchConfig(block_size=8)
        assert_equivalent(module, opt, launch, memory)
        assert_equivalent(module, unopt, launch, memory)

    def test_movement_minimization_reduces_moves(self):
        """The Fig. 5 'no data movement minimization' ablation moves more."""
        module = _movement_heavy_module()
        memory = {4 * t: float(t + 1) for t in range(8)}
        opt = allocate_module(module, "k", 12, movement_minimization=True)
        unopt = allocate_module(module, "k", 12, movement_minimization=False)
        assert opt.stack_moves <= unopt.stack_moves
        launch = LaunchConfig(block_size=4)
        assert_equivalent(module, opt, launch, memory)
        assert_equivalent(module, unopt, launch, memory)

    def test_live_values_survive_across_call(self):
        """Values live across calls must be compressed and restored."""
        module = _movement_heavy_module()
        memory = {4 * t: float(t + 1) for t in range(8)}
        smallest = minimal_budget(module, "k")
        for budget in range(smallest, smallest + 4):
            outcome = allocate_module(module, "k", budget)
            assert_equivalent(
                module, outcome, LaunchConfig(block_size=4), memory
            )


class TestSharedPromotion:
    def test_promotion_moves_spills_to_shared(self):
        module = _high_pressure_module()
        memory = {4 * t: float(t) for t in range(64)}
        base = allocate_module(module, "k", 4)
        assert base.spilled_variables > 0
        promoted = allocate_module(
            module, "k", 4, smem_spill_budget_per_thread=64, block_size=8
        )
        assert promoted.shared_bytes_per_block > 0
        shared_ops = [
            i
            for i in promoted.module.functions["k"].instructions()
            if i.is_memory and i.space is MemSpace.SHARED
        ]
        assert shared_ops
        launch = LaunchConfig(block_size=8)
        assert_equivalent(module, base, launch, memory)
        assert_equivalent(module, promoted, launch, memory)

    def test_promotion_reduces_local_traffic(self):
        module = _high_pressure_module()
        base = allocate_module(module, "k", 4)
        promoted = allocate_module(
            module, "k", 4, smem_spill_budget_per_thread=64, block_size=8
        )
        def local_ops(outcome):
            return sum(
                1
                for i in outcome.module.functions["k"].instructions()
                if i.is_memory and i.space is MemSpace.LOCAL
            )
        assert local_ops(promoted) < local_ops(base)


class TestFailureModes:
    def test_zero_budget_rejected(self):
        with pytest.raises(BudgetError):
            allocate_module(straight_line_kernel(), "k", 0)

    def test_hopeless_budget_rejected(self):
        module = wide_kernel()  # holds a w4 value: needs >= 4 slots
        with pytest.raises(BudgetError):
            allocate_module(module, "k", 2)

    def test_input_module_unmodified(self):
        module = loop_kernel()
        before = str(module)
        allocate_module(module, "k", 16)
        assert str(module) == before


# ----------------------------------------------------------------------
# Purpose-built fixtures
# ----------------------------------------------------------------------
def _deep_call_module():
    """Nested calls with values held across them (space-min matters)."""
    return module_from_asm(
        """
        .module deep
        .kernel k shared=0
        BB0:
            S2R %v0, %tid
            SHL %v1, %v0, 2
            LD.global %v2, [%v1]
            FMUL %v3, %v2, 2.0
            FADD %v4, %v2, 1.0
            FMUL %v5, %v2, 3.0
            CALL %v6, f(%v2)
            FADD %v7, %v6, %v3
            FADD %v8, %v7, %v4
            FADD %v9, %v8, %v5
            ST.global [%v1], %v9
            EXIT
        .end
        .func f args=1 returns=1
        BB0:
            FMUL %v1, %v0, 1.5
            FADD %v2, %v0, 0.5
            CALL %v3, g(%v1)
            FADD %v4, %v3, %v2
            RET %v4
        .end
        .func g args=1 returns=1
        BB0:
            FADD %v1, %v0, 10.0
            RET %v1
        .end
        """
    )


def _movement_heavy_module():
    """Several values live across several calls: layout choice matters."""
    return module_from_asm(
        """
        .module movers
        .kernel k shared=0
        BB0:
            S2R %v0, %tid
            SHL %v1, %v0, 2
            LD.global %v2, [%v1]
            FADD %v3, %v2, 1.0
            FADD %v4, %v2, 2.0
            FADD %v5, %v2, 3.0
            CALL %v6, tiny(%v2)
            FADD %v7, %v6, %v3
            CALL %v8, tiny(%v7)
            FADD %v9, %v8, %v4
            CALL %v10, tiny(%v9)
            FADD %v11, %v10, %v5
            ST.global [%v1], %v11
            EXIT
        .end
        .func tiny args=1 returns=1
        BB0:
            FMUL %v1, %v0, 2.0
            RET %v1
        .end
        """
    )


def _high_pressure_module():
    """Many simultaneously live values: spills at small budgets."""
    lines = ["S2R %v0, %tid", "SHL %v1, %v0, 2"]
    n = 8
    for i in range(n):
        lines.append(f"LD.global %v{2 + i}, [%v1+{32 * i}]")
    accum = "%v2"
    for i in range(1, n):
        lines.append(f"FADD %v{10 + i}, {accum}, %v{2 + i}")
        accum = f"%v{10 + i}"
    lines.append(f"ST.global [%v1], {accum}")
    lines.append("EXIT")
    body = "\n".join(f"    {line}" for line in lines)
    return module_from_asm(
        f".module hp\n.kernel k shared=0\nBB0:\n{body}\n.end"
    )
