"""Fig. 4 allocator tests: validity, wide variables, spilling, precolour."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.interference import InterferenceGraph
from repro.isa.registers import VirtualReg, is_aligned
from repro.regalloc.chaitin import color_graph, minimum_registers


def v(i, w=1):
    return VirtualReg(i, w)


def graph_from_edges(nodes, edges):
    g = InterferenceGraph()
    for node in nodes:
        g.add_node(node)
    for a, b in edges:
        g.add_edge(a, b)
    return g


def assert_valid(graph, result, num_colors, align=True):
    for var, base in result.coloring.items():
        assert 0 <= base
        assert base + var.width <= num_colors
        if align:
            assert is_aligned(base, var.width), f"{var} at {base} misaligned"
    for a in result.coloring:
        for b in graph.neighbors(a):
            if b not in result.coloring:
                continue
            ra = set(result.occupied_slots(a))
            rb = set(result.occupied_slots(b))
            assert not (ra & rb), f"{a} and {b} overlap"


class TestBasicColoring:
    def test_empty_graph(self):
        result = color_graph(InterferenceGraph(), 4)
        assert result.coloring == {} and result.spilled == []

    def test_independent_nodes_share_slot_zero(self):
        g = graph_from_edges([v(0), v(1), v(2)], [])
        result = color_graph(g, 4)
        assert set(result.coloring.values()) == {0}

    def test_triangle_needs_three(self):
        nodes = [v(0), v(1), v(2)]
        g = graph_from_edges(nodes, itertools.combinations(nodes, 2))
        result = color_graph(g, 3)
        assert not result.spilled
        assert_valid(g, result, 3)
        assert len(set(result.coloring.values())) == 3

    def test_triangle_with_two_colors_spills(self):
        nodes = [v(0), v(1), v(2)]
        g = graph_from_edges(nodes, itertools.combinations(nodes, 2))
        result = color_graph(g, 2)
        assert len(result.spilled) == 1
        assert_valid(g, result, 2)

    def test_chain_two_colors(self):
        nodes = [v(i) for i in range(10)]
        edges = [(nodes[i], nodes[i + 1]) for i in range(9)]
        result = color_graph(graph_from_edges(nodes, edges), 2)
        assert not result.spilled

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            color_graph(InterferenceGraph(), 0)


class TestWideVariables:
    def test_wide_gets_aligned_base(self):
        a, b = v(0, 2), v(1, 1)
        g = graph_from_edges([a, b], [(a, b)])
        result = color_graph(g, 4)
        assert not result.spilled
        assert result.coloring[a] % 2 == 0

    def test_quad_alignment(self):
        a, b = v(0, 4), v(1, 1)
        g = graph_from_edges([a, b], [(a, b)])
        result = color_graph(g, 8)
        assert result.coloring[a] % 4 == 0

    def test_interfering_wides_disjoint(self):
        a, b, c = v(0, 2), v(1, 2), v(2, 2)
        g = graph_from_edges([a, b, c], itertools.combinations([a, b, c], 2))
        result = color_graph(g, 6)
        assert not result.spilled
        assert_valid(g, result, 6)

    def test_wide_spills_when_fragmented(self):
        # Three singles pinned by mutual interference with a w2: in 3
        # slots a w2 plus two interfering singles cannot all fit.
        a = v(0, 2)
        b, c = v(1), v(2)
        g = graph_from_edges([a, b, c], [(a, b), (a, c), (b, c)])
        result = color_graph(g, 3)
        assert result.spilled
        assert_valid(g, result, 3)

    def test_alignment_disabled(self):
        a, b = v(0, 2), v(1, 1)
        g = graph_from_edges([a, b], [(a, b)])
        result = color_graph(g, 3, align_wide=False)
        assert not result.spilled
        assert_valid(g, result, 3, align=False)


class TestPrecolored:
    def test_precolored_kept(self):
        a, b = v(0), v(1)
        g = graph_from_edges([a, b], [(a, b)])
        result = color_graph(g, 4, precolored={a: 2})
        assert result.coloring[a] == 2
        assert result.coloring[b] != 2

    def test_precolored_blocks_neighbors(self):
        a, b, c = v(0), v(1), v(2)
        g = graph_from_edges([a, b, c], [(a, b), (a, c), (b, c)])
        result = color_graph(g, 3, precolored={a: 0, b: 1})
        assert result.coloring[c] == 2

    def test_precolored_out_of_range_rejected(self):
        g = graph_from_edges([v(0)], [])
        with pytest.raises(ValueError):
            color_graph(g, 2, precolored={v(0): 2})

    def test_precolored_misaligned_rejected(self):
        g = graph_from_edges([v(0, 2)], [])
        with pytest.raises(ValueError):
            color_graph(g, 4, precolored={v(0, 2): 1})


class TestMinimumRegisters:
    def test_triangle_needs_exactly_three(self):
        nodes = [v(0), v(1), v(2)]
        g = graph_from_edges(nodes, itertools.combinations(nodes, 2))
        assert minimum_registers(g) == 3

    def test_empty_graph_zero(self):
        assert minimum_registers(InterferenceGraph()) == 0

    def test_wide_clique_counts_slots(self):
        a, b = v(0, 2), v(1, 2)
        g = graph_from_edges([a, b], [(a, b)])
        assert minimum_registers(g) == 4


@given(
    n=st.integers(min_value=1, max_value=14),
    density=st.floats(min_value=0.0, max_value=1.0),
    colors=st.integers(min_value=2, max_value=12),
    seed=st.integers(min_value=0, max_value=10_000),
    wide=st.booleans(),
)
@settings(max_examples=80, deadline=None)
def test_random_graphs_always_valid(n, density, colors, seed, wide):
    """Property: any colouring returned is conflict-free, aligned, in range."""
    import random

    rng = random.Random(seed)
    nodes = [
        v(i, rng.choice([1, 1, 1, 2]) if wide else 1) for i in range(n)
    ]
    g = InterferenceGraph()
    for node in nodes:
        g.add_node(node)
    for a, b in itertools.combinations(nodes, 2):
        if rng.random() < density:
            g.add_edge(a, b)
    result = color_graph(g, colors)
    assert_valid(g, result, colors)
    # Everything is either coloured or spilled, never both.
    colored = set(result.coloring)
    spilled = set(result.spilled)
    assert colored | spilled == set(nodes)
    assert not (colored & spilled)
