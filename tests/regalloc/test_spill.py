"""Spill insertion and shared-memory promotion unit tests."""

import pytest

from repro.isa.instructions import MemSpace, Opcode
from repro.isa.registers import VirtualReg
from repro.regalloc.shared_assign import (
    access_frequencies,
    promote_spills_to_shared,
)
from repro.regalloc.spill import SpillState, insert_spill_code, spill_traffic
from repro.sim.interp import LaunchConfig, run_kernel
from tests.helpers import loop_kernel, module_from_asm


def v(i, w=1):
    return VirtualReg(i, w)


class TestSpillInsertion:
    def test_def_gets_store_use_gets_load(self):
        module = loop_kernel()
        fn = module.kernel()
        state = insert_spill_code(fn, [v(2)])  # the accumulator
        assert v(2) in state.offsets
        spaces = [
            (i.opcode, i.space)
            for i in fn.instructions()
            if i.is_memory and i.space is MemSpace.LOCAL
        ]
        assert (Opcode.ST, MemSpace.LOCAL) in spaces
        assert (Opcode.LD, MemSpace.LOCAL) in spaces
        # The spilled variable itself no longer appears anywhere.
        assert v(2) not in fn.all_regs()

    def test_semantics_preserved(self):
        module = loop_kernel()
        launch = LaunchConfig(block_size=4, params={0: 5})
        expected = run_kernel(module, launch)
        spilled = module.copy()
        insert_spill_code(spilled.kernel(), [v(2), v(3)])
        assert run_kernel(spilled, launch) == pytest.approx(expected)

    def test_wide_variable_offsets(self):
        state = SpillState()
        assert state.assign(v(0, 2)) == 0
        assert state.assign(v(1)) == 8
        assert state.frame_bytes == 12

    def test_spill_traffic_counts(self):
        module = loop_kernel()
        fn = module.kernel()
        before = spill_traffic(fn)
        insert_spill_code(fn, [v(2)])
        assert spill_traffic(fn) > before


class TestSharedPromotion:
    def _spilled_kernel(self):
        module = loop_kernel()
        fn = module.kernel()
        state = insert_spill_code(fn, [v(2), v(3)])
        return module, fn, state

    def test_loop_weighted_frequencies(self):
        module, fn, state = self._spilled_kernel()
        freq = access_frequencies(fn, state)
        # Both spilled values live in the loop: heavily weighted.
        assert all(f >= 10 for f in freq.values())

    def test_promotion_rewrites_to_shared(self):
        module, fn, state = self._spilled_kernel()
        promo = promote_spills_to_shared(fn, state, 64, block_size=4)
        assert promo.promoted
        assert promo.frame_bytes > 0
        assert promo.extra_shared_bytes == promo.frame_bytes * 4
        shared_ops = [
            i for i in fn.instructions()
            if i.is_memory and i.space is MemSpace.SHARED
        ]
        assert shared_ops
        # Every promoted access is based off the per-thread base register.
        for inst in shared_ops:
            assert promo.base_reg in inst.regs_read()

    def test_promotion_preserves_semantics(self):
        module, fn, state = self._spilled_kernel()
        launch = LaunchConfig(block_size=4, params={0: 6})
        expected = run_kernel(loop_kernel(), launch)
        promote_spills_to_shared(fn, state, 64, block_size=4)
        assert run_kernel(module, launch) == pytest.approx(expected)

    def test_budget_zero_is_noop(self):
        module, fn, state = self._spilled_kernel()
        before = str(fn)
        promo = promote_spills_to_shared(fn, state, 0, block_size=4)
        assert not promo.promoted
        assert str(fn) == before

    def test_budget_limits_promotion(self):
        module, fn, state = self._spilled_kernel()
        promo = promote_spills_to_shared(fn, state, 4, block_size=4)
        assert len(promo.promoted) == 1  # only one 4-byte slot fits

    def test_user_shared_offsets_respected(self):
        module, fn, state = self._spilled_kernel()
        promo = promote_spills_to_shared(
            fn, state, 64, block_size=4, user_shared_bytes=256
        )
        for inst in fn.instructions():
            if inst.is_memory and inst.space is MemSpace.SHARED:
                assert inst.offset >= 256
