"""Copy-coalescing tests."""

import pytest

from repro.ir.interference import build_interference
from repro.ir.ssa import construct_ssa, destruct_ssa
from repro.isa.instructions import Opcode
from repro.regalloc.coalesce import coalesce_moves
from repro.regalloc import allocate_module, minimal_budget
from repro.sim.interp import LaunchConfig, run_kernel
from tests.helpers import diamond_kernel, loop_kernel, module_from_asm


def _count_moves(fn):
    return sum(1 for i in fn.instructions() if i.opcode is Opcode.MOV)


class TestCoalesceMoves:
    def _prepared(self, make):
        fn = make().kernel()
        construct_ssa(fn)
        destruct_ssa(fn)
        return fn

    def test_phi_copies_coalesced(self):
        fn = self._prepared(loop_kernel)
        before = _count_moves(fn)
        graph = build_interference(fn)
        report = coalesce_moves(fn, graph, 16)
        assert report.merged_pairs > 0
        assert report.removed_moves > 0
        assert _count_moves(fn) < before

    def test_semantics_preserved(self):
        module = loop_kernel()
        launch = LaunchConfig(block_size=4, params={0: 6})
        expected = run_kernel(module, launch)
        fn = module.kernel()
        construct_ssa(fn)
        destruct_ssa(fn)
        coalesce_moves(fn, build_interference(fn), 16)
        module.validate()
        assert run_kernel(module, launch) == pytest.approx(expected)

    def test_interfering_pairs_not_merged(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                MOV %v1, %v0
                IADD %v2, %v0, %v1
                ST.global [%v2], %v1
                ST.global [%v2+4], %v0
                EXIT
            .end
            """
        )
        fn = module.kernel()
        graph = build_interference(fn)
        # %v0 stays live past the MOV's destination use: they interfere
        # through the later add?  Actually MOV-related and both live ->
        # the graph decides; the invariant is the merge set is clean.
        report = coalesce_moves(fn, graph, 8)
        rebuilt = build_interference(fn)
        for a in rebuilt.nodes:
            assert a not in report.replacements

    def test_self_moves_removed(self):
        fn = self._prepared(diamond_kernel)
        coalesce_moves(fn, build_interference(fn), 16)
        for inst in fn.instructions():
            if inst.opcode is Opcode.MOV and inst.srcs:
                assert inst.dst != inst.srcs[0]


class TestAllocatorIntegration:
    def test_allocation_with_coalescing_still_correct(self):
        module = loop_kernel()
        launch = LaunchConfig(block_size=8, params={0: 5})
        expected = run_kernel(module, launch)
        smallest = minimal_budget(module, "k")
        for budget in range(smallest, smallest + 4):
            outcome = allocate_module(module, "k", budget)
            assert run_kernel(outcome.module, launch) == pytest.approx(expected)

    def test_coalescing_reduces_emitted_moves(self):
        """End to end: the allocated loop kernel carries few copies."""
        module = loop_kernel()
        outcome = allocate_module(module, "k", 16)
        moves = _count_moves(outcome.module.functions["k"])
        # Loop kernel has 2 φ webs; naive lowering would emit 2 copies
        # per iteration edge plus initialisers.
        assert moves <= 4
