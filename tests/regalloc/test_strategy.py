"""Allocation-strategy tests: registry, occupancy dials, spill targets.

The strategy layer is the seam the whole PR hangs off: the registry
must resolve deterministically (``None`` = reference, *not* the
environment), the soft-limit occupancy arithmetic must oversubscribe
exactly by its factor, and the shared-spill allocator path must move
spill slots into the per-thread shared frame without changing kernel
semantics.
"""

import pytest

from repro.arch import CacheConfig, GTX680, TESLA_C2075
from repro.arch.occupancy import calculate_occupancy
from repro.regalloc.allocator import allocate_module, minimal_budget
from repro.regalloc.strategy import (
    DEFAULT_STRATEGY_ID,
    LOCAL_SPILL,
    MIXED_ID,
    SMEM_SPILL,
    SOFT_LIMIT,
    STRATEGIES,
    STRATEGY_ENV,
    AllocationStrategy,
    default_strategy_id,
    get_strategy,
    strategy_ids,
)
from repro.sim.interp import LaunchConfig, run_kernel
from tests.helpers import loop_kernel

LAUNCH = LaunchConfig(grid_blocks=1, block_size=8, params={0: 6})


class TestRegistry:
    def test_reference_is_registered_default(self):
        assert DEFAULT_STRATEGY_ID == "local-spill"
        assert set(STRATEGIES) == {"local-spill", "smem-spill", "soft-limit"}

    def test_instances_satisfy_the_protocol(self):
        for strategy in STRATEGIES.values():
            assert isinstance(strategy, AllocationStrategy)

    def test_none_resolves_to_reference_not_env(self, monkeypatch):
        monkeypatch.setenv(STRATEGY_ENV, "smem-spill")
        # Library internals stay pinned to the reference strategy; only
        # entry points (CompileOptions, CLI) consult the environment.
        assert get_strategy(None) is LOCAL_SPILL
        assert default_strategy_id() == "smem-spill"

    def test_env_default_validates(self, monkeypatch):
        monkeypatch.setenv(STRATEGY_ENV, "no-such-strategy")
        with pytest.raises(ValueError, match="unknown strategy"):
            default_strategy_id()
        monkeypatch.setenv(STRATEGY_ENV, "")
        assert default_strategy_id() == DEFAULT_STRATEGY_ID

    def test_get_strategy_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown allocation strategy"):
            get_strategy("register-banking")

    def test_instances_pass_through(self):
        assert get_strategy(SMEM_SPILL) is SMEM_SPILL

    def test_strategy_ids_expansion(self):
        assert strategy_ids("local-spill") == ("local-spill",)
        # Mixed enumerates every non-experimental strategy, reference first.
        assert strategy_ids(MIXED_ID) == ("local-spill", "smem-spill")
        assert SOFT_LIMIT.id not in strategy_ids(MIXED_ID)


class TestOccupancyDials:
    def test_reference_matches_equation_one(self):
        for regs in (21, 32, 48, 63):
            strat = calculate_occupancy(GTX680, 256, regs)
            assert LOCAL_SPILL.occupancy(GTX680, 256, regs) == strat

    def test_soft_limit_oversubscribes_registers(self):
        # 63 regs/thread caps a GTX680 SM well below 64 warps; a 1.5x
        # virtual register file admits more warps than the hardware
        # truth, never fewer.
        hard = calculate_occupancy(GTX680, 256, 63)
        soft = SOFT_LIMIT.occupancy(GTX680, 256, 63)
        assert soft.active_warps > hard.active_warps
        exact = calculate_occupancy(
            GTX680, 256, 63, reg_capacity_factor=1.5
        )
        assert soft == exact

    def test_swap_model_silent_without_oversubscription(self):
        for strat in (LOCAL_SPILL, SMEM_SPILL):
            assert strat.swap_model(GTX680, 256, 63, 0) == (0, 0)

    def test_swap_model_silent_when_registers_are_not_the_limiter(self):
        # At 21 regs/thread the scheduler caps warps before registers
        # do; oversubscription changes nothing, so no swap traffic.
        assert SOFT_LIMIT.swap_model(GTX680, 256, 21, 0) == (0, 0)

    def test_swap_model_interval_follows_overflow(self):
        soft = SOFT_LIMIT.occupancy(GTX680, 256, 63)
        hard = calculate_occupancy(GTX680, 256, 63)
        overflow = soft.active_warps - hard.active_warps
        interval, latency = SOFT_LIMIT.swap_model(GTX680, 256, 63, 0)
        assert interval == max(2, (4 * soft.active_warps) // overflow)
        assert latency == GTX680.l2_latency

    def test_max_regs_for_warps_honours_oversubscription(self):
        hard = LOCAL_SPILL.max_regs_for_warps(TESLA_C2075, 256, 48, 0)
        soft = SOFT_LIMIT.max_regs_for_warps(TESLA_C2075, 256, 48, 0)
        assert soft > hard


class TestSharedSpillAllocation:
    def _squeezed(self, strategy):
        module = loop_kernel()
        budget = minimal_budget(module, "k") - 1
        return module, allocate_module(
            module, "k", budget, block_size=8, strategy=strategy
        )

    def test_outcome_records_the_strategy(self):
        _, outcome = self._squeezed(None)
        assert outcome.strategy == "local-spill"
        assert outcome.smem_spill_slots == 0
        _, outcome = self._squeezed("smem-spill")
        assert outcome.strategy == "smem-spill"

    def test_spills_move_into_the_shared_frame(self):
        module = loop_kernel()
        budget = minimal_budget(module, "k") - 1
        local = allocate_module(module, "k", budget, block_size=8)
        shared = allocate_module(
            module, "k", budget, block_size=8, strategy="smem-spill"
        )
        assert local.spilled_variables > 0
        assert shared.smem_spill_slots > 0
        # Resource accounting follows the spill target: the per-thread
        # shared frame is carved out of the block's shared allowance.
        assert (
            shared.shared_bytes_per_block > local.shared_bytes_per_block
        )

    def test_shared_spills_preserve_semantics(self):
        module, outcome = self._squeezed("smem-spill")
        memory = {i * 4: float(i % 5 + 1) for i in range(64)}
        expected = run_kernel(module, LAUNCH, global_memory=memory)
        actual = run_kernel(outcome.module, LAUNCH, global_memory=memory)
        assert actual == pytest.approx(expected)

    def test_default_path_is_byte_identical_to_pre_strategy_code(self):
        # ``strategy=None`` and the explicit reference id must produce
        # the same allocation, instruction for instruction.
        module = loop_kernel()
        budget = minimal_budget(module, "k") - 1
        a = allocate_module(module, "k", budget, block_size=8)
        b = allocate_module(
            module, "k", budget, block_size=8, strategy="local-spill"
        )
        from repro.isa.encoding import encode_module

        assert encode_module(a.module) == encode_module(b.module)
        assert a.registers_per_thread == b.registers_per_thread
        assert a.local_bytes_per_thread == b.local_bytes_per_thread


class TestMetrics:
    def test_smem_spill_slots_counter_charged(self):
        from repro.obs.metrics import get_registry, reset_registry

        reset_registry()
        try:
            module = loop_kernel()
            budget = minimal_budget(module, "k") - 1
            allocate_module(
                module, "k", budget, block_size=8, strategy="smem-spill"
            )
            snapshot = get_registry().snapshot()
            families = {f["name"]: f for f in snapshot["metrics"]}
            family = families["orion_allocator_smem_spill_slots_total"]
            (sample,) = [
                s
                for s in family["samples"]
                if s["labels"].get("strategy") == "smem-spill"
            ]
            assert sample["value"] > 0
        finally:
            reset_registry()

    def test_reference_never_charges_the_counter(self):
        from repro.obs.metrics import get_registry, reset_registry

        reset_registry()
        try:
            module = loop_kernel()
            budget = minimal_budget(module, "k") - 1
            allocate_module(module, "k", budget, block_size=8)
            names = {
                f["name"] for f in get_registry().snapshot()["metrics"]
            }
            assert "orion_allocator_smem_spill_slots_total" not in names
        finally:
            reset_registry()
