"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main
from repro.isa.assembly import format_module
from repro.isa.encoding import decode_module
from tests.helpers import call_kernel, straight_line_kernel


@pytest.fixture()
def asm_file(tmp_path):
    path = tmp_path / "kernel.oras"
    path.write_text(format_module(straight_line_kernel()))
    return path


@pytest.fixture()
def call_asm_file(tmp_path):
    path = tmp_path / "calls.oras"
    path.write_text(format_module(call_kernel()))
    return path


class TestAsmDis:
    def test_round_trip(self, asm_file, tmp_path, capsys):
        binary = tmp_path / "kernel.bin"
        assert main(["asm", str(asm_file), "-o", str(binary)]) == 0
        assert binary.read_bytes()[:4] == b"ORAS"
        out = tmp_path / "back.oras"
        assert main(["dis", str(binary), "-o", str(out)]) == 0
        assert out.read_text() == asm_file.read_text()

    def test_dis_to_stdout(self, asm_file, tmp_path, capsys):
        binary = tmp_path / "kernel.bin"
        main(["asm", str(asm_file), "-o", str(binary)])
        capsys.readouterr()
        assert main(["dis", str(binary)]) == 0
        assert ".kernel k" in capsys.readouterr().out

    def test_bad_input_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.oras"
        bad.write_text("this is not assembly")
        binary = tmp_path / "out.bin"
        assert main(["asm", str(bad), "-o", str(binary)]) == 1
        assert "error:" in capsys.readouterr().err


class TestCompileInspect:
    def test_compile_writes_multiversion(self, call_asm_file, tmp_path, capsys):
        out = tmp_path / "fat.bin"
        code = main(
            ["compile", str(call_asm_file), "-o", str(out), "--arch", "gtx680"]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "direction=" in stdout
        assert out.exists()
        code = main(["inspect", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "occupancy" in stdout and "candidate" in stdout

    def test_compile_perf_flags(self, call_asm_file, tmp_path, capsys):
        plain = tmp_path / "plain.bin"
        fast = tmp_path / "fast.bin"
        code = main(
            ["compile", str(call_asm_file), "-o", str(plain), "--no-cache"]
        )
        assert code == 0
        capsys.readouterr()
        code = main(
            [
                "compile",
                str(call_asm_file),
                "-o",
                str(fast),
                "--jobs",
                "2",
                "--timings",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "Compilation phases" in stdout
        assert "compile cache:" in stdout
        # Cache, jobs, and timing report never change the output bytes.
        assert fast.read_bytes() == plain.read_bytes()

    def test_compile_accepts_binary_input(self, asm_file, tmp_path, capsys):
        binary = tmp_path / "kernel.bin"
        main(["asm", str(asm_file), "-o", str(binary)])
        out = tmp_path / "fat.bin"
        assert main(["compile", str(binary), "-o", str(out)]) == 0


class TestRun:
    def test_run_prints_memory(self, tmp_path, capsys):
        from repro.harness.reporting import format_table  # noqa: F401
        from tests.helpers import module_from_asm

        src = tmp_path / "store.oras"
        src.write_text(
            format_module(
                module_from_asm(
                    """
                    .module m
                    .kernel k shared=0
                    BB0:
                        S2R %v0, %tid
                        LD.param %v1, [0]
                        IADD %v2, %v0, %v1
                        SHL %v3, %v0, 2
                        ST.global [%v3], %v2
                        EXIT
                    .end
                    """
                )
            )
        )
        code = main(
            ["run", str(src), "--grid", "1", "--block-size", "4",
             "--param", "0=100"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 global words written" in out
        assert "100" in out


class TestSweep:
    def test_sweep_prints_series(self, asm_file, capsys):
        code = main(
            ["sweep", str(asm_file), "--arch", "c2075", "--grid", "16",
             "--block-size", "128", "--max-events", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "normalized runtime" in out

    def test_sweep_analytical_backend_with_trace(self, asm_file, tmp_path, capsys):
        import json

        trace = tmp_path / "sweep.jsonl"
        code = main(
            ["sweep", str(asm_file), "--arch", "c2075", "--grid", "16",
             "--backend", "analytical", "--trace", str(trace)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "analytical backend" in out
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(r["kind"] == "backend_invoke" for r in records)

    def test_unknown_backend_rejected(self, asm_file, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", str(asm_file), "--backend", "cuda"])


class TestBench:
    def test_bench_single_kernel_with_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "bench.jsonl"
        code = main(
            ["bench", "--only", "gaussian", "--arch", "c2075",
             "--jobs", "2", "--trace", str(trace)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Benchmark suite on Tesla C2075" in out
        assert "gaussian" in out
        assert "Engine telemetry" in out
        assert "measurement cache:" in out
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = {r["kind"] for r in records}
        assert {"engine_start", "session_start", "trial",
                "session_finalized", "engine_finish"} <= kinds
        assert all(
            r["session"] == "gaussian"
            for r in records
            if r["kind"] == "trial"
        )

    def test_bench_unknown_benchmark_errors(self, capsys):
        code = main(["bench", "--only", "nosuchkernel"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestCompileVerify:
    def test_verify_flag_gates_and_reports(self, call_asm_file, tmp_path, capsys):
        out = tmp_path / "fat.bin"
        code = main(
            ["compile", str(call_asm_file), "-o", str(out),
             "--verify", "--no-cache"]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "allocation-sound" in stdout
        assert out.exists()

    def test_verify_failure_is_a_cli_error(self, call_asm_file, tmp_path,
                                           capsys, monkeypatch):
        from repro.ir.verify import VerificationError, VerifyIssue
        import repro.compiler.pipeline as pipeline

        def reject(binary):
            raise VerificationError(
                [VerifyIssue("v1/k", "BB0", 0, "synthetic clobber")]
            )

        monkeypatch.setattr(pipeline, "verify_binary", reject)
        out = tmp_path / "fat.bin"
        code = main(
            ["compile", str(call_asm_file), "-o", str(out),
             "--verify", "--no-cache"]
        )
        assert code == 1
        assert "synthetic clobber" in capsys.readouterr().err


class TestFuzz:
    def test_small_clean_run(self, capsys):
        code = main(["fuzz", "--seed", "0", "--cases", "2", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fuzzed 2 case(s)" in out
        assert "0 failure(s)" in out

    def test_failures_set_exit_code_and_print_repro(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.fuzz import FuzzFailure, FuzzReport

        def fake_run_fuzz(**kwargs):
            return FuzzReport(
                cases=1, shape="mixed",
                failures=[FuzzFailure(3, "mixed", "verifier", "bad slot")],
                versions_checked=4,
            )

        monkeypatch.setattr("repro.fuzz.run_fuzz", fake_run_fuzz)
        code = main(["fuzz", "--seed", "3", "--cases", "1", "--quiet"])
        assert code == 1
        out = capsys.readouterr().out
        assert "repro fuzz --seed 3 --cases 1 --shape mixed" in out
