"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main
from repro.isa.assembly import format_module
from repro.isa.encoding import decode_module
from tests.helpers import call_kernel, straight_line_kernel


@pytest.fixture()
def asm_file(tmp_path):
    path = tmp_path / "kernel.oras"
    path.write_text(format_module(straight_line_kernel()))
    return path


@pytest.fixture()
def call_asm_file(tmp_path):
    path = tmp_path / "calls.oras"
    path.write_text(format_module(call_kernel()))
    return path


class TestAsmDis:
    def test_round_trip(self, asm_file, tmp_path, capsys):
        binary = tmp_path / "kernel.bin"
        assert main(["asm", str(asm_file), "-o", str(binary)]) == 0
        assert binary.read_bytes()[:4] == b"ORAS"
        out = tmp_path / "back.oras"
        assert main(["dis", str(binary), "-o", str(out)]) == 0
        assert out.read_text() == asm_file.read_text()

    def test_dis_to_stdout(self, asm_file, tmp_path, capsys):
        binary = tmp_path / "kernel.bin"
        main(["asm", str(asm_file), "-o", str(binary)])
        capsys.readouterr()
        assert main(["dis", str(binary)]) == 0
        assert ".kernel k" in capsys.readouterr().out

    def test_bad_input_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.oras"
        bad.write_text("this is not assembly")
        binary = tmp_path / "out.bin"
        assert main(["asm", str(bad), "-o", str(binary)]) == 1
        assert "error:" in capsys.readouterr().err


class TestCompileInspect:
    def test_compile_writes_multiversion(self, call_asm_file, tmp_path, capsys):
        out = tmp_path / "fat.bin"
        code = main(
            ["compile", str(call_asm_file), "-o", str(out), "--arch", "gtx680"]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "direction=" in stdout
        assert out.exists()
        code = main(["inspect", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "occupancy" in stdout and "candidate" in stdout

    def test_compile_perf_flags(self, call_asm_file, tmp_path, capsys):
        plain = tmp_path / "plain.bin"
        fast = tmp_path / "fast.bin"
        code = main(
            ["compile", str(call_asm_file), "-o", str(plain), "--no-cache"]
        )
        assert code == 0
        capsys.readouterr()
        code = main(
            [
                "compile",
                str(call_asm_file),
                "-o",
                str(fast),
                "--jobs",
                "2",
                "--timings",
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "Compilation phases" in stdout
        assert "compile cache:" in stdout
        # Cache, jobs, and timing report never change the output bytes.
        assert fast.read_bytes() == plain.read_bytes()

    def test_compile_accepts_binary_input(self, asm_file, tmp_path, capsys):
        binary = tmp_path / "kernel.bin"
        main(["asm", str(asm_file), "-o", str(binary)])
        out = tmp_path / "fat.bin"
        assert main(["compile", str(binary), "-o", str(out)]) == 0


class TestRun:
    def test_run_prints_memory(self, tmp_path, capsys):
        from repro.harness.reporting import format_table  # noqa: F401
        from tests.helpers import module_from_asm

        src = tmp_path / "store.oras"
        src.write_text(
            format_module(
                module_from_asm(
                    """
                    .module m
                    .kernel k shared=0
                    BB0:
                        S2R %v0, %tid
                        LD.param %v1, [0]
                        IADD %v2, %v0, %v1
                        SHL %v3, %v0, 2
                        ST.global [%v3], %v2
                        EXIT
                    .end
                    """
                )
            )
        )
        code = main(
            ["run", str(src), "--grid", "1", "--block-size", "4",
             "--param", "0=100"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 global words written" in out
        assert "100" in out


class TestSweep:
    def test_sweep_prints_series(self, asm_file, capsys):
        code = main(
            ["sweep", str(asm_file), "--arch", "c2075", "--grid", "16",
             "--block-size", "128", "--max-events", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "normalized runtime" in out

    def test_sweep_analytical_backend_with_trace(self, asm_file, tmp_path, capsys):
        import json

        trace = tmp_path / "sweep.jsonl"
        code = main(
            ["sweep", str(asm_file), "--arch", "c2075", "--grid", "16",
             "--backend", "analytical", "--trace", str(trace)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "analytical backend" in out
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(r["kind"] == "backend_invoke" for r in records)

    def test_unknown_backend_rejected(self, asm_file, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", str(asm_file), "--backend", "cuda"])


class TestBench:
    def test_bench_single_kernel_with_trace(self, tmp_path, capsys):
        import json

        trace = tmp_path / "bench.jsonl"
        code = main(
            ["bench", "--only", "gaussian", "--arch", "c2075",
             "--jobs", "2", "--trace", str(trace)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Benchmark suite on Tesla C2075" in out
        assert "gaussian" in out
        assert "Engine telemetry" in out
        assert "measurement cache:" in out
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = {r["kind"] for r in records}
        assert {"engine_start", "session_start", "trial",
                "session_finalized", "engine_finish"} <= kinds
        assert all(
            r["session"] == "gaussian"
            for r in records
            if r["kind"] == "trial"
        )

    def test_bench_unknown_benchmark_errors(self, capsys):
        code = main(["bench", "--only", "nosuchkernel"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestCompileVerify:
    def test_verify_flag_gates_and_reports(self, call_asm_file, tmp_path, capsys):
        out = tmp_path / "fat.bin"
        code = main(
            ["compile", str(call_asm_file), "-o", str(out),
             "--verify", "--no-cache"]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "allocation-sound" in stdout
        assert out.exists()

    def test_verify_failure_is_a_cli_error(self, call_asm_file, tmp_path,
                                           capsys, monkeypatch):
        from repro.ir.verify import VerificationError, VerifyIssue
        import repro.compiler.pipeline as pipeline

        def reject(binary):
            raise VerificationError(
                [VerifyIssue("v1/k", "BB0", 0, "synthetic clobber")]
            )

        monkeypatch.setattr(pipeline, "verify_binary", reject)
        out = tmp_path / "fat.bin"
        code = main(
            ["compile", str(call_asm_file), "-o", str(out),
             "--verify", "--no-cache"]
        )
        assert code == 1
        assert "synthetic clobber" in capsys.readouterr().err


class TestFuzz:
    def test_small_clean_run(self, capsys):
        code = main(["fuzz", "--seed", "0", "--cases", "2", "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fuzzed 2 case(s)" in out
        assert "0 failure(s)" in out

    def test_failures_set_exit_code_and_print_repro(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.fuzz import FuzzFailure, FuzzReport

        def fake_run_fuzz(**kwargs):
            return FuzzReport(
                cases=1, shape="mixed",
                failures=[FuzzFailure(3, "mixed", "verifier", "bad slot")],
                versions_checked=4,
            )

        monkeypatch.setattr("repro.fuzz.run_fuzz", fake_run_fuzz)
        code = main(["fuzz", "--seed", "3", "--cases", "1", "--quiet"])
        assert code == 1
        out = capsys.readouterr().out
        assert "repro fuzz --seed 3 --cases 1 --shape mixed" in out

    def test_trace_and_metrics_parity(self, tmp_path, capsys):
        import json

        trace = tmp_path / "fuzz.jsonl"
        code = main(
            ["fuzz", "--seed", "0", "--cases", "1", "--quiet",
             "--trace", str(trace), "--metrics"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"telemetry trace -> {trace}" in out
        assert "orion_fuzz_cases_total" in out
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = {r["kind"] for r in records}
        assert {"span_start", "span_end", "fuzz_case"} <= kinds
        case_spans = [
            r for r in records
            if r["kind"] == "span_start" and r["data"]["name"] == "fuzz_case"
        ]
        assert case_spans and case_spans[0]["data"]["seed"] == 0

    def test_failures_point_at_the_trace(self, tmp_path, capsys, monkeypatch):
        import repro.fuzz.oracle as oracle

        def broken(seed, shape, arch, trace=None, store=None,
                   strategy="local-spill"):
            return [oracle.FuzzFailure(seed, shape, "crash", "kaboom",
                                       trace=trace)], 0

        monkeypatch.setattr(oracle, "check_case", broken)
        trace = tmp_path / "fail.jsonl"
        code = main(
            ["fuzz", "--seed", "7", "--cases", "1", "--quiet",
             "--trace", str(trace)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert f"# trace: {trace}" in out


class TestBenchReport:
    def test_report_is_written_and_valid(self, tmp_path, capsys):
        from repro.obs.report import load_report, validate_bench_report

        report = tmp_path / "bench.json"
        code = main(
            ["bench", "--only", "gaussian", "--arch", "c2075",
             "--report", str(report)]
        )
        assert code == 0
        assert f"bench report -> {report}" in capsys.readouterr().out
        loaded = load_report(report)
        assert validate_bench_report(loaded) == []
        assert loaded["backend"] == "timing"
        assert loaded["kernels"][0]["name"] == "gaussian"
        assert "compile" in loaded["cache"]
        assert loaded["telemetry"]["event_counts"]["session_finalized"] == 1

    def test_outside_a_git_checkout_warns_and_records_null_sha(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.obs.report import load_report, validate_bench_report

        monkeypatch.chdir(tmp_path)  # no .git anywhere up to /tmp
        report = tmp_path / "bench.json"
        code = main(
            ["bench", "--only", "gaussian", "--arch", "c2075",
             "--report", str(report)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "not inside a git checkout" in captured.err
        assert "git_sha=null" in captured.err
        loaded = load_report(report)
        assert loaded["git_sha"] is None
        assert validate_bench_report(loaded) == []

    def test_inside_a_git_checkout_does_not_warn(self, tmp_path, capsys):
        report = tmp_path / "bench.json"
        code = main(
            ["bench", "--only", "gaussian", "--arch", "c2075",
             "--report", str(report)]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "not inside a git checkout" not in captured.err
        from repro.obs.report import load_report

        assert load_report(report)["git_sha"]


class TestTraceTools:
    @pytest.fixture()
    def bench_trace(self, tmp_path, capsys):
        trace = tmp_path / "bench.jsonl"
        assert main(
            ["bench", "--only", "gaussian", "--arch", "c2075",
             "--trace", str(trace)]
        ) == 0
        capsys.readouterr()
        return trace

    def test_summary(self, bench_trace, capsys):
        assert main(["trace", "summary", str(bench_trace)]) == 0
        out = capsys.readouterr().out
        assert "Events by kind" in out
        assert "Spans" in out
        assert "hit rate" in out

    def test_filter_writes_jsonl(self, bench_trace, tmp_path, capsys):
        import json

        out_file = tmp_path / "filtered.jsonl"
        code = main(
            ["trace", "filter", str(bench_trace), "--session", "gaussian",
             "--kind", "converged", "-o", str(out_file)]
        )
        assert code == 0
        records = [
            json.loads(line) for line in out_file.read_text().splitlines()
        ]
        assert records
        assert all(r["kind"] == "converged" for r in records)

    def test_diff_identical_and_divergent(self, bench_trace, tmp_path, capsys):
        assert main(
            ["trace", "diff", str(bench_trace), str(bench_trace)]
        ) == 0
        assert "identical" in capsys.readouterr().out
        truncated = tmp_path / "short.jsonl"
        lines = bench_trace.read_text().splitlines()
        truncated.write_text("\n".join(lines[:-1]) + "\n")
        assert main(
            ["trace", "diff", str(bench_trace), str(truncated)]
        ) == 1
        assert "lengths differ" in capsys.readouterr().out

    def test_export_chrome(self, bench_trace, tmp_path, capsys):
        import json

        out_file = tmp_path / "chrome.json"
        code = main(
            ["trace", "export", str(bench_trace), "--format", "chrome",
             "-o", str(out_file)]
        )
        assert code == 0
        document = json.loads(out_file.read_text())
        assert document["traceEvents"]
        begins = [e for e in document["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in document["traceEvents"] if e["ph"] == "E"]
        assert len(begins) == len(ends) > 0


class TestTraceMerge:
    @staticmethod
    def _write_node(path, name, seq0, trace=None, parent_span=None):
        import json

        data = {"name": name, "span": 1, "parent": None, "type": "tune"}
        if trace:
            data["trace"] = trace
        if parent_span is not None:
            data["parent_span"] = parent_span
        lines = [
            {"seq": seq0, "kind": "span_start", "session": None,
             "data": dict(data)},
            {"seq": seq0 + 1, "kind": "span_end", "session": None,
             "data": {**data, "status": "ok"}},
        ]
        path.write_text(
            "".join(json.dumps(line) + "\n" for line in lines)
        )
        return path

    @pytest.fixture()
    def node_traces(self, tmp_path):
        tid = "ab" * 8
        client = self._write_node(
            tmp_path / "client.jsonl", "client_request", 5, trace=tid
        )
        daemon = self._write_node(
            tmp_path / "daemon.jsonl", "daemon_request", 1, trace=tid,
            parent_span=1,
        )
        return client, daemon

    def test_merge_writes_one_chrome_timeline(
        self, node_traces, tmp_path, capsys
    ):
        import json

        client, daemon = node_traces
        out_file = tmp_path / "merged.json"
        code = main(
            ["trace", "merge", str(client), str(daemon),
             "--format", "chrome", "-o", str(out_file)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "2 node(s)" in stdout and "1 cross-node" in stdout
        document = json.loads(out_file.read_text())
        processes = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert processes == {"client", "daemon"}

    def test_merge_jsonl_annotates_node_and_ts(
        self, node_traces, capsys
    ):
        import json

        client, daemon = node_traces
        assert main(
            ["trace", "merge", str(client), str(daemon),
             "--format", "jsonl"]
        ) == 0
        stdout = capsys.readouterr().out
        events = [
            json.loads(line)
            for line in stdout.splitlines()
            if line.startswith("{")
        ]
        assert {e["node"] for e in events} == {"client", "daemon"}
        assert all("ts" in e for e in events)

    def test_merge_accepts_label_specs(self, node_traces, capsys):
        client, daemon = node_traces
        assert main(
            ["trace", "merge", f"a={client}", f"b={daemon}",
             "--format", "jsonl"]
        ) == 0
        assert '"node": "a"' in capsys.readouterr().out

    def test_merge_rejects_duplicate_labels(self, node_traces, capsys):
        client, _ = node_traces
        assert main(["trace", "merge", f"x={client}", f"x={client}"]) == 1
        assert "duplicate node label" in capsys.readouterr().err

    def test_merge_needs_at_least_one_trace(self, capsys):
        assert main(["trace", "merge"]) == 1
        assert "no traces to merge" in capsys.readouterr().err

    def test_slow_ranks_merged_requests(self, node_traces, capsys):
        client, daemon = node_traces
        assert main(["trace", "slow", str(client), str(daemon)]) == 0
        out = capsys.readouterr().out
        assert "ab" * 8 in out
        assert "client,daemon" in out
        assert "tune" in out

    def test_slow_with_no_traced_requests(self, tmp_path, capsys):
        plain = self._write_node(
            tmp_path / "plain.jsonl", "session", 1
        )
        assert main(["trace", "slow", str(plain)]) == 0
        assert "no traced requests" in capsys.readouterr().out


class TestMetricsCommand:
    def test_renders_a_report_snapshot(self, tmp_path, capsys):
        report = tmp_path / "bench.json"
        assert main(
            ["bench", "--only", "gaussian", "--arch", "c2075",
             "--report", str(report)]
        ) == 0
        capsys.readouterr()
        assert main(["metrics", str(report)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE orion_cache_lookups_total counter" in out
        assert 'orion_cache_lookups_total{cache="measure"' in out

    def test_invalid_report_is_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert main(["metrics", str(bad)]) == 1
        assert "invalid report" in capsys.readouterr().err

    def test_needs_exactly_one_source(self, tmp_path, capsys):
        assert main(["metrics"]) == 1
        assert "exactly one source" in capsys.readouterr().err
        assert main(["metrics", str(tmp_path / "r.json"),
                     "--url", "127.0.0.1:1"]) == 1
        assert "exactly one source" in capsys.readouterr().err


class TestStrategyFlag:
    @pytest.fixture(autouse=True)
    def _reference_default(self, monkeypatch):
        # These tests pin the *no-environment* default; the CI strategy
        # matrix exports ORION_STRATEGY, which must not leak in here.
        monkeypatch.delenv("ORION_STRATEGY", raising=False)

    def test_compile_strategy_changes_output(self, call_asm_file, tmp_path, capsys):
        default = tmp_path / "default.bin"
        smem = tmp_path / "smem.bin"
        assert main(["compile", str(call_asm_file), "-o", str(default)]) == 0
        assert main(
            ["compile", str(call_asm_file), "-o", str(smem),
             "--strategy", "smem-spill"]
        ) == 0
        assert default.read_bytes() != smem.read_bytes()
        capsys.readouterr()
        assert main(["inspect", str(smem)]) == 0
        assert "smem-spill" in capsys.readouterr().out

    def test_explicit_local_spill_is_the_default(self, call_asm_file, tmp_path):
        default = tmp_path / "default.bin"
        explicit = tmp_path / "explicit.bin"
        main(["compile", str(call_asm_file), "-o", str(default)])
        main(["compile", str(call_asm_file), "-o", str(explicit),
              "--strategy", "local-spill"])
        assert default.read_bytes() == explicit.read_bytes()

    def test_inspect_hides_strategy_column_for_default(
        self, call_asm_file, tmp_path, capsys
    ):
        out = tmp_path / "fat.bin"
        main(["compile", str(call_asm_file), "-o", str(out)])
        capsys.readouterr()
        main(["inspect", str(out)])
        assert "strategy" not in capsys.readouterr().out

    def test_env_default_drives_compile(
        self, call_asm_file, tmp_path, monkeypatch
    ):
        flagged = tmp_path / "flag.bin"
        main(["compile", str(call_asm_file), "-o", str(flagged),
              "--strategy", "smem-spill"])
        via_env = tmp_path / "env.bin"
        monkeypatch.setenv("ORION_STRATEGY", "smem-spill")
        main(["compile", str(call_asm_file), "-o", str(via_env)])
        assert via_env.read_bytes() == flagged.read_bytes()

    def test_sweep_strategy_tagged(self, asm_file, capsys):
        code = main(
            ["sweep", str(asm_file), "--arch", "c2075", "--grid", "16",
             "--block-size", "128", "--max-events", "300",
             "--strategy", "smem-spill"]
        )
        assert code == 0
        assert "smem-spill" in capsys.readouterr().out

    def test_unknown_strategy_rejected(self, call_asm_file, tmp_path):
        with pytest.raises(SystemExit):
            main(["compile", str(call_asm_file), "-o",
                  str(tmp_path / "x.bin"), "--strategy", "zorua"])
