"""Harness structure tests (fast paths; full regeneration in benchmarks/)."""

import pytest

from repro.arch import TESLA_C2075
from repro.harness import (
    SweepResult,
    clear_caches,
    occupancy_sweep,
    render_figure11,
    render_figure12,
    render_table2,
    table2,
)
from repro.harness.experiments import (
    Fig11Row,
    Fig12Row,
    SweepPoint,
    _SWEEP_CACHE,
)


@pytest.fixture(scope="module")
def gaussian_sweep():
    clear_caches()
    return occupancy_sweep("gaussian", TESLA_C2075)


class TestOccupancySweep:
    def test_covers_all_levels(self, gaussian_sweep):
        assert [p.warps for p in gaussian_sweep.points] == [8, 16, 24, 32, 40, 48]

    def test_normalization_best(self, gaussian_sweep):
        pairs = gaussian_sweep.normalized(to="best")
        assert min(r for _, r in pairs) == pytest.approx(1.0)

    def test_normalization_max(self, gaussian_sweep):
        pairs = gaussian_sweep.normalized(to="max")
        assert pairs[-1][1] == pytest.approx(1.0)

    def test_bad_normalization_rejected(self, gaussian_sweep):
        with pytest.raises(ValueError):
            gaussian_sweep.normalized(to="median")

    def test_render(self, gaussian_sweep):
        text = gaussian_sweep.render()
        assert "gaussian" in text and "occupancy" in text

    def test_sweep_cached(self, gaussian_sweep):
        assert (
            "gaussian", TESLA_C2075.name, "small_cache", "local-spill"
        ) in _SWEEP_CACHE
        again = occupancy_sweep("gaussian", TESLA_C2075)
        assert again is gaussian_sweep


class TestRenderers:
    def test_render_figure11(self):
        rows = [
            Fig11Row(
                benchmark="x", orion_min=0.5, nvcc=1.0, orion_max=1.4,
                orion_select=1.3, selected_label="v", iterations_to_converge=3,
            )
        ]
        text = render_figure11(rows, "TestArch")
        assert "TestArch" in text
        assert "+30.00%" in text

    def test_render_figure12(self):
        rows = [
            Fig12Row(
                benchmark="x", normalized_registers=0.8,
                normalized_runtime=1.0, selected_label="v",
            )
        ]
        text = render_figure12(rows, "TestArch")
        assert "20.00%" in text


class TestTable2:
    def test_table2_matches_paper(self):
        rows = table2()
        assert len(rows) == 12
        for row in rows:
            assert row.measured_regs == row.paper_regs, row.benchmark
            assert row.measured_calls == row.paper_calls, row.benchmark
            assert row.measured_smem == row.paper_smem, row.benchmark
        text = render_table2(rows)
        assert "cfd" in text and "streamcluster" in text
