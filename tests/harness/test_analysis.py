"""Occupancy-headroom analysis tests."""

import pytest

from repro.arch import GTX680, TESLA_C2075
from repro.compiler.realize import KernelVersion
from repro.harness.analysis import HeadroomReport, occupancy_headroom
from repro.harness.experiments import SweepPoint, SweepResult
from repro.regalloc.allocator import AllocationOutcome
from repro.ir.function import Function, Module
from repro.isa.instructions import Instruction, Opcode


def _version(regs, smem=0):
    module = Module("m")
    fn = Function("k", is_kernel=True)
    fn.add_block("BB0").append(Instruction(Opcode.EXIT))
    module.add(fn)
    outcome = AllocationOutcome(
        module=module, kernel_name="k", registers_per_thread=regs,
        shared_bytes_per_block=smem, local_bytes_per_thread=0,
        spilled_variables=0, stack_moves=0,
    )
    return KernelVersion(
        label=f"r{regs}", target_warps=0, achieved_warps=0, occupancy=0.0,
        regs_per_thread=regs, smem_per_block=smem, smem_padding=0,
        outcome=outcome,
    )


def make_sweep(cycles_by_warps, regs=20):
    points = [
        SweepPoint(
            warps=w, occupancy=w / 48, cycles=c, version=_version(regs)
        )
        for w, c in sorted(cycles_by_warps.items())
    ]
    return SweepResult(benchmark="synthetic", arch_name="Tesla C2075", points=points)


class TestHeadroom:
    def test_flat_curve_has_big_headroom(self):
        sweep = make_sweep({8: 100, 16: 100, 24: 100, 32: 100, 40: 100, 48: 100})
        report = occupancy_headroom(sweep, TESLA_C2075, 256)
        assert report.lowest_equivalent_warps == 8
        assert len(report.plateau) == 6
        # At 8 warps a thread may use up to 63 registers.
        assert report.registers_available == 63
        assert report.has_headroom

    def test_bell_curve_has_narrow_plateau(self):
        sweep = make_sweep({8: 300, 16: 200, 24: 100, 32: 104, 40: 180, 48: 250})
        report = occupancy_headroom(sweep, TESLA_C2075, 256, tolerance=0.05)
        assert report.best_warps == 24
        assert report.lowest_equivalent_warps == 24
        assert {round(o * 48) for o, _ in report.plateau} == {24, 32}

    def test_extra_registers_computed_against_usage(self):
        sweep = make_sweep({24: 100, 48: 101}, regs=20)
        report = occupancy_headroom(sweep, TESLA_C2075, 256)
        # At 24 warps: 32768/(24*32) = 42 -> rounding -> >= 40 regs.
        assert report.registers_available >= 40
        assert report.extra_registers == report.registers_available - 20

    def test_empty_sweep_rejected(self):
        sweep = SweepResult(benchmark="x", arch_name="y", points=[])
        with pytest.raises(ValueError):
            occupancy_headroom(sweep, GTX680, 256)

    def test_tolerance_widens_plateau(self):
        sweep = make_sweep({8: 120, 24: 100, 48: 110})
        narrow = occupancy_headroom(sweep, TESLA_C2075, 256, tolerance=0.05)
        wide = occupancy_headroom(sweep, TESLA_C2075, 256, tolerance=0.25)
        assert len(wide.plateau) > len(narrow.plateau)
        assert wide.lowest_equivalent_warps <= narrow.lowest_equivalent_warps


class TestOnRealBenchmark:
    def test_gaussian_headroom_on_c2075(self):
        """The paper's srad/gaussian story: halve occupancy for free."""
        from repro.harness import occupancy_sweep

        sweep = occupancy_sweep("gaussian", TESLA_C2075)
        report = occupancy_headroom(sweep, TESLA_C2075, 256, tolerance=0.05)
        assert report.lowest_equivalent_warps <= 24  # at least half
        assert report.has_headroom
