"""ASCII table/series rendering tests."""

from repro.harness.reporting import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(
            ["name", "value"],
            [("a", 1.0), ("longer", 2.5)],
        )
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "1.0000" in out and "2.5000" in out

    def test_title_underlined(self):
        out = format_table(["x"], [(1,)], title="My Table")
        lines = out.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_none_renders_dash(self):
        out = format_table(["a", "b"], [("x", None)])
        assert out.splitlines()[-1].split()[-1] == "-"

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatSeries:
    def test_series_rows(self):
        out = format_series([0.5, 1.0], [1.0, 2.0], "occ", "runtime")
        lines = out.splitlines()
        assert len(lines) == 4
        assert "#" in lines[-1]

    def test_bars_scale_with_value(self):
        out = format_series([0.1, 0.2], [1.0, 3.0], "x", "y")
        lines = out.splitlines()
        assert lines[-1].count("#") > lines[-2].count("#")

    def test_empty_series(self):
        out = format_series([], [], "x", "y")
        assert "x" in out
