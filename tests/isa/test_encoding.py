"""Binary codec tests, including a hypothesis-generated program round-trip."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.function import Function, Module
from repro.isa.assembly import format_module
from repro.isa.encoding import CodecError, decode_module, encode_module
from repro.isa.instructions import (
    CmpOp,
    Imm,
    Instruction,
    MemSpace,
    Opcode,
)
from repro.isa.registers import PhysReg, SpecialReg, VirtualReg

from tests.helpers import (
    call_kernel,
    diamond_kernel,
    loop_kernel,
    straight_line_kernel,
    wide_kernel,
)


@pytest.mark.parametrize(
    "make",
    [straight_line_kernel, diamond_kernel, loop_kernel, call_kernel, wide_kernel],
)
def test_binary_round_trip_fixtures(make):
    module = make()
    data = encode_module(module)
    again = decode_module(data)
    assert format_module(again) == format_module(module)


def test_bad_magic_rejected():
    with pytest.raises(CodecError):
        decode_module(b"NOPE" + b"\x00" * 16)


def test_truncated_rejected():
    data = encode_module(straight_line_kernel())
    with pytest.raises(CodecError):
        decode_module(data[: len(data) // 2])


def test_trailing_bytes_rejected():
    data = encode_module(straight_line_kernel())
    with pytest.raises(CodecError):
        decode_module(data + b"\x00")


def test_forward_call_reference():
    """A function may call one defined later in the module."""
    module = Module("fwd")
    caller = Function("caller", is_kernel=True)
    bb = caller.add_block("BB0")
    bb.append(Instruction(Opcode.CALL, dst=VirtualReg(1), srcs=[Imm(1)], callee="late"))
    bb.append(Instruction(Opcode.EXIT))
    module.add(caller)
    late = Function("late", is_kernel=False, num_args=1, returns_value=True)
    bb = late.add_block("BB0")
    bb.append(Instruction(Opcode.RET, srcs=[VirtualReg(0)]))
    module.add(late)

    again = decode_module(encode_module(module))
    assert format_module(again) == format_module(module)


# ----------------------------------------------------------------------
# Property-based round trip over arbitrary straight-line programs
# ----------------------------------------------------------------------
_regs = st.builds(
    VirtualReg,
    index=st.integers(min_value=0, max_value=200),
    width=st.sampled_from([1, 2, 3, 4]),
)
_phys = st.builds(
    PhysReg,
    index=st.integers(min_value=0, max_value=60),
    width=st.sampled_from([1, 2]),
)
_operands = st.one_of(
    _regs,
    _phys,
    st.sampled_from(list(SpecialReg)),
    st.builds(Imm, st.integers(min_value=-(2**31), max_value=2**31 - 1)),
    st.builds(Imm, st.floats(allow_nan=False, allow_infinity=False, width=32)),
)


@st.composite
def _alu_instruction(draw):
    opcode = draw(
        st.sampled_from(
            [Opcode.IADD, Opcode.FMUL, Opcode.XOR, Opcode.IMAD, Opcode.MOV]
        )
    )
    nsrc = {Opcode.IMAD: 3, Opcode.MOV: 1}.get(opcode, 2)
    return Instruction(
        opcode,
        dst=draw(_regs),
        srcs=[draw(_operands) for _ in range(nsrc)],
    )


@st.composite
def _mem_instruction(draw):
    space = draw(st.sampled_from(list(MemSpace)))
    offset = draw(st.integers(min_value=-(2**20), max_value=2**20))
    if draw(st.booleans()):
        return Instruction(
            Opcode.LD, dst=draw(_regs), srcs=[draw(_regs)], space=space, offset=offset
        )
    return Instruction(
        Opcode.ST, srcs=[draw(_operands), draw(_regs)], space=space, offset=offset
    )


@st.composite
def _set_instruction(draw):
    return Instruction(
        draw(st.sampled_from([Opcode.ISET, Opcode.FSET])),
        dst=draw(_regs),
        srcs=[draw(_operands), draw(_operands)],
        cmp=draw(st.sampled_from(list(CmpOp))),
    )


_any_instruction = st.one_of(_alu_instruction(), _mem_instruction(), _set_instruction())


@given(body=st.lists(_any_instruction, min_size=0, max_size=40))
@settings(max_examples=60, deadline=None)
def test_binary_round_trip_random_programs(body):
    module = Module("fuzz")
    fn = Function("k", is_kernel=True)
    bb = fn.add_block("BB0")
    for inst in body:
        bb.append(inst)
    bb.append(Instruction(Opcode.EXIT))
    module.add(fn)

    again = decode_module(encode_module(module))
    assert format_module(again) == format_module(module)
