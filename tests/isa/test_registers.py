"""Register model tests (widths, alignment, validation)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.registers import (
    PhysReg,
    SpecialReg,
    VirtualReg,
    is_aligned,
    required_alignment,
)


class TestConstruction:
    def test_default_width(self):
        assert VirtualReg(3).width == 1
        assert PhysReg(3).width == 1

    @pytest.mark.parametrize("width", [0, 5, -1])
    def test_bad_width_rejected(self, width):
        with pytest.raises(ValueError):
            VirtualReg(0, width)
        with pytest.raises(ValueError):
            PhysReg(0, width)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            VirtualReg(-1)
        with pytest.raises(ValueError):
            PhysReg(-1)

    def test_str_forms(self):
        assert str(VirtualReg(7)) == "%v7"
        assert str(VirtualReg(7, 2)) == "%v7.w2"
        assert str(PhysReg(4, 4)) == "R4.w4"

    def test_slots_range(self):
        assert list(PhysReg(4, 2).slots) == [4, 5]

    def test_hashable_and_ordered(self):
        regs = {VirtualReg(1), VirtualReg(1), VirtualReg(2)}
        assert len(regs) == 2
        assert sorted([VirtualReg(2), VirtualReg(1)])[0] == VirtualReg(1)

    def test_virtual_and_physical_distinct(self):
        assert VirtualReg(1) != PhysReg(1)


class TestAlignment:
    @pytest.mark.parametrize(
        "width,alignment", [(1, 1), (2, 2), (3, 4), (4, 4)]
    )
    def test_required_alignment(self, width, alignment):
        assert required_alignment(width) == alignment

    def test_is_aligned(self):
        assert is_aligned(0, 4)
        assert is_aligned(4, 4)
        assert not is_aligned(2, 4)
        assert is_aligned(2, 2)
        assert not is_aligned(3, 2)
        assert is_aligned(17, 1)

    @given(
        index=st.integers(min_value=0, max_value=1000),
        width=st.sampled_from([1, 2, 3, 4]),
    )
    def test_aligned_index_is_multiple(self, index, width):
        if is_aligned(index, width):
            assert index % required_alignment(width) == 0


class TestSpecialRegs:
    def test_all_have_distinct_names(self):
        names = [s.value for s in SpecialReg]
        assert len(names) == len(set(names))
        assert "tid" in names and "ctaid" in names
