"""Assembly text round-trip and parser error tests."""

import pytest

from repro.isa.assembly import (
    AsmError,
    format_instruction,
    format_module,
    parse_instruction,
    parse_module,
)
from repro.isa.instructions import CmpOp, Imm, MemSpace, Opcode
from repro.isa.registers import PhysReg, SpecialReg, VirtualReg

from tests.helpers import (
    call_kernel,
    diamond_kernel,
    loop_kernel,
    straight_line_kernel,
    wide_kernel,
)


ALL_FIXTURES = [
    straight_line_kernel,
    diamond_kernel,
    loop_kernel,
    call_kernel,
    wide_kernel,
]


@pytest.mark.parametrize("make", ALL_FIXTURES)
def test_text_round_trip(make):
    module = make()
    text = format_module(module)
    again = parse_module(text)
    assert format_module(again) == text


class TestInstructionParsing:
    def test_s2r(self):
        inst = parse_instruction("S2R %v0, %tid")
        assert inst.opcode is Opcode.S2R
        assert inst.special is SpecialReg.TID
        assert inst.dst == VirtualReg(0)

    def test_iset_with_cmp(self):
        inst = parse_instruction("ISET.ge %v3, %v1, 100")
        assert inst.cmp is CmpOp.GE
        assert inst.srcs[1] == Imm(100)

    def test_load_with_negative_offset(self):
        inst = parse_instruction("LD.global %v1, [%v0-8]")
        assert inst.space is MemSpace.GLOBAL
        assert inst.offset == -8

    def test_load_absolute_address(self):
        inst = parse_instruction("LD.param %v1, [16]")
        assert inst.srcs == []
        assert inst.offset == 16

    def test_store_operand_order(self):
        inst = parse_instruction("ST.shared [%v2+4], %v9")
        assert inst.srcs[0] == VirtualReg(9)
        assert inst.srcs[1] == VirtualReg(2)
        assert inst.offset == 4

    def test_call_with_result(self):
        inst = parse_instruction("CALL %v5, helper(%v1, 3.5)")
        assert inst.callee == "helper"
        assert inst.dst == VirtualReg(5)
        assert inst.srcs == [VirtualReg(1), Imm(3.5)]

    def test_call_without_result(self):
        inst = parse_instruction("CALL log_it(%v1)")
        assert inst.dst is None

    def test_phys_reg_and_width(self):
        inst = parse_instruction("FADD R4.w2, R0.w2, R2.w2")
        assert inst.dst == PhysReg(4, 2)

    def test_phi(self):
        inst = parse_instruction("PHI %v5, [BB0: %v1], [BB1: 0]")
        assert inst.opcode is Opcode.PHI
        assert inst.phi_args == [("BB0", VirtualReg(1)), ("BB1", Imm(0))]

    def test_round_trip_each_shape(self):
        lines = [
            "S2R %v0, %ctaid",
            "MOV %v1, 42",
            "MOV %v2, -1.5",
            "IMAD %v3, %v1, %v2, %v0",
            "ISET.ne %v4, %v3, 0",
            "LD.local %v5, [%v3+12]",
            "ST.global [%v3], %v5",
            "CBR %v4, A, B",
            "BRA A",
            "CALL %v6, f(%v5)",
            "RET %v6",
            "RET",
            "EXIT",
            "BAR",
            "NOP",
            "SELP %v7, %v4, %v5, %v6",
        ]
        for line in lines:
            inst = parse_instruction(line)
            assert format_instruction(inst) == line

    def test_comment_stripped(self):
        inst = parse_instruction("MOV %v1, 3  # three")
        assert inst.srcs == [Imm(3)]

    @pytest.mark.parametrize(
        "bad",
        [
            "FROB %v1, %v2",
            "LD.global %v1, %v2",
            "S2R %v0, %nope",
            "CALL %v1, noparens",
            "MOV 5, %v1",
        ],
    )
    def test_bad_lines_raise(self, bad):
        with pytest.raises(AsmError):
            parse_instruction(bad)


class TestModuleParsing:
    def test_unknown_block_fails_validation(self):
        text = """
        .module m
        .kernel k shared=0
        BB0:
            BRA NOWHERE
        .end
        """
        module = parse_module(text)
        with pytest.raises(ValueError):
            module.validate()

    def test_kernel_with_ret_fails_validation(self):
        text = """
        .module m
        .kernel k shared=0
        BB0:
            RET
        .end
        """
        with pytest.raises(ValueError):
            parse_module(text).validate()

    def test_instruction_outside_block_raises(self):
        with pytest.raises(AsmError):
            parse_module(".module m\n.kernel k shared=0\nMOV %v0, 1\n.end")

    def test_shared_attr_parsed(self):
        module = call_kernel()
        assert module.functions["k"].is_kernel
        assert module.functions["scale"].num_args == 1
        assert module.functions["scale"].returns_value

    def test_fresh_vregs_do_not_collide(self):
        module = straight_line_kernel()
        fn = module.kernel()
        fresh = fn.new_vreg()
        assert fresh not in fn.all_regs()
