"""Occupancy calculator tests against hand-computed NVIDIA-calculator values."""

import pytest
from hypothesis import given, strategies as st

from repro.arch import (
    GTX680,
    TESLA_C2075,
    CacheConfig,
    calculate_occupancy,
    ceil_to,
    floor_to,
    max_regs_per_thread_for_warps,
    min_smem_padding_to_cap_warps,
    occupancy_levels,
)


class TestRounding:
    def test_ceil_to(self):
        assert ceil_to(0, 64) == 0
        assert ceil_to(1, 64) == 64
        assert ceil_to(64, 64) == 64
        assert ceil_to(65, 64) == 128

    def test_floor_to(self):
        assert floor_to(63, 64) == 0
        assert floor_to(64, 64) == 64
        assert floor_to(130, 64) == 128

    def test_bad_granularity(self):
        with pytest.raises(ValueError):
            ceil_to(5, 0)
        with pytest.raises(ValueError):
            floor_to(5, -1)


class TestKnownConfigs:
    """Values checked by hand against the CUDA occupancy calculator rules."""

    def test_gtx680_low_pressure_hits_scheduler_limit(self):
        result = calculate_occupancy(GTX680, 256, 20)
        assert result.active_warps == 64
        assert result.occupancy == 1.0
        assert result.limiter == "scheduler"

    def test_gtx680_32_regs_is_full_occupancy(self):
        # 32 regs/thread * 2048 threads = 65536 = the whole register file:
        # the paper's max-live threshold for Kepler.
        result = calculate_occupancy(GTX680, 256, 32)
        assert result.occupancy == 1.0

    def test_gtx680_33_regs_drops_below_full(self):
        result = calculate_occupancy(GTX680, 256, 33)
        assert result.occupancy < 1.0
        assert result.limiter == "registers"

    def test_gtx680_63_regs_gives_half_occupancy(self):
        # 63 regs -> 2016/warp -> ceil to 2048 -> 32 warps of 64.
        result = calculate_occupancy(GTX680, 256, 63)
        assert result.active_warps == 32
        assert result.occupancy == 0.5

    def test_c2075_full_occupancy_threshold(self):
        # 20 regs * 32 = 640/warp (multiple of the 64-register unit);
        # 32768/640 = 51 warps >= 48, so 20 regs/thread reaches full
        # occupancy.  21 regs rounds to 704/warp -> 46 warps < 48.
        assert calculate_occupancy(TESLA_C2075, 192, 20).occupancy == 1.0
        assert calculate_occupancy(TESLA_C2075, 192, 21).occupancy < 1.0

    def test_shared_memory_limits_blocks(self):
        result = calculate_occupancy(
            TESLA_C2075, 256, 16, smem_per_block=24 * 1024
        )
        # 48KB smem / 24KB per block = 2 blocks = 16 warps.
        assert result.active_blocks == 2
        assert result.active_warps == 16
        assert result.limiter == "shared_memory"

    def test_large_cache_config_shrinks_smem(self):
        small = calculate_occupancy(
            TESLA_C2075, 256, 16, 12 * 1024, CacheConfig.SMALL_CACHE
        )
        large = calculate_occupancy(
            TESLA_C2075, 256, 16, 12 * 1024, CacheConfig.LARGE_CACHE
        )
        assert small.active_blocks == 4
        assert large.active_blocks == 1

    def test_over_register_limit_is_unlaunchable(self):
        result = calculate_occupancy(GTX680, 256, 64)
        assert not result.is_launchable

    def test_smem_over_capacity_is_unlaunchable(self):
        result = calculate_occupancy(GTX680, 256, 16, 49 * 1024)
        assert not result.is_launchable

    def test_register_allocation_is_rounded_per_warp(self):
        # 17 regs * 32 = 544 -> rounds to 768 on GTX680 (unit 256).
        result = calculate_occupancy(GTX680, 32, 17)
        assert result.allocated_registers % GTX680.register_allocation_unit == 0

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            calculate_occupancy(GTX680, 0, 16)
        with pytest.raises(ValueError):
            calculate_occupancy(GTX680, 4096, 16)
        with pytest.raises(ValueError):
            calculate_occupancy(GTX680, 256, -1)


class TestOccupancyLevels:
    def test_c2075_block256_has_six_levels(self):
        # Matches the paper's C2075 sweeps: 0.167 .. 1.0.
        assert occupancy_levels(TESLA_C2075, 256) == [8, 16, 24, 32, 40, 48]

    def test_gtx680_block256_has_eight_levels(self):
        # Matches the paper's GTX680 sweeps: 0.125 .. 1.0.
        assert occupancy_levels(GTX680, 256) == [8, 16, 24, 32, 40, 48, 56, 64]

    def test_block_count_capped_by_max_blocks(self):
        levels = occupancy_levels(TESLA_C2075, 32)
        assert len(levels) == TESLA_C2075.max_blocks_per_sm


class TestInverseQueries:
    def test_register_budget_for_full_occupancy_gtx680(self):
        assert max_regs_per_thread_for_warps(GTX680, 256, 64) == 32

    def test_register_budget_for_half_occupancy_gtx680(self):
        budget = max_regs_per_thread_for_warps(GTX680, 256, 32)
        assert budget == GTX680.max_registers_per_thread

    def test_register_budget_unreachable_returns_none(self):
        # 24KB smem per block caps at 2 blocks = 16 warps; 48 unreachable.
        assert (
            max_regs_per_thread_for_warps(
                TESLA_C2075, 256, 48, smem_per_block=24 * 1024
            )
            is None
        )

    def test_smem_padding_caps_occupancy(self):
        padding = min_smem_padding_to_cap_warps(TESLA_C2075, 256, 24, 20)
        assert padding is not None and padding > 0
        result = calculate_occupancy(TESLA_C2075, 256, 20, padding)
        assert result.active_warps == 24

    def test_no_padding_needed_when_already_below(self):
        assert min_smem_padding_to_cap_warps(GTX680, 256, 64, 20) == 0


@given(
    block=st.integers(min_value=1, max_value=1024),
    regs=st.integers(min_value=1, max_value=63),
    smem=st.integers(min_value=0, max_value=48 * 1024),
)
def test_occupancy_monotone_in_resources(block, regs, smem):
    """More registers or shared memory never increases occupancy."""
    for arch in (GTX680, TESLA_C2075):
        base = calculate_occupancy(arch, block, regs, smem)
        more_regs = calculate_occupancy(arch, block, min(regs + 4, 63), smem)
        more_smem = calculate_occupancy(arch, block, regs, smem + 1024)
        assert more_regs.active_warps <= base.active_warps
        assert more_smem.active_warps <= base.active_warps


@given(
    block=st.integers(min_value=1, max_value=1024),
    regs=st.integers(min_value=1, max_value=63),
)
def test_occupancy_bounded(block, regs):
    for arch in (GTX680, TESLA_C2075):
        result = calculate_occupancy(arch, block, regs)
        assert 0.0 <= result.occupancy <= 1.0
        assert result.active_threads <= arch.max_threads_per_sm
        assert result.allocated_registers <= arch.registers_per_sm
