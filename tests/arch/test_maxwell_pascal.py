"""Maxwell (GTX980) and Pascal (GTX1080) descriptor tests.

Both generations decouple shared memory from L1 — the CacheConfig
split knob becomes a no-op — and lift the per-thread register encoding
cap to 255, which moves Orion's spill-free "original" version.  The
occupancy numbers below are cross-checked against the NVIDIA occupancy
calculator for sm_52 / sm_61.
"""

import pytest

from repro.arch import CacheConfig, GTX680, GTX980, GTX1080, TESLA_C2075
from repro.arch.occupancy import calculate_occupancy
from repro.arch.specs import all_architectures, known_architectures


class TestDescriptors:
    def test_gtx980(self):
        assert GTX980.compute_capability == (5, 2)
        assert GTX980.num_sms == 16
        assert GTX980.registers_per_sm == 65536
        assert GTX980.max_registers_per_thread == 255
        assert GTX980.max_warps_per_sm == 64

    def test_gtx1080(self):
        assert GTX1080.compute_capability == (6, 1)
        assert GTX1080.num_sms == 20
        assert GTX1080.max_registers_per_thread == 255
        # Pascal's unified L1/texture caches global loads again.
        assert GTX1080.l1_caches_global
        assert not GTX980.l1_caches_global

    def test_dedicated_memories_ignore_cache_config(self):
        for arch in (GTX980, GTX1080):
            assert arch.shared_memory_bytes(
                CacheConfig.SMALL_CACHE
            ) == arch.shared_memory_bytes(CacheConfig.LARGE_CACHE)
            assert arch.shared_memory_bytes(CacheConfig.SMALL_CACHE) == 96 * 1024
        assert GTX980.l1_cache_bytes(CacheConfig.LARGE_CACHE) == 24 * 1024
        assert GTX1080.l1_cache_bytes(CacheConfig.LARGE_CACHE) == 48 * 1024

    def test_registries(self):
        # The paper-platform pair is untouched; the full registry
        # appends the new generations after it.
        assert known_architectures() == (GTX680, TESLA_C2075)
        assert all_architectures() == (GTX680, TESLA_C2075, GTX980, GTX1080)

    def test_fingerprints_distinct(self):
        prints = [arch.fingerprint() for arch in all_architectures()]
        assert len(set(prints)) == len(prints)

    def test_fingerprint_tracks_overrides(self):
        assert (
            GTX980.with_overrides(dram_latency=900).fingerprint()
            != GTX980.fingerprint()
        )


class TestOccupancy:
    def test_full_occupancy_threshold_is_32_regs(self):
        # Same 64K registers / 2048 threads ratio as Kepler.
        for arch in (GTX980, GTX1080):
            assert arch.registers_per_thread_at_full_occupancy == 32
            occ = calculate_occupancy(arch, 256, 32)
            assert occ.active_warps == 64
            assert occ.occupancy == 1.0

    def test_register_limited_at_255_regs(self):
        # 255 regs/thread rounds to 256 per the allocation unit:
        # 65536 / (256 * 32) = 8 warps = 1 block of 256 threads.
        occ = calculate_occupancy(GTX980, 256, 255)
        assert occ.limiter == "registers"
        assert occ.active_blocks == 1
        assert occ.active_warps == 8

    def test_shared_memory_limited(self):
        # 96KB dedicated shared memory: a 40KB block fits twice per SM
        # on Maxwell/Pascal but only once under Kepler's 48KB split.
        occ = calculate_occupancy(GTX980, 256, 32, smem_per_block=40 * 1024)
        assert occ.limiter == "shared_memory"
        assert occ.active_blocks == 2
        kepler = calculate_occupancy(
            GTX680, 256, 32, smem_per_block=40 * 1024
        )
        assert kepler.active_blocks == 1

    def test_kepler_63_reg_kernels_can_go_spill_free_here(self):
        # The encoding headroom is the interesting Maxwell difference:
        # a kernel needing 80 live registers *must* spill on the GTX680
        # (cap 63) but allocates cleanly on the GTX980 — at a real
        # occupancy cost the tuner can now trade against spills.
        assert 80 > GTX680.max_registers_per_thread
        assert 80 <= GTX980.max_registers_per_thread
        occ = calculate_occupancy(GTX980, 256, 80)
        assert occ.is_launchable
        assert occ.active_warps < 64
