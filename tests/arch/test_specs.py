"""Architecture descriptor tests."""

import dataclasses

import pytest

from repro.arch import GTX680, TESLA_C2075, CacheConfig, known_architectures
from repro.arch.specs import GpuArchitecture


class TestPublishedNumbers:
    """The paper's Platform section, verbatim."""

    def test_gtx680(self):
        assert GTX680.num_sms == 8
        assert GTX680.cores_per_sm == 192
        assert GTX680.total_cores == 1536
        assert GTX680.registers_per_sm == 65536
        assert GTX680.max_warps_per_sm == 64
        assert GTX680.max_threads_per_sm == 2048
        assert GTX680.onchip_memory_bytes == 64 * 1024

    def test_c2075(self):
        assert TESLA_C2075.num_sms == 14
        assert TESLA_C2075.cores_per_sm == 32
        assert TESLA_C2075.total_cores == 448
        assert TESLA_C2075.registers_per_sm == 32768
        assert TESLA_C2075.max_warps_per_sm == 48
        assert TESLA_C2075.max_threads_per_sm == 1536

    def test_cache_splits(self):
        for arch in known_architectures():
            assert arch.l1_cache_bytes(CacheConfig.SMALL_CACHE) == 16 * 1024
            assert arch.shared_memory_bytes(CacheConfig.SMALL_CACHE) == 48 * 1024
            assert arch.l1_cache_bytes(CacheConfig.LARGE_CACHE) == 48 * 1024
            assert arch.shared_memory_bytes(CacheConfig.LARGE_CACHE) == 16 * 1024

    def test_fermi_caches_global_kepler_does_not(self):
        assert TESLA_C2075.l1_caches_global
        assert not GTX680.l1_caches_global


class TestDescriptor:
    def test_inconsistent_thread_warp_counts_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(GTX680, max_threads_per_sm=1000)

    def test_with_overrides(self):
        tweaked = GTX680.with_overrides(dram_latency=900)
        assert tweaked.dram_latency == 900
        assert tweaked.num_sms == GTX680.num_sms
        assert GTX680.dram_latency != 900  # original untouched

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GTX680.num_sms = 4  # type: ignore[misc]

    def test_full_occupancy_register_thresholds(self):
        # The Fig. 8 max-live thresholds fall straight out of the specs.
        assert GTX680.registers_per_thread_at_full_occupancy == 32
        assert TESLA_C2075.registers_per_thread_at_full_occupancy == 21
