"""Fig. 8 compile-time tuning tests: direction, candidate set, fail-safe."""

import pytest

from repro.arch import GTX680, TESLA_C2075
from repro.compiler.multiversion import MultiVersionBinary
from repro.compiler.pipeline import CompileOptions, compile_binary, nvcc_baseline
from repro.compiler.static_select import (
    memory_instruction_distance,
    warps_needed,
)
from repro.compiler.tuning import compile_time_tuning, conservative_level
from repro.isa.encoding import encode_module
from tests.helpers import loop_kernel, module_from_asm


def pressure_module(n=36, loop_iters=4):
    """High max-live kernel with a loop (tunable, upward direction)."""
    lines = ["S2R %v0, %tid", "SHL %v1, %v0, 2", "MOV %v60, 0"]
    for i in range(n):
        lines.append(f"LD.global %v{2 + i}, [%v1+{128 * i}]")
    lines.append("BRA HEAD")
    head = f"""HEAD:
    ISET.lt %v99, %v60, {loop_iters}
    CBR %v99, BODY, DONE
BODY:"""
    body = []
    accum = "%v2"
    for i in range(1, n):
        body.append(f"FFMA %v{200 + i}, %v{2 + i}, 1.5, {accum}")
        accum = f"%v{200 + i}"
    body.append("IADD %v60, %v60, 1")
    body.append("BRA HEAD")
    tail = f"DONE:\n    ST.global [%v1], {accum}\n    EXIT"
    text = (
        ".module m\n.kernel k shared=0\nBB0:\n"
        + "\n".join(f"    {l}" for l in lines)
        + "\n"
        + head
        + "\n"
        + "\n".join(f"    {l}" for l in body)
        + "\n"
        + tail
        + "\n.end"
    )
    return module_from_asm(text)


class TestDirectionAndCandidates:
    def test_upward_plan_shape(self):
        plan = compile_time_tuning(pressure_module(), "k", GTX680, 256)
        assert plan.direction == "increasing"
        assert plan.versions[0].label == "original"
        # Candidates are ordered by increasing occupancy.
        warps = [v.achieved_warps for v in plan.versions]
        assert warps == sorted(warps)
        assert len(plan.versions) <= 5

    def test_downward_plan_shape(self):
        plan = compile_time_tuning(loop_kernel(), "k", GTX680, 256)
        assert plan.direction == "decreasing"
        warps = [v.achieved_warps for v in plan.versions]
        assert warps[0] == max(warps)
        assert warps == sorted(warps, reverse=True)

    def test_candidate_count_bounded(self):
        """Paper: <=5 versions, <=6 including the fail-safe."""
        for module in (pressure_module(), loop_kernel()):
            plan = compile_time_tuning(module, "k", GTX680, 256)
            assert len(plan.versions) <= 5
            assert len(plan.versions) + len(plan.failsafe) <= 6

    def test_failsafe_is_opposite_direction(self):
        plan = compile_time_tuning(pressure_module(), "k", GTX680, 256)
        if plan.failsafe:
            assert (
                plan.failsafe[0].achieved_warps
                < plan.versions[0].achieved_warps
            )
        down = compile_time_tuning(loop_kernel(), "k", GTX680, 256)
        # Original already at hardware max: no upward fail-safe exists.
        assert down.versions[0].achieved_warps == GTX680.max_warps_per_sm
        assert down.failsafe == []

    def test_downward_versions_share_binary(self):
        plan = compile_time_tuning(loop_kernel(), "k", TESLA_C2075, 256)
        binaries = {v.binary for v in plan.versions}
        assert len(binaries) == 1  # padding, not recompilation

    def test_conservative_level_bounds(self):
        module = pressure_module()
        level = conservative_level(module, "k", GTX680, 256)
        assert level in [8, 16, 24, 32, 40, 48, 56, 64]

    def test_static_selection_when_not_tunable(self):
        plan = compile_time_tuning(
            pressure_module(), "k", GTX680, 256, can_tune=False
        )
        assert len(plan.versions) == 1
        assert plan.failsafe == []


class TestParallelRealization:
    def test_parallel_plan_matches_sequential(self):
        module = pressure_module()
        sequential = compile_time_tuning(module, "k", GTX680, 256, jobs=1)
        parallel = compile_time_tuning(module, "k", GTX680, 256, jobs=2)
        assert [v.label for v in sequential.versions] == [
            v.label for v in parallel.versions
        ]
        assert [v.binary for v in sequential.versions] == [
            v.binary for v in parallel.versions
        ]
        assert [v.binary for v in sequential.failsafe] == [
            v.binary for v in parallel.failsafe
        ]

    def test_jobs_env_var(self, monkeypatch):
        from repro.compiler.tuning import _resolve_jobs

        monkeypatch.delenv("ORION_COMPILE_JOBS", raising=False)
        assert _resolve_jobs(None) == 1
        assert _resolve_jobs(3) == 3
        assert _resolve_jobs(0) == 1  # clamped
        monkeypatch.setenv("ORION_COMPILE_JOBS", "4")
        assert _resolve_jobs(None) == 4
        assert _resolve_jobs(2) == 2  # explicit argument wins
        monkeypatch.setenv("ORION_COMPILE_JOBS", "junk")
        assert _resolve_jobs(None) == 1


class TestStaticSelectHeuristic:
    def test_memory_distance(self):
        module = loop_kernel()
        d = memory_instruction_distance(module, "k")
        assert d > 1

    def test_compute_bound_needs_few_warps(self):
        module = module_from_asm(
            """
            .module cb
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                MOV %v1, 0
                MOV %v2, 0
                BRA H
            H:
                ISET.lt %v3, %v1, 100
                CBR %v3, B, D
            B:
                IMAD %v2, %v2, 3, 1
                IADD %v1, %v1, 1
                BRA H
            D:
                SHL %v4, %v0, 2
                ST.global [%v4], %v2
                EXIT
            .end
            """
        )
        assert warps_needed(module, "k", GTX680) <= 8


class TestMultiVersionBinary:
    def test_round_trip(self):
        plan = compile_time_tuning(pressure_module(), "k", GTX680, 256)
        mv = MultiVersionBinary.from_plan(plan, GTX680.name, 256)
        data = mv.to_bytes()
        again = MultiVersionBinary.from_bytes(data)
        assert again.kernel_name == mv.kernel_name
        assert again.direction == mv.direction
        assert len(again.versions) == len(mv.versions)
        for a, b in zip(again.versions, mv.versions):
            assert a.label == b.label
            assert a.achieved_warps == b.achieved_warps
            assert a.binary == b.binary
            assert str(a.module) == str(b.module)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            MultiVersionBinary.from_bytes(b"XXXX" + b"\x00" * 8)


class TestPipeline:
    def test_compile_from_bytes(self):
        module = pressure_module()
        raw = encode_module(module)
        mv = compile_binary(raw, "k", CompileOptions(arch=GTX680))
        assert mv.versions

    def test_nvcc_baseline_properties(self):
        version = nvcc_baseline(pressure_module(), "k", GTX680)
        assert version.label == "nvcc"
        assert version.smem_padding == 0
        assert version.regs_per_thread <= GTX680.max_registers_per_thread

    def test_nvcc_no_worse_register_count_than_orion_original(self):
        """Orion's interprocedural space optimisation saves registers."""
        from repro.compiler.tuning import original_version
        from tests.helpers import call_kernel

        module = call_kernel()
        orion = original_version(module, "k", GTX680, 256)
        nvcc = nvcc_baseline(module, "k", GTX680)
        assert orion.regs_per_thread <= nvcc.regs_per_thread
