"""Static selection heuristic tests (ICS'14 fallback, Fig. 8 lines 15-19)."""

import math

import pytest

from repro.arch import GTX680, TESLA_C2075
from repro.compiler.static_select import (
    memory_instruction_distance,
    static_selection,
    warps_needed,
)
from tests.helpers import module_from_asm
from tests.runtime.test_adaptation import _dummy_version


def compute_only_module():
    return module_from_asm(
        """
        .module cb
        .kernel k shared=0
        BB0:
            S2R %v0, %tid
            MOV %v1, 0
            MOV %v2, 1
            BRA H
        H:
            ISET.lt %v3, %v1, 64
            CBR %v3, B, D
        B:
            IMAD %v2, %v2, 3, 1
            IADD %v1, %v1, 1
            BRA H
        D:
            SHL %v4, %v0, 2
            ST.global [%v4], %v2
            EXIT
        .end
        """
    )


def memory_dense_module():
    lines = ["S2R %v0, %tid", "SHL %v1, %v0, 2", "MOV %v2, 0", "BRA H"]
    head = "H:\n    ISET.lt %v3, %v2, 16\n    CBR %v3, B, D\nB:"
    body = []
    for i in range(6):
        body.append(f"    LD.global %v{10 + i}, [%v1+{128 * i}]")
    body.append("    FADD %v20, %v10, %v11")
    body.append("    IADD %v2, %v2, 1")
    body.append("    BRA H")
    tail = "D:\n    ST.global [%v1], %v20\n    EXIT"
    return module_from_asm(
        ".module md\n.kernel k shared=0\nBB0:\n"
        + "\n".join(f"    {l}" for l in lines)
        + "\n" + head + "\n" + "\n".join(body) + "\n" + tail + "\n.end"
    )


class TestDistance:
    def test_compute_only_has_huge_distance(self):
        # A single store outside the loop against ~100 weighted compute
        # instructions per memory op.
        assert memory_instruction_distance(compute_only_module(), "k") > 40

    def test_memory_dense_is_small(self):
        assert memory_instruction_distance(memory_dense_module(), "k") < 4

    def test_loop_weighting_dominates(self):
        # The same loads outside a loop would be diluted by loop compute.
        dense = memory_instruction_distance(memory_dense_module(), "k")
        sparse = memory_instruction_distance(compute_only_module(), "k")
        assert dense < sparse


class TestWarpsNeeded:
    def test_compute_only_needs_few_warps(self):
        assert warps_needed(compute_only_module(), "k", GTX680) <= 8

    def test_memory_free_kernel_needs_one(self):
        module = module_from_asm(
            """
            .module nf
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                IADD %v1, %v0, 1
                EXIT
            .end
            """
        )
        assert math.isinf(memory_instruction_distance(module, "k"))
        assert warps_needed(module, "k", GTX680) == 1

    def test_memory_dense_needs_many(self):
        assert warps_needed(memory_dense_module(), "k", TESLA_C2075) >= 16

    def test_capped_by_hardware(self):
        for arch in (GTX680, TESLA_C2075):
            need = warps_needed(memory_dense_module(), "k", arch)
            assert need <= arch.max_warps_per_sm

    def test_wider_issue_needs_more_warps(self):
        module = memory_dense_module()
        assert warps_needed(module, "k", GTX680) > warps_needed(
            module, "k", TESLA_C2075
        )


class TestSelection:
    def test_picks_lowest_sufficient(self):
        module = memory_dense_module()
        need = warps_needed(module, "k", TESLA_C2075)
        versions = [_dummy_version(f"v{w}", w) for w in (8, 16, 24, 32, 48)]
        chosen = static_selection(module, "k", TESLA_C2075, versions)
        assert chosen.achieved_warps >= need
        cheaper = [
            v for v in versions
            if need <= v.achieved_warps < chosen.achieved_warps
        ]
        assert not cheaper

    def test_falls_back_to_highest_when_none_sufficient(self):
        module = memory_dense_module()
        versions = [_dummy_version(f"v{w}", w) for w in (2, 4)]
        chosen = static_selection(module, "k", TESLA_C2075, versions)
        assert chosen.achieved_warps == 4

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            static_selection(memory_dense_module(), "k", GTX680, [])
