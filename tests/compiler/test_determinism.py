"""Bit-for-bit reproducibility of the compilation pipeline.

Allocation materialises several ``set`` objects into orderings
(colouring stacks, reachable-function lists, φ worklists).  Each of
those sites sorts by a stable key (:func:`repro.isa.registers.reg_sort_key`
or plain string order), so compiling the same module twice — even in
processes with different string hash seeds — must yield identical
encoded bytes.
"""

import hashlib
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.arch import GTX680, TESLA_C2075
from repro.compiler.pipeline import CompileOptions, compile_binary
from repro.isa.assembly import parse_module
from repro.isa.encoding import encode_module
from repro.regalloc.allocator import allocate_module
from tests.helpers import call_kernel, loop_kernel, wide_kernel

REPO_ROOT = Path(__file__).resolve().parents[2]


def _compile_bytes(module_factory, arch) -> bytes:
    data = encode_module(module_factory())
    options = CompileOptions(arch=arch, block_size=128)
    # use_cache=False: the point is to re-run the allocator, not to
    # check that the compile cache returns what it stored.
    return compile_binary(data, "k", options, use_cache=False).to_bytes()


class TestDoubleCompile:
    def test_compile_twice_identical_bytes(self):
        for factory in (call_kernel, loop_kernel, wide_kernel):
            for arch in (GTX680, TESLA_C2075):
                first = _compile_bytes(factory, arch)
                second = _compile_bytes(factory, arch)
                assert first == second, (factory.__name__, arch.name)

    def test_allocate_twice_identical_encoding(self):
        # A tight budget forces spilling and shared promotion, the paths
        # whose iteration order historically depended on set ordering.
        first = allocate_module(
            call_kernel(), "k", 6, smem_spill_budget_per_thread=16
        )
        second = allocate_module(
            call_kernel(), "k", 6, smem_spill_budget_per_thread=16
        )
        assert encode_module(first.module) == encode_module(second.module)
        assert first.colorings == second.colorings


class TestHashSeedIndependence:
    def test_compile_bytes_survive_hash_seed_change(self):
        """The same compile in two differently-seeded interpreters matches."""
        script = textwrap.dedent(
            """
            import hashlib, sys
            from repro.arch import GTX680
            from repro.compiler.pipeline import CompileOptions, compile_binary
            from repro.isa.assembly import parse_module
            from repro.isa.encoding import encode_module
            from tests.helpers import call_kernel

            data = encode_module(call_kernel())
            binary = compile_binary(
                data, "k", CompileOptions(arch=GTX680, block_size=128)
            )
            sys.stdout.write(hashlib.sha256(binary.to_bytes()).hexdigest())
            """
        )

        def digest(seed: str) -> str:
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            env["PYTHONPATH"] = os.pathsep.join(
                [str(REPO_ROOT / "src"), str(REPO_ROOT)]
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=REPO_ROOT,
                check=True,
            )
            return proc.stdout.strip()

        assert digest("1") == digest("4242")
