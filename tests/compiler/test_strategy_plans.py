"""Strategy-aware candidate plans: defaults frozen, mixed plans merged.

The compile-time tuner enumerates candidates per (strategy × occupancy
level).  Three contracts matter: the default plan is *exactly* the
pre-strategy plan (labels, budgets, version hashes), a single
non-default strategy tags every candidate it realizes, and a mixed
plan interleaves strategies level by level while keeping the original
and fail-safes anchored to the primary (reference) strategy.
"""

import pytest

from repro.arch import GTX680
from repro.compiler.multiversion import MultiVersionBinary
from repro.compiler.pipeline import CompileOptions, compile_binary
from repro.compiler.tuning import compile_time_tuning
from tests.compiler.test_tuning import pressure_module
from tests.helpers import loop_kernel


@pytest.fixture(autouse=True)
def _reference_default(monkeypatch):
    # These tests pin the *no-environment* default; the CI strategy
    # matrix exports ORION_STRATEGY, which must not leak in here.
    monkeypatch.delenv("ORION_STRATEGY", raising=False)


def _compile(strategy=None, module=None):
    options = CompileOptions(arch=GTX680, block_size=128, max_versions=4)
    if strategy is not None:
        options = CompileOptions(
            arch=GTX680, block_size=128, max_versions=4, strategy=strategy
        )
    return compile_binary(module or pressure_module(), "k", options)


class TestDefaultPlanFrozen:
    def test_explicit_reference_matches_omitted_strategy(self):
        default = _compile()
        explicit = _compile("local-spill")
        assert default.strategies() == ("local-spill",)
        assert [v.label for v in default.versions] == [
            v.label for v in explicit.versions
        ]
        assert default.to_bytes() == explicit.to_bytes()

    def test_no_strategy_suffix_on_default_labels(self):
        for version in _compile().versions:
            assert "[" not in version.label

    def test_serialization_round_trip_keeps_strategy(self):
        binary = _compile("smem-spill")
        decoded = MultiVersionBinary.from_bytes(binary.to_bytes())
        assert decoded.strategies() == ("smem-spill",)
        assert [v.strategy for v in decoded.versions] == [
            v.strategy for v in binary.versions
        ]


class TestSingleStrategyPlans:
    def test_smem_spill_tags_candidates(self):
        binary = _compile("smem-spill")
        # The original version realises under the requested strategy
        # too, so the whole plan is one strategy.
        assert binary.strategies() == ("smem-spill",)
        for version in binary.versions[1:]:
            if version.label != "original":
                assert version.strategy == "smem-spill"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            CompileOptions(
                arch=GTX680, block_size=128, strategy="bank-remap"
            )


class TestMixedPlans:
    def test_mixed_interleaves_and_anchors_to_reference(self):
        plan = compile_time_tuning(
            pressure_module(),
            "k",
            GTX680,
            256,
            strategies=("local-spill", "smem-spill"),
        )
        assert plan.versions[0].label == "original"
        assert plan.versions[0].strategy == "local-spill"
        # Candidates stay sorted by target occupancy; within one level
        # the reference strategy comes first.
        warps = [v.achieved_warps for v in plan.versions[1:]]
        assert warps == sorted(warps)
        strategies = {v.strategy for v in plan.versions}
        assert "local-spill" in strategies
        # Fail-safes are primary-strategy only.
        for version in plan.failsafe:
            assert version.strategy == "local-spill"

    def test_mixed_compile_options(self):
        binary = _compile("mixed")
        assert set(binary.strategies()) <= {"local-spill", "smem-spill"}
        assert "local-spill" in binary.strategies()

    def test_downward_plans_use_primary_only(self):
        # loop_kernel tunes downward (padding); padding never spills,
        # so a mixed request degenerates to the reference plan.
        mixed = _compile("mixed", module=loop_kernel())
        default = _compile(None, module=loop_kernel())
        assert mixed.strategies() == ("local-spill",)
        assert [v.label for v in mixed.versions] == [
            v.label for v in default.versions
        ]
