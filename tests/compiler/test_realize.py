"""Occupancy realisation tests: every version achieves its target."""

import pytest

from repro.arch import GTX680, TESLA_C2075, calculate_occupancy, occupancy_levels
from repro.compiler.realize import (
    RealizeError,
    realize_occupancy,
    repad_version,
)
from repro.compiler.tuning import original_version
from repro.isa.encoding import decode_module
from repro.sim.interp import LaunchConfig, run_kernel
from tests.helpers import module_from_asm


def pressure_module(n=24):
    lines = ["S2R %v0, %tid", "SHL %v1, %v0, 2"]
    for i in range(n):
        lines.append(f"LD.global %v{2 + i}, [%v1+{4 * i}]")
    accum = "%v2"
    for i in range(1, n):
        lines.append(f"FADD %v{100 + i}, {accum}, %v{2 + i}")
        accum = f"%v{100 + i}"
    lines.append(f"ST.global [%v1], {accum}")
    lines.append("EXIT")
    body = "\n".join(f"    {line}" for line in lines)
    return module_from_asm(f".module m\n.kernel k shared=0\nBB0:\n{body}\n.end")


class TestRealize:
    def test_achieves_each_feasible_level(self):
        module = pressure_module()
        for warps in occupancy_levels(GTX680, 256):
            version = realize_occupancy(module, "k", GTX680, 256, warps)
            assert version.achieved_warps == warps, version.label

    def test_higher_occupancy_means_fewer_registers(self):
        module = pressure_module()
        low = realize_occupancy(module, "k", GTX680, 256, 32)
        high = realize_occupancy(module, "k", GTX680, 256, 64)
        assert high.regs_per_thread <= low.regs_per_thread

    def test_occupancy_formula_consistency(self):
        """Achieved warps must agree with the occupancy calculator."""
        module = pressure_module()
        version = realize_occupancy(module, "k", GTX680, 256, 48)
        occ = calculate_occupancy(
            GTX680, 256, version.regs_per_thread, version.smem_per_block
        )
        assert occ.active_warps == version.achieved_warps

    def test_conservative_promotes_spills(self):
        module = pressure_module(30)
        plain = realize_occupancy(module, "k", GTX680, 256, 64)
        conservative = realize_occupancy(
            module, "k", GTX680, 256, 64, conservative=True
        )
        assert conservative.achieved_warps == 64
        # The conservative version trades shared memory for local spills.
        assert (
            conservative.outcome.local_bytes_per_thread
            <= plain.outcome.local_bytes_per_thread
        )

    def test_versions_remain_semantically_correct(self):
        module = pressure_module(16)
        launch = LaunchConfig(block_size=8)
        memory = {i * 4: float(i % 9) for i in range(64)}
        expected = run_kernel(module, launch, global_memory=memory)
        for warps in (32, 48, 64):
            version = realize_occupancy(
                module, "k", GTX680, 256, warps, conservative=True
            )
            got = run_kernel(version.module, launch, global_memory=memory)
            assert got == pytest.approx(expected), version.label

    def test_binary_decodes_to_module(self):
        module = pressure_module(8)
        version = realize_occupancy(module, "k", GTX680, 256, 64)
        decoded = decode_module(version.binary)
        assert str(decoded) == str(version.module)

    def test_unreachable_target_raises(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=25000
            BB0:
                EXIT
            .end
            """
        )
        # 25KB user smem caps C2075 at 1 block (8 warps at block=256).
        with pytest.raises(RealizeError):
            realize_occupancy(module, "k", TESLA_C2075, 256, 48)


class TestRepad:
    def test_padding_lowers_occupancy_without_recompiling(self):
        module = pressure_module(8)
        base = original_version(module, "k", GTX680, 256)
        assert base.achieved_warps == 64  # low pressure: max occupancy
        padded = repad_version(base, GTX680, 256, 32)
        assert padded.achieved_warps == 32
        assert padded.binary == base.binary  # same code object
        assert padded.smem_padding > 0

    def test_every_lower_level_reachable_by_padding(self):
        module = pressure_module(8)
        base = original_version(module, "k", TESLA_C2075, 256)
        for warps in occupancy_levels(TESLA_C2075, 256):
            if warps >= base.achieved_warps:
                continue
            padded = repad_version(base, TESLA_C2075, 256, warps)
            assert padded.achieved_warps == warps
