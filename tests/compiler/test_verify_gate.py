"""The pipeline's allocation-soundness verify gate."""

import pytest

from repro.arch.specs import GTX680
from repro.compiler.pipeline import CompileOptions, compile_binary, verify_binary
from repro.ir.verify import VerificationError
from repro.isa.instructions import Imm, Instruction, Opcode
from repro.isa.registers import PhysReg
from repro.perf.cache import CompileCache
from tests.helpers import call_kernel, straight_line_kernel

OPTIONS = CompileOptions(arch=GTX680, block_size=128, max_versions=3)


class TestVerifyGate:
    def test_fresh_compile_passes(self):
        binary = compile_binary(
            call_kernel(), "k", OPTIONS, use_cache=False, verify=True
        )
        assert binary.versions

    def test_cache_hit_is_verified_too(self):
        cache = CompileCache()
        cold = compile_binary(
            straight_line_kernel(), "k", OPTIONS, cache=cache, verify=True
        )
        warm = compile_binary(
            straight_line_kernel(), "k", OPTIONS, cache=cache, verify=True
        )
        assert warm.to_bytes() == cold.to_bytes()
        assert cache.stats.memory_hits == 1

    def test_verify_does_not_change_output(self):
        plain = compile_binary(
            call_kernel(), "k", OPTIONS, use_cache=False
        )
        gated = compile_binary(
            call_kernel(), "k", OPTIONS, use_cache=False, verify=True
        )
        assert gated.to_bytes() == plain.to_bytes()

    def test_clobbered_version_rejected_with_version_label(self):
        binary = compile_binary(
            straight_line_kernel(), "k", OPTIONS, use_cache=False
        )
        # Corrupt one version: overwrite the slots feeding the first
        # store while its value is still live.
        victim = binary.versions[0]
        fn = victim.outcome.module.kernel()
        for block in fn.ordered_blocks():
            for index, inst in enumerate(block.instructions):
                if inst.opcode is Opcode.ST:
                    reg = next(
                        r for r in inst.regs_read()
                        if isinstance(r, PhysReg)
                    )
                    base = reg.index - reg.index % 2
                    block.instructions.insert(
                        index,
                        Instruction(
                            Opcode.MOV,
                            dst=PhysReg(base, 2),
                            srcs=[Imm(0.0)],
                        ),
                    )
                    break
            else:
                continue
            break
        with pytest.raises(VerificationError) as excinfo:
            verify_binary(binary)
        message = str(excinfo.value)
        assert victim.label in message
        assert "clobbers" in message
