"""max-live metric and tuning-direction tests (Fig. 8 lines 1-4)."""

from repro.arch import GTX680, TESLA_C2075
from repro.compiler.maxlive import (
    function_max_live,
    kernel_max_live,
    tuning_direction,
)
from tests.helpers import (
    call_kernel,
    loop_kernel,
    module_from_asm,
    straight_line_kernel,
)


def _pressure_module(n):
    """Kernel holding n values live simultaneously."""
    lines = ["S2R %v0, %tid", "SHL %v1, %v0, 2"]
    for i in range(n):
        lines.append(f"LD.global %v{2 + i}, [%v1+{4 * i}]")
    accum = "%v2"
    for i in range(1, n):
        lines.append(f"FADD %v{100 + i}, {accum}, %v{2 + i}")
        accum = f"%v{100 + i}"
    lines.append(f"ST.global [%v1], {accum}")
    lines.append("EXIT")
    body = "\n".join(f"    {line}" for line in lines)
    return module_from_asm(f".module m\n.kernel k shared=0\nBB0:\n{body}\n.end")


class TestMaxLive:
    def test_straight_line(self):
        module = straight_line_kernel()
        assert kernel_max_live(module, "k") == function_max_live(module, "k")

    def test_call_tree_adds_live_across(self):
        module = call_kernel()
        whole = kernel_max_live(module, "k")
        kernel_only = function_max_live(module, "k")
        # Values held across the calls stack under the callee's needs.
        assert whole > kernel_only or whole >= kernel_only

    def test_pressure_scales(self):
        assert kernel_max_live(_pressure_module(30), "k") > kernel_max_live(
            _pressure_module(10), "k"
        )


class TestDirection:
    def test_low_pressure_tunes_down(self):
        module = loop_kernel()
        threshold = GTX680.registers_per_thread_at_full_occupancy
        assert tuning_direction(module, "k", threshold) == "decreasing"

    def test_high_pressure_tunes_up(self):
        module = _pressure_module(40)
        threshold = GTX680.registers_per_thread_at_full_occupancy
        assert tuning_direction(module, "k", threshold) == "increasing"

    def test_kepler_threshold_is_32(self):
        # The paper sets the Kepler max-live threshold to 32: the number
        # of registers per thread at the hardware maximum occupancy.
        assert GTX680.registers_per_thread_at_full_occupancy == 32

    def test_fermi_threshold_is_21(self):
        assert TESLA_C2075.registers_per_thread_at_full_occupancy == 21
