"""Multi-version binary container edge cases."""

import pytest

from repro.compiler.multiversion import MultiVersionBinary

from tests.runtime.test_adaptation import make_binary


class TestSerialization:
    def test_failsafe_versions_survive_round_trip(self):
        binary = make_binary([16, 32], failsafe=[8])
        again = MultiVersionBinary.from_bytes(binary.to_bytes())
        assert [v.label for v in again.failsafe] == ["fs8"]
        assert again.failsafe[0].achieved_warps == 8

    def test_version_count(self):
        binary = make_binary([16, 32, 48], failsafe=[8])
        assert binary.version_count() == 4

    def test_original_is_first_candidate(self):
        binary = make_binary([16, 32])
        assert binary.original.label == "v16"

    def test_metadata_preserved(self):
        binary = make_binary([16])
        binary.versions[0].outcome.local_bytes_per_thread = 48
        binary.versions[0].outcome.spilled_variables = 3
        binary.versions[0].outcome.stack_moves = 2
        again = MultiVersionBinary.from_bytes(binary.to_bytes())
        v = again.versions[0]
        assert v.outcome.local_bytes_per_thread == 48
        assert v.outcome.spilled_variables == 3
        assert v.outcome.stack_moves == 2

    def test_decoded_module_runs(self):
        from repro.sim.interp import LaunchConfig, run_kernel

        binary = make_binary([16])
        again = MultiVersionBinary.from_bytes(binary.to_bytes())
        # The embedded module decodes to something executable.
        run_kernel(again.versions[0].module, LaunchConfig(block_size=1))

    def test_truncated_payload_rejected(self):
        data = make_binary([16, 32]).to_bytes()
        with pytest.raises(Exception):
            MultiVersionBinary.from_bytes(data[: len(data) - 10])
