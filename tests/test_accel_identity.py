"""Full-suite accelerator identity: ``ORION_ACCEL=off`` vs ``numpy``.

The acceptance bar for the accelerated fast paths (vectorized
simulator kernel, LAPJV matcher, pooled measurement dispatch) is not
"close enough" — it is *byte identity*.  This module drives the entire
benchmark suite end-to-end (fresh compile cache per mode, so the
matcher seam inside register allocation is exercised too) under both
modes and asserts that every ``MeasurementResult`` payload and every
bench-report kernel row serializes to exactly the same JSON bytes.
"""

from __future__ import annotations

import json

import pytest

from repro.arch import GTX680
from repro.harness.experiments import bench_suite
from repro.obs.report import build_bench_report
from repro.perf.cache import reset_default_cache
from repro.runtime.engine import ExecutionEngine
from repro.runtime.telemetry import InMemorySink, TelemetryHub

pytest.importorskip("numpy")


class _RecordingBackend:
    """Wraps a backend; keeps every result payload by request signature."""

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.payloads: dict[str, str] = {}

    def measure(self, request):
        result = self.inner.measure(request)
        sig = "|".join(
            str(part)
            for part in (
                request.version.label,
                request.launch.grid_blocks,
                request.launch.block_size,
                sorted(request.launch.params.items()),
                request.forced_warps,
            )
        )
        self.payloads[sig] = json.dumps(result.to_payload(), sort_keys=True)
        return result


def _run_suite(mode: str, monkeypatch, tmp_path):
    """The whole benchmark suite under one ``ORION_ACCEL`` mode.

    A per-mode compile-cache directory forces both modes through a full
    compile (allocator + matcher included), not just re-measurement of
    binaries the other mode built.
    """
    monkeypatch.setenv("ORION_ACCEL", mode)
    monkeypatch.setenv("ORION_CACHE_DIR", str(tmp_path / f"compile-{mode}"))
    reset_default_cache()
    try:
        engine = ExecutionEngine(
            GTX680, telemetry=TelemetryHub(InMemorySink())
        )
        recorder = _RecordingBackend(engine.backend)
        engine.backend = recorder
        engine.pool.backend = recorder
        rows = bench_suite(GTX680, suite_engine=engine, jobs=1)
        report = build_bench_report(
            GTX680.name,
            recorder.name,
            rows,
            engine.cache.stats,
            metrics_snapshot={"metrics": []},
        )
    finally:
        reset_default_cache()
    kernels = json.dumps(report["kernels"], sort_keys=True)
    return kernels, recorder.payloads


def test_full_suite_byte_identical_across_accel_modes(
    monkeypatch, tmp_path
):
    off_kernels, off_results = _run_suite("off", monkeypatch, tmp_path)
    acc_kernels, acc_results = _run_suite("numpy", monkeypatch, tmp_path)
    # Bench outputs: every kernel row, serialized, byte for byte.
    assert off_kernels == acc_kernels
    # MeasurementResults: same requests measured, same payload bytes.
    assert sorted(off_results) == sorted(acc_results)
    for sig, payload in off_results.items():
        assert acc_results[sig] == payload, f"diverged on {sig}"
    assert off_results  # the suite really measured something
