"""Functional interpreter tests."""

import pytest

from repro.sim.interp import InterpError, Interpreter, LaunchConfig, run_kernel
from tests.helpers import (
    call_kernel,
    diamond_kernel,
    loop_kernel,
    module_from_asm,
    straight_line_kernel,
    wide_kernel,
)


class TestBasics:
    def test_straight_line(self):
        module = straight_line_kernel()
        launch = LaunchConfig(grid_blocks=1, block_size=4, params={0: 100})
        memory = {(t + 100) * 4: float(t + 1) for t in range(4)}
        out = run_kernel(module, launch, global_memory=memory)
        for t in range(4):
            assert out[(t + 100) * 4] == pytest.approx(2.0 * (t + 1))

    def test_diamond_branches_per_thread(self):
        module = diamond_kernel()
        out = run_kernel(module, LaunchConfig(block_size=32))
        assert out[4 * 10] == 1  # tid 10 < 16
        assert out[4 * 20] == 2  # tid 20 >= 16

    def test_loop_accumulates(self):
        module = loop_kernel()
        out = run_kernel(module, LaunchConfig(block_size=2, params={0: 5}))
        assert out[0] == 0 + 1 + 2 + 3 + 4
        assert out[4] == 10

    def test_value_abi_calls(self):
        module = call_kernel()
        memory = {4 * t: float(t) for t in range(4)}
        out = run_kernel(module, LaunchConfig(block_size=4), global_memory=memory)
        # scale(x) = 3 * (x + 1); applied twice.
        for t in range(4):
            expected = 3.0 * (3.0 * (t + 1.0) + 1.0)
            assert out[4 * t] == pytest.approx(expected)

    def test_wide_values(self):
        module = wide_kernel()
        memory = {}
        for t in range(2):
            memory[8 * t] = 2.0 + t
            memory[8 * t + 16] = 10.0
        out = run_kernel(module, LaunchConfig(block_size=2), global_memory=memory)
        for t in range(2):
            assert out[8 * t] == pytest.approx(0.5 * (2.0 + t + 10.0))

    def test_multi_block_grid(self):
        module = module_from_asm(
            """
            .module grid
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                S2R %v1, %ctaid
                S2R %v2, %ntid
                IMAD %v3, %v1, %v2, %v0
                SHL %v4, %v3, 2
                ST.global [%v4], %v3
                EXIT
            .end
            """
        )
        out = run_kernel(module, LaunchConfig(grid_blocks=3, block_size=4))
        assert len(out) == 12
        for i in range(12):
            assert out[4 * i] == i


class TestSharedMemoryAndBarriers:
    def test_reverse_through_shared(self):
        """Thread t writes smem[t], barrier, reads smem[N-1-t]."""
        module = module_from_asm(
            """
            .module rev
            .kernel k shared=64
            BB0:
                S2R %v0, %tid
                S2R %v1, %ntid
                SHL %v2, %v0, 2
                ST.shared [%v2], %v0
                BAR
                ISUB %v3, %v1, 1
                ISUB %v4, %v3, %v0
                SHL %v5, %v4, 2
                LD.shared %v6, [%v5]
                ST.global [%v2], %v6
                EXIT
            .end
            """
        )
        out = run_kernel(module, LaunchConfig(block_size=8))
        for t in range(8):
            assert out[4 * t] == 7 - t

    def test_shared_is_per_block(self):
        module = module_from_asm(
            """
            .module pb
            .kernel k shared=4
            BB0:
                S2R %v0, %tid
                ISET.eq %v1, %v0, 0
                CBR %v1, W, R
            W:
                S2R %v2, %ctaid
                ST.shared [0], %v2
                BRA R
            R:
                BAR
                LD.shared %v3, [0]
                S2R %v4, %ctaid
                S2R %v5, %ntid
                IMAD %v6, %v4, %v5, %v0
                SHL %v7, %v6, 2
                ST.global [%v7], %v3
                EXIT
            .end
            """
        )
        out = run_kernel(module, LaunchConfig(grid_blocks=2, block_size=2))
        assert out[0] == 0 and out[4] == 0
        assert out[8] == 1 and out[12] == 1


class TestLocalMemory:
    def test_local_is_private(self):
        module = module_from_asm(
            """
            .module loc
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                ST.local [0], %v0
                BAR
                LD.local %v1, [0]
                SHL %v2, %v0, 2
                ST.global [%v2], %v1
                EXIT
            .end
            """
        )
        out = run_kernel(module, LaunchConfig(block_size=4))
        for t in range(4):
            assert out[4 * t] == t


class TestErrors:
    def test_infinite_loop_detected(self):
        module = module_from_asm(
            """
            .module inf
            .kernel k shared=0
            BB0:
                BRA BB0
            .end
            """
        )
        interp = Interpreter(module, max_steps=1000)
        with pytest.raises(InterpError):
            interp.run("k", LaunchConfig(block_size=1))

    def test_param_store_rejected(self):
        module = module_from_asm(
            """
            .module p
            .kernel k shared=0
            BB0:
                MOV %v0, 1
                ST.param [0], %v0
                EXIT
            .end
            """
        )
        with pytest.raises(InterpError):
            run_kernel(module, LaunchConfig(block_size=1))

    def test_running_device_function_rejected(self):
        module = call_kernel()
        with pytest.raises(InterpError):
            Interpreter(module).run("scale", LaunchConfig(block_size=1))


class TestSpecialRegs:
    def test_laneid_warpid(self):
        module = module_from_asm(
            """
            .module sw
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                S2R %v1, %laneid
                S2R %v2, %warpid
                SHL %v3, %v0, 3
                ST.global [%v3], %v1
                ST.global [%v3+4], %v2
                EXIT
            .end
            """
        )
        out = run_kernel(module, LaunchConfig(block_size=64))
        assert out[8 * 33] == 1  # lane of tid 33
        assert out[8 * 33 + 4] == 1  # warp of tid 33
        assert out[8 * 5] == 5
        assert out[8 * 5 + 4] == 0
