"""Cache and memory-subsystem model tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import GTX680, TESLA_C2075, CacheConfig
from repro.isa.instructions import MemSpace
from repro.sim.memory import MemorySubsystem, SetAssociativeCache


class TestCacheBasics:
    def test_first_access_misses_second_hits(self):
        cache = SetAssociativeCache(1024, 128, 4)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(64)  # same line

    def test_different_lines_are_distinct(self):
        cache = SetAssociativeCache(1024, 128, 4)
        cache.access(0)
        assert not cache.access(128)

    def test_accounting_conserves_accesses(self):
        cache = SetAssociativeCache(2048, 128, 4)
        for address in range(0, 131072, 128):
            cache.access(address)
        assert cache.hits + cache.misses == cache.accesses == 1024

    def test_lru_eviction(self):
        # Direct-mapped-ish tiny cache without hashing: 2 lines, 2-way,
        # one set.
        cache = SetAssociativeCache(256, 128, 2, hash_sets=False)
        cache.access(0)
        cache.access(128)
        cache.access(0)  # refresh line 0
        cache.access(256)  # evicts LRU = line 1
        assert cache.access(0)
        assert not cache.access(128)

    def test_capacity_thrash(self):
        cache = SetAssociativeCache(1024, 128, 8)  # 8 lines
        addresses = [i * 128 for i in range(16)]
        for _ in range(3):
            for address in addresses:
                cache.access(address)
        # Cyclic over 2x capacity with LRU: essentially all misses.
        assert cache.hits == 0

    def test_working_set_that_fits_hits(self):
        cache = SetAssociativeCache(2048, 128, 16)  # 16 lines, 1 set
        addresses = [i * 128 for i in range(8)]
        for _ in range(4):
            for address in addresses:
                cache.access(address)
        assert cache.hits == 3 * 8

    def test_hashing_spreads_power_of_two_strides(self):
        """Strided GPU addresses must not collapse onto one set."""
        plain = SetAssociativeCache(16 * 1024, 128, 4, hash_sets=False)
        hashed = SetAssociativeCache(16 * 1024, 128, 4, hash_sets=True)
        addresses = [w * 4096 for w in range(24)]
        for _ in range(3):
            for address in addresses:
                plain.access(address)
                hashed.access(address)
        # 24 lines easily fit a 128-line cache — but only when hashed.
        assert hashed.hits > plain.hits

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 128, 4)
        with pytest.raises(ValueError):
            SetAssociativeCache(1024, 128, 0)

    @given(
        seed=st.integers(min_value=0, max_value=9999),
        size=st.sampled_from([1024, 4096, 16384]),
    )
    @settings(max_examples=20, deadline=None)
    def test_hits_plus_misses_invariant(self, seed, size):
        import random

        rng = random.Random(seed)
        cache = SetAssociativeCache(size, 128, 4)
        n = 500
        for _ in range(n):
            cache.access(rng.randrange(0, 1 << 20))
        assert cache.hits + cache.misses == n


class TestMemorySubsystem:
    def test_shared_is_fixed_latency(self):
        mem = MemorySubsystem(TESLA_C2075)
        done = mem.request(0, MemSpace.SHARED, now=100)
        assert done == 100 + TESLA_C2075.shared_latency
        assert mem.stats.shared_accesses == 1

    def test_cold_global_goes_to_dram(self):
        mem = MemorySubsystem(GTX680)
        done = mem.request(1 << 20, MemSpace.GLOBAL, now=0)
        assert done >= GTX680.dram_latency
        assert mem.stats.dram_transactions == 1

    def test_l2_hit_is_cheaper_than_dram(self):
        mem = MemorySubsystem(GTX680)
        first = mem.request(0, MemSpace.GLOBAL, now=0)
        second = mem.request(0, MemSpace.GLOBAL, now=first)
        assert second - first == GTX680.l2_latency

    def test_fermi_l1_caches_global(self):
        mem = MemorySubsystem(TESLA_C2075)
        mem.request(0, MemSpace.GLOBAL, now=0)
        mem.request(0, MemSpace.GLOBAL, now=1000)
        assert mem.stats.l1_hits == 1

    def test_kepler_l1_skips_global_but_caches_local(self):
        mem = MemorySubsystem(GTX680)
        mem.request(0, MemSpace.GLOBAL, now=0)
        mem.request(0, MemSpace.GLOBAL, now=1000)
        assert mem.stats.l1_hits == 0
        mem.request(4096, MemSpace.LOCAL, now=2000)
        mem.request(4096, MemSpace.LOCAL, now=3000)
        assert mem.stats.l1_hits == 1

    def test_dram_bandwidth_serialises(self):
        """Back-to-back misses space out by the service interval."""
        mem = MemorySubsystem(GTX680)
        first = mem.request(0 << 20, MemSpace.GLOBAL, now=0)
        second = mem.request(1 << 20, MemSpace.GLOBAL, now=0)
        assert second - first == GTX680.dram_service_interval

    def test_mshr_limit_backpressures(self):
        arch = GTX680.with_overrides(max_outstanding_memory=4)
        mem = MemorySubsystem(arch)
        for i in range(8):
            mem.request((i + 1) << 20, MemSpace.GLOBAL, now=0)
        assert mem.stats.stalled_requests > 0

    def test_cache_config_changes_l1_size(self):
        small = MemorySubsystem(TESLA_C2075, CacheConfig.SMALL_CACHE)
        large = MemorySubsystem(TESLA_C2075, CacheConfig.LARGE_CACHE)
        assert large.l1.num_sets * large.l1.associativity > (
            small.l1.num_sets * small.l1.associativity
        )
