"""Warp-trace generation tests."""

from repro.isa.instructions import FuncUnit, MemSpace
from repro.sim.interp import LaunchConfig
from repro.sim.trace import (
    MemoryTraits,
    generate_warp_traces,
    trace_summary,
    warp_lines,
)
from tests.helpers import call_kernel, loop_kernel, module_from_asm


class TestWarpLines:
    def test_coalesced_is_one_line(self):
        traits = MemoryTraits(global_lane_stride=4)
        lines = warp_lines(0, MemSpace.GLOBAL, traits)
        assert lines == (0,)

    def test_coalesced_straddling_two_lines(self):
        traits = MemoryTraits(global_lane_stride=4)
        lines = warp_lines(100, MemSpace.GLOBAL, traits)
        assert lines == (0, 128)

    def test_fully_scattered_is_32_lines(self):
        traits = MemoryTraits(global_lane_stride=128)
        lines = warp_lines(0, MemSpace.GLOBAL, traits)
        assert len(lines) == 32

    def test_active_lanes_limits_footprint(self):
        traits = MemoryTraits(global_lane_stride=128, active_lanes=4)
        lines = warp_lines(0, MemSpace.GLOBAL, traits)
        assert len(lines) == 4

    def test_local_always_coalesced(self):
        traits = MemoryTraits(global_lane_stride=128)
        assert len(warp_lines(0, MemSpace.LOCAL, traits)) == 1


class TestGeneration:
    def test_event_mix(self):
        module = loop_kernel()
        launch = LaunchConfig(grid_blocks=4, block_size=64, params={0: 5})
        traces = generate_warp_traces(module, "k", launch, resident_warps=4)
        assert len(traces) == 4
        summary = trace_summary(traces)
        assert summary["mem"] > 0
        assert summary["alu"] > 0
        assert summary["ctrl"] > 0

    def test_loop_trip_count_drives_length(self):
        module = loop_kernel()
        short = generate_warp_traces(
            module, "k", LaunchConfig(block_size=32, params={0: 2}), 1
        )
        long = generate_warp_traces(
            module, "k", LaunchConfig(block_size=32, params={0: 20}), 1
        )
        assert len(long[0]) > len(short[0])

    def test_truncation(self):
        module = loop_kernel()
        launch = LaunchConfig(block_size=32, params={0: 10_000})
        traces = generate_warp_traces(
            module, "k", launch, 1, max_events_per_warp=100
        )
        assert traces[0].truncated
        assert len(traces[0]) == 100

    def test_warps_have_distinct_addresses(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                S2R %v1, %ctaid
                S2R %v2, %ntid
                IMAD %v3, %v1, %v2, %v0
                SHL %v4, %v3, 7
                LD.global %v5, [%v4]
                ST.global [%v4], %v5
                EXIT
            .end
            """
        )
        launch = LaunchConfig(grid_blocks=2, block_size=64)
        traces = generate_warp_traces(module, "k", launch, 4)
        first_lines = [
            next(e for e in t.events if e.unit is FuncUnit.MEM).lines
            for t in traces
        ]
        assert len(set(first_lines)) == 4

    def test_calls_traced_through(self):
        module = call_kernel()
        launch = LaunchConfig(block_size=32)
        traces = generate_warp_traces(module, "k", launch, 1)
        ctrl = sum(1 for e in traces[0].events if e.unit is FuncUnit.CTRL)
        assert ctrl >= 3  # three dynamic calls

    def test_barriers_recorded(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=64
            BB0:
                S2R %v0, %tid
                SHL %v1, %v0, 2
                ST.shared [%v1], %v0
                BAR
                LD.shared %v2, [%v1]
                ST.global [%v1], %v2
                EXIT
            .end
            """
        )
        traces = generate_warp_traces(module, "k", LaunchConfig(block_size=64), 2)
        for t in traces:
            assert sum(1 for e in t.events if e.barrier) == 1
            assert any(e.unit is FuncUnit.SMEM for e in t.events)

    def test_local_addresses_interleaved_per_warp(self):
        module = module_from_asm(
            """
            .module m
            .kernel k shared=0
            BB0:
                S2R %v0, %tid
                ST.local [8], %v0
                LD.local %v1, [8]
                SHL %v2, %v0, 2
                ST.global [%v2], %v1
                EXIT
            .end
            """
        )
        traces = generate_warp_traces(module, "k", LaunchConfig(block_size=128), 4)
        local_lines = [
            next(
                e.lines for e in t.events
                if e.unit is FuncUnit.MEM and e.space is MemSpace.LOCAL
            )
            for t in traces
        ]
        # Same local offset, different warps -> different cache lines.
        assert len(set(local_lines)) == 4
