"""Execution backend tests: the engine's measurement substrate."""

import pytest

from repro.arch import GTX680
from repro.arch.occupancy import calculate_occupancy
from repro.compiler import CompileOptions, compile_binary
from repro.sim import LaunchConfig, simulate_kernel
from repro.sim.analytical import estimate_cycles, profile_kernel
from repro.sim.backend import (
    BACKENDS,
    AnalyticalBackend,
    ExecutionBackend,
    FunctionalBackend,
    MeasurementRequest,
    MeasurementResult,
    TimingBackend,
    get_backend,
)
from tests.helpers import straight_line_kernel
from tests.runtime.test_launcher import pressure_module


@pytest.fixture(scope="module")
def binary():
    return compile_binary(pressure_module(), "k", CompileOptions(arch=GTX680))


@pytest.fixture(scope="module")
def launch():
    return LaunchConfig(grid_blocks=16, block_size=256)


def request_for(version, launch, **kwargs):
    return MeasurementRequest(
        arch=GTX680,
        version=version,
        launch=launch,
        max_events_per_warp=1500,
        **kwargs,
    )


class TestTimingBackend:
    def test_matches_direct_simulation(self, binary, launch):
        version = binary.original
        result = TimingBackend().measure(request_for(version, launch))
        timing = simulate_kernel(
            GTX680,
            version.module,
            version.kernel_name,
            launch,
            regs_per_thread=version.regs_per_thread,
            smem_per_block=version.smem_per_block,
            max_events_per_warp=1500,
        )
        assert result.cycles == timing.total_cycles
        assert result.backend == "timing"
        assert result.energy is not None and result.energy > 0
        assert result.stats["resident_warps"] == timing.resident_warps

    def test_deterministic(self, binary, launch):
        req = request_for(binary.original, launch)
        backend = TimingBackend()
        assert backend.measure(req) == backend.measure(req)

    def test_forced_warps_changes_cycles(self, binary, launch):
        version = binary.original
        low = TimingBackend().measure(
            request_for(version, launch, forced_warps=8)
        )
        high = TimingBackend().measure(
            request_for(version, launch, forced_warps=48)
        )
        assert low.cycles != high.cycles


class TestAnalyticalBackend:
    def test_matches_direct_estimate(self, binary, launch):
        version = binary.original
        result = AnalyticalBackend().measure(request_for(version, launch))
        occ = calculate_occupancy(
            GTX680,
            launch.block_size,
            version.regs_per_thread,
            version.smem_per_block,
        )
        warps_per_block = launch.block_size // GTX680.warp_size
        total = launch.grid_blocks * warps_per_block
        resident = max(warps_per_block, min(occ.active_warps, total))
        profile = profile_kernel(version.module, version.kernel_name)
        estimate = estimate_cycles(profile, GTX680, resident, total)
        assert result.cycles == max(1, round(estimate.estimated_cycles))
        assert result.stats["mwp"] == estimate.mwp
        assert result.stats["cwp"] == estimate.cwp

    def test_cheaper_occupancy_shape(self, binary, launch):
        """Fewer resident warps must not look faster at this profile."""
        version = binary.original
        low = AnalyticalBackend().measure(
            request_for(version, launch, forced_warps=8)
        )
        high = AnalyticalBackend().measure(
            request_for(version, launch, forced_warps=48)
        )
        assert low.cycles >= high.cycles


class TestFunctionalBackend:
    def test_checksum_identical_across_versions(self, binary, launch):
        """All versions of one kernel are semantically equivalent."""
        backend = FunctionalBackend()
        results = [
            backend.measure(request_for(v, launch))
            for v in [binary.original, *binary.versions, *binary.failsafe]
        ]
        checksums = {r.stats["checksum"] for r in results}
        assert len(checksums) == 1
        words = {r.stats["global_words"] for r in results}
        assert words == {results[0].stats["global_words"]}

    def test_cycles_is_thread_count(self):
        module = straight_line_kernel()
        binary = compile_binary(module, "k", CompileOptions(arch=GTX680))
        launch = LaunchConfig(grid_blocks=4, block_size=64)
        result = FunctionalBackend().measure(
            request_for(binary.original, launch)
        )
        assert result.cycles == 4 * 64
        assert result.energy is None

    def test_checksum_changes_with_input(self, binary):
        backend = FunctionalBackend()
        a = backend.measure(
            request_for(binary.original, LaunchConfig(grid_blocks=2, block_size=64))
        )
        b = backend.measure(
            request_for(binary.original, LaunchConfig(grid_blocks=4, block_size=64))
        )
        assert a.stats["checksum"] != b.stats["checksum"]


class TestRegistryAndProtocol:
    def test_all_backends_satisfy_protocol(self):
        for name, cls in BACKENDS.items():
            backend = cls()
            assert isinstance(backend, ExecutionBackend)
            assert backend.name == name

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("timing"), TimingBackend)
        assert isinstance(get_backend("analytical"), AnalyticalBackend)
        assert isinstance(get_backend("functional"), FunctionalBackend)

    def test_get_backend_passthrough(self):
        backend = TimingBackend()
        assert get_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("cuda")

    def test_non_backend_rejected(self):
        with pytest.raises(TypeError):
            get_backend(42)


class TestMeasurementResult:
    def test_payload_round_trip(self):
        result = MeasurementResult(
            backend="timing",
            cycles=1234,
            energy=5.5,
            stats={"waves": 2, "occupancy": 0.75},
        )
        back = MeasurementResult.from_payload(result.to_payload())
        assert back.backend == result.backend
        assert back.cycles == result.cycles
        assert back.energy == result.energy
        assert back.stats == result.stats
        assert back.cached  # from_payload marks the copy as cache-born
        assert not result.cached
