"""SM scheduler tests: latency hiding, barriers, determinism."""

from repro.arch import GTX680, TESLA_C2075
from repro.isa.instructions import FuncUnit, MemSpace
from repro.sim.sm import SMSimulator
from repro.sim.trace import TraceEvent, WarpTrace


def alu(n=1):
    return [TraceEvent(unit=FuncUnit.ALU)] * n


def mem(address, space=MemSpace.GLOBAL):
    return TraceEvent(unit=FuncUnit.MEM, space=space, lines=(address,))


def barrier():
    return TraceEvent(unit=FuncUnit.SYNC, barrier=True)


def trace(events):
    return WarpTrace(events=list(events))


class TestBasics:
    def test_empty(self):
        result = SMSimulator(TESLA_C2075).run([], warps_per_block=8)
        assert result.cycles == 0

    def test_single_warp_alu_chain(self):
        result = SMSimulator(TESLA_C2075).run([trace(alu(10))], 1)
        # Ten dependent ALU ops at ~10 cycles each.
        assert 90 <= result.cycles <= 120
        assert result.instructions == 10

    def test_deterministic(self):
        traces = [
            trace(alu(3) + [mem(i << 20)] + alu(3)) for i in range(8)
        ]
        a = SMSimulator(TESLA_C2075).run(traces, 8)
        traces = [
            trace(alu(3) + [mem(i << 20)] + alu(3)) for i in range(8)
        ]
        b = SMSimulator(TESLA_C2075).run(traces, 8)
        assert a.cycles == b.cycles


class TestLatencyHiding:
    def test_more_warps_hide_memory_latency(self):
        """Same per-warp work: two warps nearly overlap, not serialise."""

        def make(i):
            return trace([mem((i + 1) << 20)] + alu(5))

        one = SMSimulator(TESLA_C2075).run([make(0)], 1)
        two = SMSimulator(TESLA_C2075).run([make(0), make(1)], 2)
        assert two.cycles < one.cycles * 1.5

    def test_ilp_shortens_dependent_chains(self):
        chain = [trace(alu(50))]
        slow = SMSimulator(TESLA_C2075, ilp=1.0).run(chain, 1)
        chain = [trace(alu(50))]
        fast = SMSimulator(TESLA_C2075, ilp=2.0).run(chain, 1)
        assert fast.cycles < slow.cycles

    def test_issue_width_matters_under_load(self):
        """Many ready warps: the wider-issue SM drains them faster."""
        def traces():
            return [trace(alu(40)) for _ in range(32)]

        narrow = SMSimulator(TESLA_C2075).run(traces(), 8)
        wide = SMSimulator(GTX680).run(traces(), 8)
        assert wide.cycles < narrow.cycles


class TestBarriers:
    def test_barrier_synchronises_block(self):
        # Warp 0 is slow before the barrier; warp 1 must wait for it.
        slow = trace(alu(30) + [barrier()] + alu(1))
        fast = trace(alu(1) + [barrier()] + alu(1))
        result = SMSimulator(TESLA_C2075).run([slow, fast], warps_per_block=2)
        assert result.barrier_count == 2
        # Total must reflect the slow warp's pre-barrier chain.
        assert result.cycles >= 300

    def test_blocks_do_not_wait_for_each_other(self):
        slow = trace(alu(30) + [barrier()] + alu(1))
        fast = trace(alu(1) + [barrier()] + alu(1))
        # warps_per_block=1: each warp is its own block; the fast block
        # finishes immediately.
        result = SMSimulator(TESLA_C2075).run([slow, fast], warps_per_block=1)
        two_blocks_cycles = result.cycles
        synced = SMSimulator(TESLA_C2075).run(
            [trace(alu(30) + [barrier()] + alu(1)),
             trace(alu(1) + [barrier()] + alu(1))],
            warps_per_block=2,
        )
        assert two_blocks_cycles <= synced.cycles

    def test_truncated_trace_does_not_deadlock_barrier(self):
        full = trace(alu(2) + [barrier()] + alu(2))
        truncated = trace(alu(1))  # never reaches the barrier
        result = SMSimulator(TESLA_C2075).run([full, truncated], 2)
        assert result.instructions == 6


class TestContention:
    def test_cache_contention_with_many_warps(self):
        """Per-warp working sets that fit alone, thrash together."""

        def make(i):
            events = []
            lines = [i * 4096 + j * 128 for j in range(8)]
            for _ in range(6):
                events.extend(mem(line, MemSpace.LOCAL) for line in lines)
            return trace(events)

        few = SMSimulator(GTX680).run([make(i) for i in range(4)], 8)
        many = SMSimulator(GTX680).run([make(i) for i in range(48)], 8)
        assert few.memory.l1_hit_rate > many.memory.l1_hit_rate
