"""Analytical (Hong & Kim-style) model tests, including agreement with
the event-driven simulator on coarse shape."""

import pytest

from repro.arch import GTX680, TESLA_C2075, occupancy_levels
from repro.bench.kernels import BENCHMARKS
from repro.sim.analytical import (
    estimate_cycles,
    profile_kernel,
    rank_occupancy_levels,
)
from repro.sim.trace import MemoryTraits
from tests.helpers import loop_kernel, straight_line_kernel


class TestProfile:
    def test_counts_weighted_by_loops(self):
        flat = profile_kernel(straight_line_kernel(), "k")
        loopy = profile_kernel(loop_kernel(), "k")
        assert loopy.compute_instructions > flat.compute_instructions

    def test_memory_split_by_space(self):
        spec = BENCHMARKS["srad"]
        profile = profile_kernel(spec.build(), "kernel")
        assert profile.offchip_accesses > 0
        assert profile.shared_accesses > 0

    def test_transactions_follow_traits(self):
        module = straight_line_kernel()
        coalesced = profile_kernel(
            module, "k", MemoryTraits(global_lane_stride=4)
        )
        scattered = profile_kernel(
            module, "k", MemoryTraits(global_lane_stride=128)
        )
        assert scattered.transactions_per_access > coalesced.transactions_per_access


class TestEstimates:
    def _profile(self, name):
        spec = BENCHMARKS[name]
        return profile_kernel(spec.build(), "kernel", spec.workload.traits)

    def test_latency_bound_improves_with_occupancy(self):
        profile = self._profile("bfs")
        few = estimate_cycles(profile, GTX680, 8, 192)
        many = estimate_cycles(profile, GTX680, 48, 192)
        assert many.estimated_cycles < few.estimated_cycles

    def test_bandwidth_bound_flattens(self):
        profile = self._profile("gaussian")
        mid = estimate_cycles(profile, TESLA_C2075, 24, 192)
        full = estimate_cycles(profile, TESLA_C2075, 48, 192)
        ratio = full.estimated_cycles / mid.estimated_cycles
        assert 0.6 <= ratio <= 1.4  # plateau, not a cliff

    def test_mwp_capped_by_resident_warps(self):
        profile = self._profile("bfs")
        est = estimate_cycles(profile, GTX680, 4, 64)
        assert est.mwp <= 4

    def test_invalid_warps_rejected(self):
        profile = self._profile("bfs")
        with pytest.raises(ValueError):
            estimate_cycles(profile, GTX680, 0, 64)


class TestAgreementWithSimulator:
    @pytest.mark.parametrize("name", ["bfs", "gaussian", "srad"])
    def test_model_agrees_on_coarse_shape(self, name):
        """The closed-form model gets the broad shape right: the
        simulator's best level looks near-optimal to the model too, and
        the model sees the low-occupancy penalty."""
        from repro.harness import occupancy_sweep

        spec = BENCHMARKS[name]
        arch = TESLA_C2075
        sweep = occupancy_sweep(name, arch)
        profile = profile_kernel(spec.build(), "kernel", spec.workload.traits)
        levels = [p.warps for p in sweep.points]
        ranked = dict(
            rank_occupancy_levels(
                profile, arch, levels, total_warps=192, ilp=spec.workload.ilp
            )
        )
        model_best = min(ranked.values())
        sim_best = sweep.best.warps
        assert ranked[sim_best] <= model_best * 1.25
        if sweep.points[0].cycles > sweep.best.cycles * 1.5:
            # Simulator sees a low-occupancy penalty: so must the model.
            assert ranked[levels[0]] > model_best * 1.05

    def test_model_misses_fine_structure(self):
        """And the reason Orion tunes dynamically: the static model is
        blind to the spill costs of re-generated binaries, so it rates
        full occupancy as good as 50% where the simulator's
        imageDenoising bell (Figure 1) turns back up by ~2x."""
        spec = BENCHMARKS["imageDenoising"]
        profile = profile_kernel(spec.build(), "kernel", spec.workload.traits)
        ranked = dict(
            rank_occupancy_levels(
                profile, GTX680, occupancy_levels(GTX680, 256), total_warps=192
            )
        )
        assert ranked[64] <= ranked[32] * 1.05  # no penalty visible
