"""Whole-GPU timing and energy model tests."""

import pytest

from repro.arch import GTX680, TESLA_C2075, calculate_occupancy
from repro.sim.energy import gpu_power, kernel_energy
from repro.sim.gpu import LaunchError, simulate_kernel
from repro.sim.interp import LaunchConfig
from tests.helpers import module_from_asm


def streaming_module(trips=20):
    return module_from_asm(
        f"""
        .module stream
        .kernel k shared=0
        BB0:
            S2R %v0, %tid
            S2R %v1, %ctaid
            S2R %v2, %ntid
            IMAD %v3, %v1, %v2, %v0
            SHL %v4, %v3, 7
            MOV %v5, 0
            MOV %v6, 0.0
            BRA HEAD
        HEAD:
            ISET.lt %v7, %v5, {trips}
            CBR %v7, BODY, DONE
        BODY:
            IMAD %v8, %v5, 16384, %v4
            LD.global %v9, [%v8]
            FFMA %v6, %v9, 2.0, %v6
            IADD %v5, %v5, 1
            BRA HEAD
        DONE:
            ST.global [%v4], %v6
            EXIT
        .end
        """
    )


class TestSimulateKernel:
    def test_runs_and_reports(self):
        module = streaming_module()
        timing = simulate_kernel(
            GTX680, module, "k",
            LaunchConfig(grid_blocks=32, block_size=256),
            regs_per_thread=16,
        )
        assert timing.total_cycles > 0
        assert timing.resident_warps == 64
        assert timing.occupancy.occupancy == 1.0

    def test_unlaunchable_config_raises(self):
        module = streaming_module()
        with pytest.raises(LaunchError):
            simulate_kernel(
                GTX680, module, "k", LaunchConfig(grid_blocks=1, block_size=256),
                regs_per_thread=64,
            )

    def test_occupancy_reduces_waves(self):
        module = streaming_module()
        launch = LaunchConfig(grid_blocks=112, block_size=256)
        low = simulate_kernel(
            TESLA_C2075, module, "k", launch, regs_per_thread=16, forced_warps=8
        )
        high = simulate_kernel(
            TESLA_C2075, module, "k", launch, regs_per_thread=16, forced_warps=48
        )
        assert low.waves > high.waves
        # For this latency-bound kernel, more resident warps win overall.
        assert high.total_cycles < low.total_cycles

    def test_forced_warps_capped_by_launch(self):
        module = streaming_module()
        timing = simulate_kernel(
            GTX680, module, "k", LaunchConfig(grid_blocks=1, block_size=64),
            regs_per_thread=16, forced_warps=64,
        )
        assert timing.resident_warps == 2

    def test_registers_lower_occupancy(self):
        module = streaming_module()
        launch = LaunchConfig(grid_blocks=64, block_size=256)
        lean = simulate_kernel(
            GTX680, module, "k", launch, regs_per_thread=20
        )
        fat = simulate_kernel(
            GTX680, module, "k", launch, regs_per_thread=63
        )
        assert lean.occupancy.active_warps > fat.occupancy.active_warps


class TestEnergy:
    def test_power_grows_with_occupancy(self):
        low = calculate_occupancy(TESLA_C2075, 256, 20, 24 * 1024)
        high = calculate_occupancy(TESLA_C2075, 256, 20)
        assert high.active_warps > low.active_warps
        assert gpu_power(TESLA_C2075, high) > gpu_power(TESLA_C2075, low)

    def test_energy_is_power_times_cycles(self):
        module = streaming_module(trips=5)
        timing = simulate_kernel(
            TESLA_C2075, module, "k",
            LaunchConfig(grid_blocks=14, block_size=256),
            regs_per_thread=16,
        )
        report = kernel_energy(TESLA_C2075, timing)
        assert report.energy == pytest.approx(report.power * timing.total_cycles)

    def test_lower_occupancy_at_flat_runtime_saves_energy(self):
        """The Figure 13 mechanism, in isolation."""
        full = calculate_occupancy(TESLA_C2075, 256, 16)
        half = calculate_occupancy(TESLA_C2075, 256, 16, 16 * 1024)
        assert half.active_warps < full.active_warps
        cycles = 1_000_000
        assert (
            gpu_power(TESLA_C2075, half) * cycles
            < gpu_power(TESLA_C2075, full) * cycles
        )
