"""Soft-limit swap-cost model in the timing simulator.

The oversubscribed (``soft-limit``) strategy admits more resident
warps than the register file physically backs; the simulator charges a
deterministic per-interval latency for the implied register swapping.
These tests pin the contract: the reference strategies never pay the
surcharge, the soft strategy pays it exactly when registers overflow,
and the charge is identical between the pure-Python and vectorized
simulator loops (the accelerator-identity invariant).
"""

import pytest

from repro.arch import GTX680, calculate_occupancy
from repro.sim.gpu import simulate_kernel
from repro.sim.interp import LaunchConfig
from repro.sim.sm import SMSimulator
from tests.sim.test_gpu import streaming_module

LAUNCH = LaunchConfig(grid_blocks=64, block_size=256)
REGS = 63  # register-limited on the GTX680: oversubscription matters


def _run(strategy, regs=REGS):
    return simulate_kernel(
        GTX680,
        streaming_module(),
        "k",
        LAUNCH,
        regs_per_thread=regs,
        strategy=strategy,
    )


class TestStrategyTiming:
    def test_default_and_reference_identical(self):
        default = _run(None)
        explicit = _run("local-spill")
        assert default.total_cycles == explicit.total_cycles
        assert default.resident_warps == explicit.resident_warps

    def test_smem_spill_timing_matches_reference(self):
        # smem-spill changes *allocation*, not the timing model: for
        # the same realized resources the simulator agrees.
        assert _run("smem-spill").total_cycles == _run(None).total_cycles

    def test_soft_limit_hosts_more_warps_and_pays_for_them(self):
        hard = _run(None)
        soft = _run("soft-limit")
        assert soft.resident_warps > hard.resident_warps
        # More warps, each periodically stalled: the trade-off must be
        # visible in the cycle count, not silently absorbed.
        assert soft.total_cycles != hard.total_cycles

    def test_soft_limit_is_deterministic(self):
        assert _run("soft-limit").total_cycles == _run("soft-limit").total_cycles

    def test_soft_limit_noop_when_registers_are_not_the_limiter(self):
        # At 21 regs/thread the scheduler caps occupancy; the virtual
        # register file is irrelevant and timing must be unchanged.
        assert _run("soft-limit", regs=21).total_cycles == _run(
            None, regs=21
        ).total_cycles


class TestSimulatorSurcharge:
    def test_negative_swap_parameters_rejected(self):
        with pytest.raises(ValueError):
            SMSimulator(GTX680, swap_interval=-1)
        with pytest.raises(ValueError):
            SMSimulator(GTX680, swap_latency=-1)

    def test_surcharge_slows_the_sm(self):
        from repro.isa.instructions import FuncUnit
        from repro.sim.trace import TraceEvent, WarpTrace

        def traces():
            return [
                WarpTrace(events=[TraceEvent(unit=FuncUnit.ALU)] * 16)
                for _ in range(8)
            ]

        base = SMSimulator(GTX680).run(traces(), warps_per_block=8)
        swapped = SMSimulator(
            GTX680, swap_interval=4, swap_latency=GTX680.l2_latency
        ).run(traces(), warps_per_block=8)
        assert swapped.cycles > base.cycles
        # Same instruction stream — only the issue schedule moved.
        assert swapped.instructions == base.instructions
