"""Cross-architecture tuning differentials (Maxwell/Pascal descriptors).

The portability claim behind :mod:`repro.arch.specs`: pointing the same
pipeline at a different descriptor must (a) keep every realized version
functionally identical to the source module and (b) actually *change*
the tuning plan where the resource tables differ — a 96KB dedicated
shared-memory SM pads differently than Kepler's 48KB split, and
Maxwell's 255-register encoding cap changes the spill frontier.
"""

import pytest

from repro.arch import GTX680, GTX980, GTX1080
from repro.bench.kernels import BENCHMARKS
from repro.harness.experiments import compiled
from repro.sim.interp import LaunchConfig, run_kernel

#: Kernels whose plans are known to move across generations: dxtc is
#: shared-memory bound (conservative padding scales with the 96KB
#: array), srad is occupancy-padded (pad sizes follow capacity).
KERNELS = ("dxtc", "srad")

LAUNCH = LaunchConfig(grid_blocks=1, block_size=32)


def _memory():
    return {i * 4: float(i % 7 + 1) for i in range(4096)}


def _plan(binary):
    return [
        (v.label, v.regs_per_thread, v.smem_per_block, v.achieved_warps)
        for v in binary.versions
    ]


@pytest.mark.parametrize("name", KERNELS)
@pytest.mark.parametrize("arch", [GTX980, GTX1080], ids=lambda a: a.name)
def test_every_version_matches_the_original(name, arch):
    spec = BENCHMARKS[name]
    binary = compiled(spec, arch)
    reference = run_kernel(spec.build(), LAUNCH, global_memory=_memory())
    assert reference, "source module stored nothing"
    for version in (*binary.versions, *binary.failsafe):
        actual = run_kernel(
            version.outcome.module, LAUNCH, global_memory=_memory()
        )
        assert actual == reference, (
            f"{name}/{version.label} on {arch.name} diverges from source"
        )


@pytest.mark.parametrize("name", KERNELS)
def test_plan_differs_from_kepler(name):
    kepler = _plan(compiled(BENCHMARKS[name], GTX680))
    maxwell = _plan(compiled(BENCHMARKS[name], GTX980))
    assert maxwell != kepler, (
        f"{name}: GTX980 plan identical to GTX680 — descriptor unused?"
    )


def test_versions_stay_within_arch_limits():
    from repro.arch import CacheConfig

    for name in KERNELS:
        for arch in (GTX980, GTX1080):
            binary = compiled(BENCHMARKS[name], arch)
            for version in binary.versions:
                assert (
                    version.regs_per_thread <= arch.max_registers_per_thread
                )
                assert version.smem_per_block <= arch.shared_memory_bytes(
                    CacheConfig.SMALL_CACHE
                )
