"""smem-spill across the full benchmark suite: equivalence and payoff.

The acceptance bar for a non-default strategy is the same differential
oracle the reference compile answers to — every realized version of
every benchmark, interpreter-exact against the source module — plus
evidence the strategy is *worth having*: at least one kernel's tuned
winner must actually change when spills move to shared memory.
"""

import pytest

from repro.arch.specs import GTX680
from repro.bench.kernels import BENCHMARKS
from repro.harness.experiments import bench_suite, compiled
from repro.sim.interp import LaunchConfig, run_kernel

LAUNCH = LaunchConfig(grid_blocks=1, block_size=32)


def _memory():
    return {i * 4: float(i % 7 + 1) for i in range(4096)}


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_every_smem_spill_version_matches_the_original(name):
    spec = BENCHMARKS[name]
    binary = compiled(spec, GTX680, strategy="smem-spill")
    assert binary.strategies() == ("smem-spill",)
    reference = run_kernel(spec.build(), LAUNCH, global_memory=_memory())
    assert reference, "source module stored nothing"
    for version in (*binary.versions, *binary.failsafe):
        actual = run_kernel(
            version.outcome.module, LAUNCH, global_memory=_memory()
        )
        assert actual == reference, (
            f"{name}/{version.label} diverges from the source module"
        )


def test_smem_spill_moves_a_tuned_winner():
    """dxtc: the shared-frame spill variant beats the local-spill one."""
    (_, local), = bench_suite(GTX680, only=["dxtc"], strategy="local-spill")
    (_, smem), = bench_suite(GTX680, only=["dxtc"], strategy="smem-spill")
    assert local.final_label != smem.final_label
    assert smem.final_version.strategy == "smem-spill"
    assert local.final_version.strategy == "local-spill"
    # Not just a relabel: the winning binary times differently.
    assert smem.total_cycles != local.total_cycles
