"""KernelBuilder tests."""

import pytest

from repro.bench.builder import KernelBuilder
from repro.sim.interp import LaunchConfig, run_kernel


class TestBuilder:
    def test_fresh_registers_are_distinct(self):
        b = KernelBuilder("m")
        regs = b.regs(5)
        assert len(set(regs)) == 5

    def test_global_thread_id_computes_gid(self):
        b = KernelBuilder("m")
        gid = b.global_thread_id()
        out = b.scaled(gid, 2)
        b.emit(f"ST.global [{out}], {gid}")
        b.emit("EXIT")
        module = b.build()
        result = run_kernel(module, LaunchConfig(grid_blocks=2, block_size=4))
        for block in range(2):
            for tid in range(4):
                g = block * 4 + tid
                assert result[4 * g] == g

    def test_counted_loop_runs_trip_count_times(self):
        b = KernelBuilder("m")
        gid = b.global_thread_id()
        addr = b.scaled(gid, 2)
        total = b.reg()
        b.emit(f"MOV {total}, 0")
        b.counted_loop(7)
        b.emit(f"IADD {total}, {total}, 1")
        b.close_loop()
        b.emit(f"ST.global [{addr}], {total}")
        b.emit("EXIT")
        module = b.build()
        result = run_kernel(module, LaunchConfig(block_size=2))
        assert result[0] == 7

    def test_nested_loops(self):
        b = KernelBuilder("m")
        gid = b.global_thread_id()
        addr = b.scaled(gid, 2)
        total = b.reg()
        b.emit(f"MOV {total}, 0")
        b.counted_loop(3)
        b.counted_loop(4)
        b.emit(f"IADD {total}, {total}, 1")
        b.close_loop()
        b.close_loop()
        b.emit(f"ST.global [{addr}], {total}")
        b.emit("EXIT")
        result = run_kernel(b.build(), LaunchConfig(block_size=1))
        assert result[0] == 12

    def test_live_chain_folds_values(self):
        b = KernelBuilder("m")
        gid = b.global_thread_id()
        addr = b.scaled(gid, 2)
        values = []
        for i in range(3):
            r = b.reg()
            b.emit(f"MOV {r}, {float(i + 1)}")
            values.append(r)
        out = b.live_chain(values, coeff=1.0)
        b.emit(f"ST.global [{addr}], {out}")
        b.emit("EXIT")
        result = run_kernel(b.build(), LaunchConfig(block_size=1))
        # FFMA fold with coeff 1: 1 + 2 + 3.
        assert result[0] == pytest.approx(6.0)

    def test_device_function(self):
        b = KernelBuilder("m")
        gid = b.global_thread_id()
        addr = b.scaled(gid, 2)
        out = b.reg()
        b.emit(f"CALL {out}, double_it({gid})")
        b.emit(f"ST.global [{addr}], {out}")
        b.emit("EXIT")
        b.device_function("double_it", 1, ["IADD %v1, %v0, %v0", "RET %v1"])
        result = run_kernel(b.build(), LaunchConfig(block_size=4))
        for tid in range(4):
            assert result[4 * tid] == 2 * tid

    def test_shared_bytes_propagated(self):
        b = KernelBuilder("m", shared_bytes=512)
        b.emit("EXIT")
        assert b.build().kernel().shared_bytes == 512

    def test_built_module_validates(self):
        b = KernelBuilder("m")
        b.emit("EXIT")
        b.build().validate()  # no exception
