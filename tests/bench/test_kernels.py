"""Benchmark-suite structural tests (Table 2 properties + validity)."""

import pytest

from repro.bench.kernels import (
    BENCHMARKS,
    downward_benchmarks,
    figure5_benchmarks,
    table2_benchmarks,
    upward_benchmarks,
)
from repro.ir.callgraph import count_static_calls
from repro.regalloc import minimal_budget
from repro.sim.interp import LaunchConfig, run_kernel


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_kernel_builds_and_validates(name):
    module = BENCHMARKS[name].build()
    module.validate()
    assert module.kernel() is not None


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_kernel_executes_functionally(name):
    """Every benchmark must run end to end in the interpreter."""
    module = BENCHMARKS[name].build()
    launch = LaunchConfig(grid_blocks=1, block_size=32)
    memory = {i * 4: float(i % 7 + 1) for i in range(4096)}
    out = run_kernel(module, launch, global_memory=memory)
    assert out  # it stored something


@pytest.mark.parametrize(
    "spec", table2_benchmarks(), ids=lambda s: s.name
)
def test_table2_registers(spec):
    module = spec.build()
    measured = minimal_budget(module, module.kernel().name, upper_bound=96)
    assert measured == spec.paper_regs


@pytest.mark.parametrize(
    "spec", table2_benchmarks(), ids=lambda s: s.name
)
def test_table2_calls_and_smem(spec):
    module = spec.build()
    assert count_static_calls(module, module.kernel().name) == spec.paper_calls
    assert (module.kernel().shared_bytes > 0) == spec.paper_smem


class TestGroups:
    def test_twelve_table2_benchmarks(self):
        assert len(table2_benchmarks()) == 12

    def test_seven_upward(self):
        names = {s.name for s in upward_benchmarks()}
        assert names == {
            "cfd", "dxtc", "FDTD3d", "hotspot", "imageDenoising",
            "particles", "recursiveGaussian",
        }

    def test_five_downward(self):
        names = {s.name for s in downward_benchmarks()}
        assert names == {"backprop", "bfs", "gaussian", "srad", "streamcluster"}

    def test_figure5_includes_heartwall(self):
        names = [s.name for s in figure5_benchmarks()]
        assert "heartwall" in names
        assert len(names) == 7

    def test_particles_not_dynamically_tunable(self):
        assert not BENCHMARKS["particles"].workload.can_tune

    def test_backprop_forced_to_original(self):
        assert BENCHMARKS["backprop"].force_original

    def test_iterative_workloads_can_tune(self):
        for name in ("cfd", "srad", "bfs"):
            assert BENCHMARKS[name].workload.can_tune


class TestDirections:
    @pytest.mark.parametrize("spec", upward_benchmarks(), ids=lambda s: s.name)
    def test_upward_group_exceeds_threshold(self, spec):
        """The Fig. 11 group has max-live >= the Kepler threshold (32)."""
        from repro.compiler import kernel_max_live

        module = spec.build()
        assert kernel_max_live(module, module.kernel().name) >= 32

    @pytest.mark.parametrize("spec", downward_benchmarks(), ids=lambda s: s.name)
    def test_downward_group_below_threshold(self, spec):
        from repro.compiler import kernel_max_live

        module = spec.build()
        assert kernel_max_live(module, module.kernel().name) < 32
