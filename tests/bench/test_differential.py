"""Differential testing of the whole benchmark suite.

Every realized version of every benchmark — each tuning candidate and
each fail-safe version — must compute exactly what the original
(``versions[0]``) computes under the functional interpreter, which in
turn must match the unallocated source module.  Allocation moves values
between slots; it never changes arithmetic, so equality is exact.
"""

import pytest

from repro.arch.specs import GTX680
from repro.bench.kernels import BENCHMARKS
from repro.harness.experiments import compiled
from repro.sim.interp import LaunchConfig, run_kernel

LAUNCH = LaunchConfig(grid_blocks=1, block_size=32)


def _memory():
    return {i * 4: float(i % 7 + 1) for i in range(4096)}


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_every_version_matches_the_original(name):
    spec = BENCHMARKS[name]
    binary = compiled(spec, GTX680)
    reference = run_kernel(
        spec.build(), LAUNCH, global_memory=_memory()
    )
    assert reference, "source module stored nothing"
    for version in (*binary.versions, *binary.failsafe):
        actual = run_kernel(
            version.outcome.module, LAUNCH, global_memory=_memory()
        )
        assert actual == reference, (
            f"{name}/{version.label} diverges from the source module"
        )
