"""Occupancy sweep for any benchmark — the paper's Figure 1/2/10/14/15 view.

Generates Orion code at every occupancy level for one of the fourteen
built-in benchmarks, times each level on the simulated GPU, and prints
the normalized-runtime curve.

Run:  python examples/occupancy_sweep.py [benchmark] [gtx680|c2075]
e.g.  python examples/occupancy_sweep.py imageDenoising gtx680
      python examples/occupancy_sweep.py srad c2075
"""

import sys

from repro.arch import GTX680, TESLA_C2075
from repro.bench.kernels import BENCHMARKS
from repro.harness import occupancy_sweep

ARCHS = {"gtx680": GTX680, "c2075": TESLA_C2075}


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "imageDenoising"
    arch_name = sys.argv[2].lower() if len(sys.argv) > 2 else "gtx680"
    if benchmark not in BENCHMARKS:
        names = ", ".join(sorted(BENCHMARKS))
        raise SystemExit(f"unknown benchmark {benchmark!r}; pick one of: {names}")
    if arch_name not in ARCHS:
        raise SystemExit("architecture must be 'gtx680' or 'c2075'")

    arch = ARCHS[arch_name]
    spec = BENCHMARKS[benchmark]
    print(f"sweeping {benchmark} on {arch.name} "
          f"(block={spec.workload.block_size}, grid={spec.workload.grid_blocks})")
    result = occupancy_sweep(benchmark, arch)
    print(result.render(to="best"))
    best = result.best
    worst = result.worst
    print(
        f"\nbest: occupancy {best.occupancy:.3f} ({best.warps} warps); "
        f"worst/best ratio: {worst.cycles / best.cycles:.2f}x"
    )


if __name__ == "__main__":
    main()
