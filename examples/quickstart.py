"""Quickstart: compile a GPU kernel with Orion and let the runtime tune it.

Walks the whole paper pipeline on a small register-hungry kernel:

1. write a kernel in ORAS assembly;
2. compile it — Orion picks a tuning direction from max-live and emits
   a handful of candidate binaries at different occupancy levels;
3. execute a kernel loop through the Orion runtime, which trials the
   candidates and locks in the best one within a few iterations;
4. compare against the occupancy-oblivious nvcc-style baseline.

Run:  python examples/quickstart.py
"""

from repro.arch import GTX680
from repro.compiler import CompileOptions, compile_binary, nvcc_baseline
from repro.isa.assembly import parse_module
from repro.runtime import OrionRuntime, Workload
from repro.sim import LaunchConfig


def build_kernel_source(live_values: int = 48, loop_iters: int = 8) -> str:
    """A kernel holding ``live_values`` registers live through a loop."""
    lines = [
        "S2R %v0, %tid",
        "S2R %v1, %ctaid",
        "S2R %v2, %ntid",
        "IMAD %v3, %v1, %v2, %v0",
        "SHL %v4, %v3, 7",
        "MOV %v60, 0",
    ]
    for i in range(live_values):
        lines.append(f"LD.global %v{5 + i}, [%v4+{4 * i}]")
    lines.append("BRA HEAD")
    body = [
        "HEAD:",
        f"    ISET.lt %v99, %v60, {loop_iters}",
        "    CBR %v99, BODY, DONE",
        "BODY:",
        # Streaming loads each iteration: latency the GPU can only hide
        # with enough resident warps — the upward-tuning motivation.
        "    IMAD %v90, %v60, 16384, %v4",
        "    LD.global %v91, [%v90+65536]",
        "    LD.global %v92, [%v90+65664]",
        "    LD.global %v93, [%v90+65792]",
    ]
    accum = "%v91"
    body.append(f"    FFMA %v100, %v92, 1.01, {accum}")
    body.append("    FFMA %v101, %v93, 1.01, %v100")
    accum = "%v101"
    for i in range(1, live_values):
        body.append(f"    FFMA %v{101 + i}, %v{5 + i}, 1.01, {accum}")
        accum = f"%v{101 + i}"
    body += [
        "    IADD %v60, %v60, 1",
        "    BRA HEAD",
        "DONE:",
        f"    ST.global [%v4], {accum}",
        "    EXIT",
    ]
    header = ".module quickstart\n.kernel main shared=0\nBB0:\n"
    return header + "\n".join(f"    {l}" for l in lines) + "\n" + "\n".join(body) + "\n.end"


def main() -> None:
    module = parse_module(build_kernel_source())
    module.validate()

    print("== compiling with Orion ==")
    binary = compile_binary(module, "main", CompileOptions(arch=GTX680))
    print(f"tuning direction: {binary.direction}")
    for version in binary.versions + binary.failsafe:
        print(
            f"  {version.label:28s} occupancy={version.occupancy:5.3f} "
            f"regs/thread={version.regs_per_thread:2d} "
            f"smem/block={version.smem_per_block}B "
            f"spilled={version.outcome.spilled_variables}"
        )

    print("\n== running 12 kernel-loop iterations under the Orion runtime ==")
    workload = Workload(
        launch=LaunchConfig(grid_blocks=96, block_size=256),
        iterations=12,
        max_events_per_warp=2500,
    )
    runtime = OrionRuntime(GTX680, binary)
    report = runtime.execute(workload)
    for record in report.records[:6]:
        print(f"  iter {record.iteration}: {record.label:28s} {record.cycles} cycles")
    print(f"  ... converged after {report.iterations_to_converge} iterations")
    print(f"  final version: {report.final_label}")

    print("\n== versus the nvcc-style baseline ==")
    nvcc = nvcc_baseline(module, "main", GTX680)
    nvcc_total = runtime.measure_version(nvcc, workload)
    speedup = nvcc_total / report.total_cycles
    print(f"  nvcc:  {nvcc_total} cycles at occupancy {nvcc.occupancy:.3f}")
    print(f"  Orion: {report.total_cycles} cycles (tuning overhead included)")
    print(f"  speedup: {speedup:.3f}x")


if __name__ == "__main__":
    main()
