"""Analytical model vs simulator, plus the optimisation-headroom report.

Two of the repository's extensions in one walkthrough:

1. the Hong&Kim-style closed-form model (``repro.sim.analytical``)
   predicts the occupancy curve from static binary features alone —
   compare it against the event-driven simulator to see where static
   prediction is enough and where Orion's dynamic feedback earns its
   keep (spill costs of re-generated binaries are invisible statically);
2. the occupancy-headroom analysis (paper Section 4.2's closing
   discussion): the plateau of equivalent occupancy levels tells an
   optimiser how many extra registers per thread (e.g. for loop
   unrolling) are free.

Run:  python examples/performance_model.py [benchmark]
"""

import sys

from repro.arch import TESLA_C2075
from repro.bench.kernels import BENCHMARKS
from repro.harness import occupancy_headroom, occupancy_sweep
from repro.sim.analytical import profile_kernel, rank_occupancy_levels


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "srad"
    if name not in BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}")
    spec = BENCHMARKS[name]
    arch = TESLA_C2075

    print(f"== {name} on {arch.name} ==\n")
    module = spec.build()
    profile = profile_kernel(module, module.kernel().name, spec.workload.traits)
    print("static profile (loop-weighted, per warp):")
    print(f"  compute instructions : {profile.compute_instructions:.0f}")
    print(f"  off-chip accesses    : {profile.offchip_accesses:.0f}"
          f"  (x{profile.transactions_per_access:.0f} transactions each)")
    print(f"  shared accesses      : {profile.shared_accesses:.0f}\n")

    sweep = occupancy_sweep(name, arch)
    levels = [p.warps for p in sweep.points]
    predicted = dict(
        rank_occupancy_levels(
            profile, arch, levels, total_warps=192, ilp=spec.workload.ilp
        )
    )
    best_pred = min(predicted.values())
    best_sim = sweep.best.cycles
    print("occupancy   simulator   analytical   (both normalized to best)")
    for point in sweep.points:
        print(
            f"   {point.occupancy:5.2f}     {point.cycles / best_sim:6.2f}"
            f"      {predicted[point.warps] / best_pred:6.2f}"
        )

    report = occupancy_headroom(sweep, arch, spec.workload.block_size)
    print(f"\nheadroom report (5% tolerance):")
    print(f"  best level               : {report.best_warps} warps")
    print(f"  lowest equivalent level  : {report.lowest_equivalent_warps} warps")
    print(f"  registers used           : {report.registers_used}/thread")
    print(f"  registers available there: {report.registers_available}/thread")
    print(f"  -> unrolling leeway      : {report.extra_registers} registers "
          "per thread, for free")


if __name__ == "__main__":
    main()
