"""Bring your own kernel: allocation correctness, visualised.

Writes a kernel with device-function calls and values held across them,
then shows what Orion's middle end does to it under a tight register
budget:

* graph-coloured register assignment;
* spilling plus shared-memory promotion;
* the compressible stack's save/restore moves around calls, laid out by
  the Kuhn–Munkres movement minimiser;

and *proves* the transformation is semantics-preserving by running both
programs through the functional interpreter and comparing global memory.

Run:  python examples/custom_kernel.py
"""

from repro.isa.assembly import parse_module
from repro.regalloc import allocate_module
from repro.sim import LaunchConfig, run_kernel

SOURCE = """
.module custom
.kernel main shared=0
BB0:
    S2R %v0, %tid
    SHL %v1, %v0, 2
    LD.global %v2, [%v1]
    FADD %v3, %v2, 1.0
    FADD %v4, %v2, 2.0
    FADD %v5, %v2, 3.0
    CALL %v6, smooth(%v2)
    FADD %v7, %v6, %v3
    CALL %v8, smooth(%v7)
    FADD %v9, %v8, %v4
    CALL %v10, smooth(%v9)
    FADD %v11, %v10, %v5
    ST.global [%v1], %v11
    EXIT
.end
.func smooth args=1 returns=1
BB0:
    FMUL %v1, %v0, 0.5
    CALL %v2, bias(%v1)
    RET %v2
.end
.func bias args=1 returns=1
BB0:
    FADD %v1, %v0, 0.125
    RET %v1
.end
"""


def main() -> None:
    module = parse_module(SOURCE)
    module.validate()

    launch = LaunchConfig(grid_blocks=1, block_size=8)
    memory = {4 * t: float(t + 1) for t in range(8)}
    expected = run_kernel(module, launch, global_memory=memory)

    for budget in (16, 10, 8):
        outcome = allocate_module(module, "main", budget, block_size=8)
        actual = run_kernel(outcome.module, launch, global_memory=memory)
        matches = all(
            abs(actual[k] - expected[k]) < 1e-9 for k in expected
        )
        print(f"budget={budget:2d} registers:")
        print(f"  registers used : {outcome.registers_per_thread}")
        print(f"  spilled values : {outcome.spilled_variables} "
              f"({outcome.local_bytes_per_thread}B local per thread)")
        print(f"  stack moves    : {outcome.stack_moves} "
              "(compressible-stack saves; restores mirror them)")
        assert outcome.interproc is not None
        bases = ", ".join(
            f"{name}@{base}" for name, base in sorted(outcome.interproc.bases.items())
        )
        print(f"  frame bases    : {bases}")
        print(f"  semantics      : {'identical' if matches else 'BROKEN!'}")
        assert matches
        print()

    print("final allocated code for 'main' at budget=8:")
    print(outcome.module.functions["main"])


if __name__ == "__main__":
    main()
