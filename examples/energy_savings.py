"""Downward tuning for resource and energy savings (paper Section 4.2).

Low-pressure kernels already run at maximum occupancy, so Orion tunes
them *down*: unused shared-memory padding lowers the resident-warp
count without recompiling.  When the runtime is flat (srad, gaussian)
that halves register-file pressure — and with it, power — for free.

Run:  python examples/energy_savings.py
"""

from repro.arch import TESLA_C2075, calculate_occupancy
from repro.bench.kernels import BENCHMARKS
from repro.compiler import CompileOptions, compile_binary
from repro.harness import occupancy_sweep
from repro.runtime import OrionRuntime, Workload
from repro.sim.energy import gpu_power


def main() -> None:
    arch = TESLA_C2075
    for name in ("gaussian", "srad", "streamcluster"):
        spec = BENCHMARKS[name]
        module = spec.build()
        binary = compile_binary(
            module,
            module.kernel().name,
            CompileOptions(arch=arch, block_size=spec.workload.block_size),
        )
        print(f"== {name} (direction: {binary.direction}) ==")

        runtime = OrionRuntime(arch, binary)
        workload = Workload(
            launch=spec.workload.launch(),
            iterations=spec.workload.iterations,
            traits=spec.workload.traits,
            ilp=spec.workload.ilp,
            max_events_per_warp=spec.workload.max_events_per_warp,
        )
        report = runtime.execute(workload)
        original = binary.original
        final = report.final_version

        def occ(version):
            return calculate_occupancy(
                arch,
                spec.workload.block_size,
                version.regs_per_thread,
                version.smem_per_block,
            )

        occ_orig, occ_final = occ(original), occ(final)
        power_orig, power_final = (
            gpu_power(arch, occ_orig),
            gpu_power(arch, occ_final),
        )
        cycles_orig = runtime.measure_version(original, workload)
        cycles_final = runtime.measure_version(final, workload)
        print(f"  original: occupancy {occ_orig.occupancy:.3f}, "
              f"{occ_orig.allocated_registers} regs/SM")
        print(f"  final:    occupancy {occ_final.occupancy:.3f}, "
              f"{occ_final.allocated_registers} regs/SM ({final.label})")
        reg_saving = 1 - occ_final.allocated_registers / occ_orig.allocated_registers
        runtime_delta = cycles_final / cycles_orig - 1
        energy_saving = 1 - (power_final * cycles_final) / (power_orig * cycles_orig)
        print(f"  register saving: {reg_saving:6.1%}")
        print(f"  runtime change : {runtime_delta:+6.1%}")
        print(f"  energy saving  : {energy_saving:6.1%}")

        sweep = occupancy_sweep(name, arch)
        pairs = sweep.normalized(to="max")
        curve = "  ".join(f"{o:.2f}:{r:.2f}" for o, r in pairs)
        print(f"  occupancy curve (runtime vs full occupancy): {curve}\n")


if __name__ == "__main__":
    main()
