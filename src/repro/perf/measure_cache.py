"""Content-addressed measurement cache (the engine's memo).

A measurement is fully determined by the version's module bytes (plus
its register/shared-memory envelope — they set the occupancy), the
backend, the architecture, the launch geometry, the memory traits, and
the simulator knobs; both simulators are deterministic, so the result
can be addressed by a SHA-256 digest of exactly those inputs and shared
across tuning sessions, experiments, and — through the optional disk
tier — processes.

The storage layers on :class:`~repro.perf.cache.CompileCache` (same
two-tier memory/disk design, same atomic-write discipline, same
best-effort degradation); payloads are the JSON form of a
``MeasurementResult``.  The disk tier is enabled by the
``ORION_MEASURE_CACHE_DIR`` environment variable or an explicit
directory argument.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.perf.cache import CacheStats, CompileCache

_KEY_PREFIX = b"orion-measure-v2\x00"


def measurement_cache_key(
    version_hash: str,
    backend_name: str,
    arch_name: str,
    grid_blocks: int,
    block_size: int,
    params: dict,
    cache_config: str,
    traits: object,
    ilp: float,
    max_events_per_warp: int,
    global_memory: dict | None = None,
    forced_warps: int | None = None,
    strategy: str = "local-spill",
    arch_fingerprint: str = "",
) -> str:
    """SHA-256 content address of one measurement.

    ``traits`` is fingerprinted by its (frozen-dataclass) repr, the
    same trick the compile cache plays with ``CompileOptions``: adding
    a trait field invalidates naturally.  ``strategy`` is the version's
    allocation strategy (redundant with ``version_hash`` today, which
    already folds in non-default strategies — kept explicit so the key
    never depends on that hashing detail) and ``arch_fingerprint`` is
    the architecture's descriptor fingerprint, so edits to an
    architecture's resource table invalidate rather than alias.
    """
    fingerprint = "\x00".join(
        [
            version_hash,
            backend_name,
            arch_name,
            str(grid_blocks),
            str(block_size),
            repr(sorted(params.items())),
            cache_config,
            repr(traits),
            repr(ilp),
            str(max_events_per_warp),
            repr(sorted(global_memory.items())) if global_memory else "-",
            str(forced_warps),
            strategy,
            arch_fingerprint,
        ]
    )
    digest = hashlib.sha256()
    digest.update(_KEY_PREFIX)
    digest.update(fingerprint.encode())
    return digest.hexdigest()


class MeasurementCache:
    """Two-tier content-addressed store of measurement payloads.

    Payloads are JSON dicts (see ``MeasurementResult.to_payload``); the
    cache itself is agnostic to their schema, which keeps this module
    free of simulator imports.
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        if directory is None:
            directory = os.environ.get("ORION_MEASURE_CACHE_DIR") or None
        self._store = CompileCache(directory, metrics_label="measure")

    @property
    def stats(self) -> CacheStats:
        return self._store.stats

    @property
    def directory(self):
        return self._store.directory

    def get(self, key: str) -> dict | None:
        payload = self._store.lookup(key)
        if payload is None:
            return None
        try:
            return json.loads(payload)
        except ValueError:
            return None  # corrupt disk entry degrades to a miss

    def put(self, key: str, payload: dict) -> None:
        self._store.store(key, json.dumps(payload, sort_keys=True).encode())

    def clear(self) -> None:
        """Drop the memory tier and reset counters (disk untouched)."""
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)
