"""Wall-clock phase accumulators for the compilation pipeline.

A :class:`PhaseTimers` instance accumulates (calls, seconds) per named
phase.  The process-wide :data:`TIMERS` instance is what the pipeline
charges; the harness and CLI read it back through
:func:`repro.harness.reporting.format_phase_report`.

Timing *regions* are owned by the span API
(:func:`repro.obs.spans.span`), which charges :data:`TIMERS` exactly
once per outermost same-named span — the old ``phase()`` context
manager double-counted nested/re-entrant regions and has been deleted
in favour of that single path.  This module keeps only the passive
store: thread-safe, because spans charge it from the execution engine's
scheduler threads too.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass
class PhaseStats:
    """Accumulated cost of one pipeline phase."""

    calls: int = 0
    seconds: float = 0.0


class PhaseTimers:
    """Named wall-clock accumulators (perf_counter based, thread-safe)."""

    def __init__(self) -> None:
        self.phases: dict[str, PhaseStats] = {}
        self._lock = threading.Lock()

    def add(self, name: str, seconds: float) -> None:
        """Charge an externally-measured duration to ``name``."""
        with self._lock:
            stats = self.phases.setdefault(name, PhaseStats())
            stats.calls += 1
            stats.seconds += seconds

    def total_seconds(self) -> float:
        with self._lock:
            return sum(stats.seconds for stats in self.phases.values())

    def snapshot(self) -> dict[str, PhaseStats]:
        """A point-in-time copy, safe to render while timing continues."""
        with self._lock:
            return {
                name: PhaseStats(stats.calls, stats.seconds)
                for name, stats in self.phases.items()
            }

    def reset(self) -> None:
        with self._lock:
            self.phases.clear()


#: Process-wide timers the compilation pipeline charges (via spans).
TIMERS = PhaseTimers()
