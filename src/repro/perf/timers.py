"""Wall-clock phase timers for the compilation pipeline.

A :class:`PhaseTimers` instance accumulates (calls, seconds) per named
phase.  The process-wide :data:`TIMERS` instance is what the pipeline
charges; the harness and CLI read it back through
:func:`repro.harness.reporting.format_phase_report`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class PhaseStats:
    """Accumulated cost of one pipeline phase."""

    calls: int = 0
    seconds: float = 0.0


class PhaseTimers:
    """Named wall-clock accumulators (perf_counter based)."""

    def __init__(self) -> None:
        self.phases: dict[str, PhaseStats] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Charge the enclosed block to ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            stats = self.phases.setdefault(name, PhaseStats())
            stats.calls += 1
            stats.seconds += time.perf_counter() - start

    def add(self, name: str, seconds: float) -> None:
        """Charge an externally-measured duration to ``name``."""
        stats = self.phases.setdefault(name, PhaseStats())
        stats.calls += 1
        stats.seconds += seconds

    def total_seconds(self) -> float:
        return sum(stats.seconds for stats in self.phases.values())

    def snapshot(self) -> dict[str, PhaseStats]:
        """A point-in-time copy, safe to render while timing continues."""
        return {
            name: PhaseStats(stats.calls, stats.seconds)
            for name, stats in self.phases.items()
        }

    def reset(self) -> None:
        self.phases.clear()


#: Process-wide timers the compilation pipeline charges.
TIMERS = PhaseTimers()
