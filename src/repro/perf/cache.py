"""Content-addressed compile cache.

A compilation is fully determined by the encoded input module, the
kernel being compiled, and the :class:`~repro.compiler.pipeline.CompileOptions`
knobs (the allocator is deterministic — see
``tests/compiler/test_determinism.py``), so its result can be addressed
by a SHA-256 digest of exactly those inputs.  Worker count is *not*
part of the key: parallel and sequential compiles produce identical
bytes.

Two tiers:

* **memory** — a plain dict of ``key -> serialized MultiVersionBinary``
  bytes, always on.  Hits deserialize a fresh object, so callers can
  mutate results freely.
* **disk** — optional, enabled by a cache directory (the
  ``ORION_CACHE_DIR`` environment variable or an explicit argument).
  Entries are written atomically (temp file + rename) under
  ``<dir>/<key[:2]>/<key>.ormv`` and survive across processes.  All
  disk I/O is best-effort: a failed read or write degrades to a miss,
  never an error.

Invalidation is automatic: any change to the module bytes or options
changes the key.  Stale entries are simply never looked up again; a
directory can be deleted wholesale at any time.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

_KEY_PREFIX = b"orion-compile-v1\x00"


def compile_cache_key(module_bytes: bytes, kernel_name: str, options) -> str:
    """SHA-256 content address of one compilation.

    ``options`` is a :class:`repro.compiler.pipeline.CompileOptions`
    (typed loosely to avoid an import cycle); its frozen-dataclass repr
    — including the full architecture descriptor — is the fingerprint,
    so adding a knob or changing a hardware constant invalidates
    naturally.
    """
    digest = hashlib.sha256()
    digest.update(_KEY_PREFIX)
    digest.update(kernel_name.encode())
    digest.update(b"\x00")
    digest.update(repr(options).encode())
    digest.update(b"\x00")
    digest.update(module_bytes)
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`CompileCache`."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


def _count_cache(cache: str, result: str) -> None:
    """Charge one lookup outcome to the process-wide metrics registry.

    Imported lazily: :mod:`repro.obs` sits above this module in the
    import graph (its span machinery reaches back into the runtime),
    so a module-level import here would be a cycle.
    """
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "orion_cache_lookups_total",
        "Content-addressed cache lookups by cache and outcome.",
    ).inc(cache=cache, result=result)


class CompileCache:
    """Two-tier (memory + optional disk) content-addressed byte store.

    ``metrics_label`` names this cache in the metrics registry — the
    compile cache reports as ``cache="compile"``; the measurement cache
    reuses this store under ``cache="measure"``.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        metrics_label: str = "compile",
    ) -> None:
        self._memory: dict[str, bytes] = {}
        self.directory = Path(directory) if directory else None
        self.metrics_label = metrics_label
        self.stats = CacheStats()

    # -- lookup --------------------------------------------------------
    def lookup(self, key: str) -> bytes | None:
        payload = self._memory.get(key)
        if payload is not None:
            self.stats.memory_hits += 1
            _count_cache(self.metrics_label, "memory_hit")
            return payload
        payload = self._disk_read(key)
        if payload is not None:
            self._memory[key] = payload
            self.stats.disk_hits += 1
            _count_cache(self.metrics_label, "disk_hit")
            return payload
        self.stats.misses += 1
        _count_cache(self.metrics_label, "miss")
        return None

    def store(self, key: str, payload: bytes) -> None:
        self._memory[key] = payload
        self._disk_write(key, payload)
        self.stats.stores += 1
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "orion_cache_stores_total",
            "Content-addressed cache stores by cache.",
        ).inc(cache=self.metrics_label)

    def clear(self) -> None:
        """Drop the memory tier and reset counters (disk is untouched)."""
        self._memory.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._memory)

    # -- disk tier -----------------------------------------------------
    def _entry_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / key[:2] / f"{key}.ormv"

    def _disk_read(self, key: str) -> bytes | None:
        path = self._entry_path(key)
        if path is None:
            return None
        try:
            return path.read_bytes()
        except OSError:
            return None

    def _disk_write(self, key: str, payload: bytes) -> None:
        path = self._entry_path(key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, temp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".ormv"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(temp, path)
            except BaseException:
                try:
                    os.unlink(temp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # best-effort: a full or read-only disk is a non-event


_default: CompileCache | None = None


def default_cache() -> CompileCache:
    """The process-wide cache the pipeline consults.

    Created on first use; picks up a disk tier from ``ORION_CACHE_DIR``
    at creation time.
    """
    global _default
    if _default is None:
        _default = CompileCache(os.environ.get("ORION_CACHE_DIR") or None)
    return _default


def reset_default_cache() -> None:
    """Forget the process-wide cache (tests; env-var changes)."""
    global _default
    _default = None
