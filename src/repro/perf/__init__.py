"""Compilation-performance infrastructure: caching and phase timing.

The pipeline (:mod:`repro.compiler.pipeline`) consults a
content-addressed compile cache before doing any work and charges each
stage to a process-wide phase timer, so the harness and CLI can report
where compile time goes and how often the cache pays off.
"""

from repro.perf.cache import (
    CacheStats,
    CompileCache,
    compile_cache_key,
    default_cache,
    reset_default_cache,
)
from repro.perf.measure_cache import MeasurementCache, measurement_cache_key
from repro.perf.timers import PhaseStats, PhaseTimers, TIMERS

__all__ = [
    "CacheStats",
    "CompileCache",
    "MeasurementCache",
    "PhaseStats",
    "PhaseTimers",
    "TIMERS",
    "compile_cache_key",
    "default_cache",
    "measurement_cache_key",
    "reset_default_cache",
]
