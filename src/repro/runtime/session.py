"""Per-workload tuning sessions (the unit the engine schedules).

A :class:`TuningSession` owns everything specific to one workload: the
multi-version binary, the Fig. 9 :class:`~repro.runtime.adaptation.DynamicTuner`,
and the iteration state (records, running total, convergence point).
It decides *what* to run each iteration; the
:class:`~repro.runtime.engine.ExecutionEngine` decides *how* it is
measured (which backend, which cache) and schedules many sessions
concurrently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.multiversion import MultiVersionBinary
from repro.compiler.realize import KernelVersion
from repro.runtime.adaptation import DynamicTuner
from repro.runtime.splitting import pieces_for_tuning, split_launch, splittable
from repro.sim.interp import LaunchConfig, Value
from repro.sim.trace import MemoryTraits


@dataclass
class Workload:
    """A kernel's dynamic execution profile."""

    launch: LaunchConfig
    iterations: int = 1
    traits: MemoryTraits = field(default_factory=MemoryTraits)
    global_memory: dict[int, Value] | None = None
    ilp: float = 1.0
    max_events_per_warp: int = 6000
    #: Per-iteration relative work (e.g. bfs frontier sizes).  When set,
    #: iteration ``i`` launches ``round(grid_blocks * work_profile[i])``
    #: blocks and the tuner compares work-normalised runtimes — the
    #: paper's future-work fix for iteration-varying kernels.
    work_profile: list[float] | None = None

    def work_at(self, iteration: int) -> float:
        if not self.work_profile:
            return 1.0
        return self.work_profile[iteration % len(self.work_profile)]


@dataclass
class IterationRecord:
    iteration: int
    label: str
    cycles: int


@dataclass
class ExecutionReport:
    """What happened across the whole workload."""

    total_cycles: int
    final_version: KernelVersion
    records: list[IterationRecord]
    iterations_to_converge: int | None
    was_split: bool = False

    @property
    def final_label(self) -> str:
        return self.final_version.label


def scaled_launch(launch: LaunchConfig, work: float) -> LaunchConfig:
    """The launch for one iteration doing ``work`` × the nominal blocks."""
    if work == 1.0:
        return launch
    return LaunchConfig(
        grid_blocks=max(1, round(launch.grid_blocks * work)),
        block_size=launch.block_size,
        params=dict(launch.params),
    )


def iteration_launches(
    binary: MultiVersionBinary, workload: Workload
) -> tuple[list[LaunchConfig], bool]:
    """The per-iteration launches of a workload (split if needed).

    An application loop supplies natural iterations; a single big
    launch of a tunable kernel is *split* (Section 3.4) so the tuner
    gets one trial per candidate.
    """
    if workload.iterations > 1:
        return [workload.launch] * workload.iterations, False
    if binary.can_tune and splittable(workload.launch):
        pieces = pieces_for_tuning(workload.launch, binary.version_count())
        if pieces > 1:
            return (
                [piece.launch for piece in split_launch(workload.launch, pieces)],
                True,
            )
    return [workload.launch], False


class TuningSession:
    """One workload being tuned: binary + tuner + iteration state."""

    def __init__(
        self,
        binary: MultiVersionBinary,
        workload: Workload,
        name: str | None = None,
        slowdown_tolerance: float = 0.02,
    ) -> None:
        self.binary = binary
        self.workload = workload
        self.name = name or binary.kernel_name
        self.tuner = DynamicTuner(binary, slowdown_tolerance)
        self.records: list[IterationRecord] = []
        self.total_cycles = 0
        self.converge_at: int | None = 0 if self.tuner.converged else None
        self.report: ExecutionReport | None = None
        #: label of the stored winner this session warm-started from
        #: (``None``: cold — the tuner walked candidates normally)
        self.warm_started_from: str | None = None
        #: traceback text when the engine isolated a failure in this
        #: session (see ``ExecutionEngine.run_many``)
        self.error: str | None = None

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.report is not None

    def warm_start(self, winner_label: str) -> bool:
        """Pre-converge the tuner to a stored winner, if it still exists.

        Returns ``False`` (and changes nothing) when no version of this
        binary carries ``winner_label`` — a stale store entry must never
        force a version the binary cannot launch.
        """
        if self.tuner.converged:
            return False
        for version in (*self.binary.versions, *self.binary.failsafe):
            if version.label == winner_label:
                self.tuner.force_final(version)
                self.converge_at = 0
                self.warm_started_from = winner_label
                return True
        return False

    def iteration_launches(self) -> tuple[list[LaunchConfig], bool]:
        return iteration_launches(self.binary, self.workload)

    def record(self, iteration: int, label: str, cycles: int) -> None:
        self.records.append(
            IterationRecord(iteration=iteration, label=label, cycles=cycles)
        )
        self.total_cycles += cycles

    def finalize(self, was_split: bool) -> ExecutionReport:
        final = self.tuner.final_version or self.tuner.next_version()
        self.report = ExecutionReport(
            total_cycles=self.total_cycles,
            final_version=final,
            records=self.records,
            iterations_to_converge=self.converge_at,
            was_split=was_split,
        )
        self._count_finalize()
        return self.report

    def _count_finalize(self) -> None:
        """Charge convergence behaviour to the metrics registry."""
        from repro.obs.metrics import get_registry

        registry = get_registry()
        converged = self.converge_at is not None
        registry.counter(
            "orion_sessions_total", "Finalized tuning sessions."
        ).inc(converged="yes" if converged else "no")
        if converged:
            registry.histogram(
                "orion_tuner_iterations_to_convergence",
                "Iterations a session's tuner needed to converge.",
            ).observe(self.converge_at)
