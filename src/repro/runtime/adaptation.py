"""Dynamic occupancy selection (paper Section 3.4, Fig. 9).

A feedback state machine over kernel-loop iterations:

* iteration 1 runs the *original* version;
* each following iteration runs the next candidate in the compiler's
  predicted direction, as long as performance does not degrade —
  upward search tolerates a 2% *slowdown* band (the plateau case, where
  equal performance at higher occupancy is not worth further climbing),
  downward search stops on any worse runtime;
* on degradation the *previous* version is finalised; running out of
  candidates finalises the best one observed;
* if the final choice is the original itself, the prediction was wrong
  and the fail-safe (opposite-direction) candidates are trialled before
  locking in.

In practice the paper reports convergence within about three
iterations; tests here assert the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.multiversion import MultiVersionBinary
from repro.compiler.realize import KernelVersion


@dataclass
class TrialRecord:
    iteration: int
    label: str
    runtime: float


class DynamicTuner:
    """The Fig. 9 selection state machine.

    Usage per kernel-loop iteration::

        version = tuner.next_version()
        runtime = launch_and_time(version)
        tuner.report(runtime)
    """

    def __init__(
        self,
        binary: MultiVersionBinary,
        slowdown_tolerance: float = 0.02,
    ) -> None:
        self.binary = binary
        self.slowdown_tolerance = slowdown_tolerance
        self.iteration = 0
        self.final_version: KernelVersion | None = None
        self.history: list[TrialRecord] = []
        self._candidates = list(binary.versions)
        self._failsafe = list(binary.failsafe)
        self._cursor = 0
        self._in_failsafe = False
        self._failsafe_baseline: float | None = None
        self._pending: KernelVersion | None = None
        if not binary.can_tune:
            # Statically selected: one version, locked from the start.
            self.final_version = self._candidates[0]

    # ------------------------------------------------------------------
    @property
    def converged(self) -> bool:
        return self.final_version is not None

    @property
    def iterations_to_converge(self) -> int | None:
        if not self.converged:
            return None
        return self.iteration

    def next_version(self) -> KernelVersion:
        """The version to launch this iteration."""
        if self.final_version is not None:
            return self.final_version
        pool = self._failsafe if self._in_failsafe else self._candidates
        self._pending = pool[self._cursor]
        return self._pending

    def report(self, runtime: float, work: float = 1.0) -> None:
        """Feed back the measured runtime of the launched version.

        ``work`` normalises iteration-varying workloads (the paper's
        future-work suggestion for bfs: "calculating the amount of work
        at each iteration and applying a multiplicative factor to the
        runtime") — comparisons use ``runtime / work``.
        """
        if runtime < 0:
            raise ValueError("runtime cannot be negative")
        if work <= 0:
            raise ValueError("work must be positive")
        self.iteration += 1
        if self.final_version is not None:
            return
        assert self._pending is not None
        normalized = runtime / work
        self.history.append(
            TrialRecord(self.iteration, self._pending.label, normalized)
        )
        pool = self._failsafe if self._in_failsafe else self._candidates

        if len(self.history) >= 2:
            if self._in_failsafe and self._cursor == 0:
                # First fail-safe trial: the bar to clear is the
                # *original* version's runtime, recorded at misprediction
                # time — not the degraded trial that triggered the switch
                # (that one is exactly what the fail-safe must beat by
                # construction, so comparing against it would accept
                # fail-safe versions slower than the original).
                assert self._failsafe_baseline is not None
                previous = self._failsafe_baseline
            else:
                previous = self.history[-2].runtime
            # Fig. 9 stops the upward search on >2% slowdown and the
            # downward search on "worse runtime"; on real hardware the
            # latter implicitly means worse beyond measurement noise, so
            # a small tolerance applies there too.
            tolerance = (
                self.slowdown_tolerance
                if self.binary.direction == "increasing"
                else self.slowdown_tolerance / 2
            )
            degraded = normalized > previous * (1 + tolerance)
            if degraded:
                if self._cursor >= 1:
                    self._finalize(pool[self._cursor - 1])
                else:
                    # First fail-safe trial already lost: keep original.
                    self._finalize(self._candidates[0])
                return
        if self._cursor + 1 < len(pool):
            self._cursor += 1
            return
        # Tried every occupancy in this direction.  Among the versions
        # within the tolerance band of the best runtime, lock the one
        # with the lowest occupancy — the paper's stated goal is "the
        # lowest occupancy that gives the best performance" (resource
        # and energy saving at equal speed).
        best_runtime = min(r.runtime for r in self.history)
        band = best_runtime * (1 + self.slowdown_tolerance)
        eligible_labels = {r.label for r in self.history if r.runtime <= band}
        seen: set[str] = set()
        eligible: list[KernelVersion] = []
        for v in (*pool, *self._candidates):
            if v.label in eligible_labels and v.label not in seen:
                seen.add(v.label)
                eligible.append(v)
        chosen = min(eligible, key=lambda v: (v.achieved_warps, v.label))
        self._finalize(chosen)

    def force_final(self, version: KernelVersion) -> None:
        """Lock in ``version`` without walking any candidates.

        The warm-start path (:mod:`repro.service`): a persisted winner
        for this exact (kernel, context, work-shape) key replaces the
        Fig. 9 search entirely.  Only legal before the first trial —
        overriding a search in flight would corrupt the history the
        fail-safe logic reasons about.
        """
        if self.iteration or self.history:
            raise RuntimeError("cannot warm-start a tuner mid-search")
        self.final_version = version

    # ------------------------------------------------------------------
    def _finalize(self, version: KernelVersion) -> None:
        # Misprediction check: if the search never moved off the
        # original, try the fail-safe direction before locking in.
        if (
            not self._in_failsafe
            and self._failsafe
            and version is self._candidates[0]
        ):
            self._in_failsafe = True
            self._cursor = 0
            # Iteration 1 always ran the original; its normalized
            # runtime is the baseline the fail-safe trials must beat.
            self._failsafe_baseline = self.history[0].runtime
            return
        self.final_version = version
