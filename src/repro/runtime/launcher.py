"""The Orion runtime: executes a workload while tuning occupancy.

Couples the Fig. 9 :class:`~repro.runtime.adaptation.DynamicTuner` to
the timing simulator: each kernel-loop iteration launches the tuner's
current candidate, measures it, and feeds the runtime back.  Iterations
after convergence run the finalised version.  Kernels without a loop
are *split* into multiple smaller launches to create iterations
(Section 3.4), and the measured total always includes the cost of the
trial iterations — the paper's Orion-Select bars do the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.specs import CacheConfig, GpuArchitecture
from repro.compiler.multiversion import MultiVersionBinary
from repro.compiler.realize import KernelVersion
from repro.runtime.adaptation import DynamicTuner
from repro.runtime.splitting import pieces_for_tuning, split_launch, splittable
from repro.sim.gpu import simulate_kernel
from repro.sim.interp import LaunchConfig, Value
from repro.sim.trace import MemoryTraits


@dataclass
class Workload:
    """A kernel's dynamic execution profile."""

    launch: LaunchConfig
    iterations: int = 1
    traits: MemoryTraits = field(default_factory=MemoryTraits)
    global_memory: dict[int, Value] | None = None
    ilp: float = 1.0
    max_events_per_warp: int = 6000
    #: Per-iteration relative work (e.g. bfs frontier sizes).  When set,
    #: iteration ``i`` launches ``round(grid_blocks * work_profile[i])``
    #: blocks and the tuner compares work-normalised runtimes — the
    #: paper's future-work fix for iteration-varying kernels.
    work_profile: list[float] | None = None

    def work_at(self, iteration: int) -> float:
        if not self.work_profile:
            return 1.0
        return self.work_profile[iteration % len(self.work_profile)]


@dataclass
class IterationRecord:
    iteration: int
    label: str
    cycles: int


@dataclass
class ExecutionReport:
    """What happened across the whole workload."""

    total_cycles: int
    final_version: KernelVersion
    records: list[IterationRecord]
    iterations_to_converge: int | None
    was_split: bool = False

    @property
    def final_label(self) -> str:
        return self.final_version.label


class OrionRuntime:
    """Executes multi-version binaries with dynamic occupancy adaptation."""

    def __init__(
        self,
        arch: GpuArchitecture,
        binary: MultiVersionBinary,
        cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
        slowdown_tolerance: float = 0.02,
    ) -> None:
        self.arch = arch
        self.binary = binary
        self.cache_config = cache_config
        self.slowdown_tolerance = slowdown_tolerance

    # ------------------------------------------------------------------
    def execute(self, workload: Workload) -> ExecutionReport:
        """Run the whole workload, tuning as it goes."""
        launches, was_split = self._iteration_launches(workload)
        tuner = DynamicTuner(self.binary, self.slowdown_tolerance)
        cache: dict[tuple[str, int, int], int] = {}
        records: list[IterationRecord] = []
        total = 0
        converge_at: int | None = (
            0 if tuner.converged else None
        )

        for i, launch in enumerate(launches):
            work = workload.work_at(i)
            if work != 1.0 and not was_split:
                launch = LaunchConfig(
                    grid_blocks=max(1, round(launch.grid_blocks * work)),
                    block_size=launch.block_size,
                    params=dict(launch.params),
                )
            version = tuner.next_version()
            key = (version.label, launch.grid_blocks, launch.block_size)
            cycles = cache.get(key)
            if cycles is None:
                cycles = self._time_version(version, launch, workload)
                cache[key] = cycles
            tuner.report(float(cycles), work=work)
            if converge_at is None and tuner.converged:
                converge_at = i + 1
            records.append(
                IterationRecord(iteration=i + 1, label=version.label, cycles=cycles)
            )
            total += cycles

        final = tuner.final_version or tuner.next_version()
        return ExecutionReport(
            total_cycles=total,
            final_version=final,
            records=records,
            iterations_to_converge=converge_at,
            was_split=was_split,
        )

    def measure_version(
        self, version: KernelVersion, workload: Workload
    ) -> int:
        """Cycles for the full workload pinned to one version (no tuning)."""
        launches, _ = self._iteration_launches(workload)
        per_launch: dict[int, int] = {}
        total = 0
        for launch in launches:
            cycles = per_launch.get(launch.grid_blocks)
            if cycles is None:
                cycles = self._time_version(version, launch, workload)
                per_launch[launch.grid_blocks] = cycles
            total += cycles
        return total

    # ------------------------------------------------------------------
    def _iteration_launches(
        self, workload: Workload
    ) -> tuple[list[LaunchConfig], bool]:
        if workload.iterations > 1:
            return [workload.launch] * workload.iterations, False
        if self.binary.can_tune and splittable(workload.launch):
            pieces = pieces_for_tuning(
                workload.launch, self.binary.version_count()
            )
            if pieces > 1:
                return (
                    [piece.launch for piece in split_launch(workload.launch, pieces)],
                    True,
                )
        return [workload.launch], False

    def _time_version(
        self,
        version: KernelVersion,
        launch: LaunchConfig,
        workload: Workload,
    ) -> int:
        timing = simulate_kernel(
            self.arch,
            version.module,
            self.binary.kernel_name,
            launch,
            regs_per_thread=version.regs_per_thread,
            smem_per_block=version.smem_per_block,
            cache_config=self.cache_config,
            traits=workload.traits,
            ilp=workload.ilp,
            max_events_per_warp=workload.max_events_per_warp,
            global_memory=workload.global_memory,
        )
        return timing.total_cycles
