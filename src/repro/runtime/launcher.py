"""The Orion runtime facade (one workload, one kernel, tuned).

Historically this module owned the whole execution loop; the loop now
lives in the engine architecture —
:class:`~repro.runtime.session.TuningSession` (per-workload tuner +
iteration state) scheduled by an
:class:`~repro.runtime.engine.ExecutionEngine` (pluggable backend,
shared measurement cache, telemetry).  :class:`OrionRuntime` remains as
the convenient single-workload entry point: it builds a session per
``execute`` call and drives it through an engine it owns (or one you
hand it, to share caches and telemetry across runtimes).

``Workload``, ``ExecutionReport`` and ``IterationRecord`` are
re-exported here for compatibility; they live in
:mod:`repro.runtime.session`.
"""

from __future__ import annotations

from repro.arch.specs import CacheConfig, GpuArchitecture
from repro.compiler.multiversion import MultiVersionBinary
from repro.compiler.realize import KernelVersion
from repro.runtime.engine import ExecutionEngine
from repro.runtime.session import (
    ExecutionReport,
    IterationRecord,
    TuningSession,
    Workload,
)

__all__ = [
    "ExecutionReport",
    "IterationRecord",
    "OrionRuntime",
    "Workload",
]


class OrionRuntime:
    """Executes multi-version binaries with dynamic occupancy adaptation."""

    def __init__(
        self,
        arch: GpuArchitecture,
        binary: MultiVersionBinary,
        cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
        slowdown_tolerance: float = 0.02,
        backend: str = "timing",
        engine: ExecutionEngine | None = None,
    ) -> None:
        self.arch = arch
        self.binary = binary
        self.cache_config = cache_config
        self.slowdown_tolerance = slowdown_tolerance
        self.engine = engine or ExecutionEngine(
            arch, backend=backend, cache_config=cache_config
        )

    # ------------------------------------------------------------------
    def execute(self, workload: Workload) -> ExecutionReport:
        """Run the whole workload, tuning as it goes."""
        return self.engine.run(
            TuningSession(
                self.binary,
                workload,
                slowdown_tolerance=self.slowdown_tolerance,
            )
        )

    def measure_version(
        self, version: KernelVersion, workload: Workload
    ) -> int:
        """Cycles for the full workload pinned to one version (no tuning)."""
        return self.engine.measure_pinned(self.binary, version, workload)
