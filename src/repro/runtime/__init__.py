"""The Orion runtime: Fig. 9 dynamic adaptation, kernel splitting, and
the workload launcher (paper Section 3.4)."""

from repro.runtime.adaptation import DynamicTuner, TrialRecord
from repro.runtime.launcher import (
    ExecutionReport,
    IterationRecord,
    OrionRuntime,
    Workload,
)
from repro.runtime.splitting import (
    SplitLaunch,
    pieces_for_tuning,
    split_launch,
    splittable,
)

__all__ = [
    "DynamicTuner",
    "ExecutionReport",
    "IterationRecord",
    "OrionRuntime",
    "SplitLaunch",
    "TrialRecord",
    "Workload",
    "pieces_for_tuning",
    "split_launch",
    "splittable",
]
