"""The Orion runtime: Fig. 9 dynamic adaptation, kernel splitting, the
execution engine (pluggable backends, concurrent sessions, measurement
cache), and structured telemetry (paper Section 3.4)."""

from repro.runtime.adaptation import DynamicTuner, TrialRecord
from repro.runtime.engine import ExecutionEngine, MeasurementPool
from repro.runtime.launcher import OrionRuntime
from repro.runtime.session import (
    ExecutionReport,
    IterationRecord,
    TuningSession,
    Workload,
    iteration_launches,
    scaled_launch,
)
from repro.runtime.splitting import (
    SplitLaunch,
    pieces_for_tuning,
    split_launch,
    splittable,
)
from repro.runtime.telemetry import (
    EventKind,
    InMemorySink,
    JsonlSink,
    TelemetryEvent,
    TelemetryHub,
)

__all__ = [
    "DynamicTuner",
    "EventKind",
    "ExecutionEngine",
    "ExecutionReport",
    "InMemorySink",
    "IterationRecord",
    "JsonlSink",
    "MeasurementPool",
    "OrionRuntime",
    "SplitLaunch",
    "TelemetryEvent",
    "TelemetryHub",
    "TrialRecord",
    "TuningSession",
    "Workload",
    "iteration_launches",
    "pieces_for_tuning",
    "scaled_launch",
    "split_launch",
    "splittable",
]
