"""Structured runtime telemetry: typed events, pluggable sinks.

Every observable step of the execution engine — a session starting, a
tuning trial, a measurement-cache hit, a backend invocation — is one
:class:`TelemetryEvent` pushed through a :class:`TelemetryHub` to any
number of sinks.  Tests attach an :class:`InMemorySink` and assert on
the event stream; operators set ``ORION_TRACE_FILE`` (or the CLI's
``--trace``) to stream the same events as JSON lines to disk.

Events carry a process-local monotonic sequence number instead of a
wall-clock timestamp, so traces of a deterministic run are themselves
deterministic and diffable.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Protocol


class EventKind(str, Enum):
    """The telemetry vocabulary of the execution engine."""

    ENGINE_START = "engine_start"
    ENGINE_FINISH = "engine_finish"
    SESSION_START = "session_start"
    ITERATION = "iteration"
    TRIAL = "trial"
    CONVERGED = "converged"
    SESSION_FINALIZED = "session_finalized"
    CACHE_HIT = "cache_hit"
    CACHE_MISS = "cache_miss"
    BACKEND_INVOKE = "backend_invoke"


@dataclass(frozen=True)
class TelemetryEvent:
    """One typed, ordered engine event."""

    seq: int
    kind: EventKind
    session: str | None
    data: dict = field(default_factory=dict)

    def to_json(self) -> str:
        record = {"seq": self.seq, "kind": self.kind.value}
        if self.session is not None:
            record["session"] = self.session
        record["data"] = self.data
        return json.dumps(record, sort_keys=True)


class TelemetrySink(Protocol):
    """Anything that can receive engine events."""

    def emit(self, event: TelemetryEvent) -> None:
        ...

    def close(self) -> None:
        ...


class InMemorySink:
    """Collects events in a list (the test sink)."""

    def __init__(self) -> None:
        self.events: list[TelemetryEvent] = []

    def emit(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def of(self, kind: EventKind) -> list[TelemetryEvent]:
        return [e for e in self.events if e.kind is kind]

    def count(self, kind: EventKind) -> int:
        return len(self.of(kind))


class JsonlSink:
    """Appends one JSON line per event to a file (the trace sink).

    The file is opened lazily on the first event and every line is
    flushed, so a trace of a crashed run is still complete up to the
    crash.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None

    def emit(self, event: TelemetryEvent) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        self._handle.write(event.to_json() + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TelemetryHub:
    """Fans events out to sinks; owns the sequence counter.

    Thread-safe: concurrent sessions interleave their events into one
    totally ordered stream (the sequence number is the order).
    """

    def __init__(self, *sinks: TelemetrySink) -> None:
        self._sinks: list[TelemetrySink] = list(sinks)
        self._seq = 0
        self._lock = threading.Lock()
        self.counts: dict[EventKind, int] = {}

    def add_sink(self, sink: TelemetrySink) -> None:
        self._sinks.append(sink)

    def emit(
        self, kind: EventKind, session: str | None = None, **data
    ) -> TelemetryEvent:
        with self._lock:
            self._seq += 1
            event = TelemetryEvent(
                seq=self._seq, kind=kind, session=session, data=data
            )
            self.counts[kind] = self.counts.get(kind, 0) + 1
            for sink in self._sinks:
                sink.emit(event)
        return event

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()
