"""Structured runtime telemetry: typed events, pluggable sinks.

Every observable step of the execution engine — a session starting, a
tuning trial, a measurement-cache hit, a backend invocation — is one
:class:`TelemetryEvent` pushed through a :class:`TelemetryHub` to any
number of sinks.  Tests attach an :class:`InMemorySink` and assert on
the event stream; operators set ``ORION_TRACE_FILE`` (or the CLI's
``--trace``) to stream the same events as JSON lines to disk.

Events carry a process-local monotonic sequence number instead of a
wall-clock timestamp, so traces of a deterministic run are themselves
deterministic and diffable.  The one wall-clock quantity spans need —
their duration — rides in the *separate, optional* ``wall`` field,
which the hub drops entirely when durations are suppressed
(``record_wall=False`` or ``ORION_TRACE_WALL=0``); with durations
suppressed, repeat traces of a deterministic run are byte-identical.

The hub also allocates **span ids**, scoped per session label: the
``SPAN_START``/``SPAN_END`` events of one session number their spans
1, 2, 3, … independently of every other session, so a session's event
subsequence is invariant under scheduler interleaving.

While a distributed trace context (:mod:`repro.obs.tracectx`) is
installed, every emitted event additionally gains a ``trace`` field in
its data — the cross-process identifier ``repro trace merge`` joins
per-node files by.  With no context installed nothing is added, so
traces of untraced runs stay byte-identical.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Protocol


class EventKind(str, Enum):
    """The telemetry vocabulary of the execution engine."""

    ENGINE_START = "engine_start"
    ENGINE_FINISH = "engine_finish"
    SESSION_START = "session_start"
    ITERATION = "iteration"
    TRIAL = "trial"
    CONVERGED = "converged"
    SESSION_FINALIZED = "session_finalized"
    SESSION_FAILED = "session_failed"
    WARM_START = "warm_start"
    CACHE_HIT = "cache_hit"
    CACHE_MISS = "cache_miss"
    BACKEND_INVOKE = "backend_invoke"
    SPAN_START = "span_start"
    SPAN_END = "span_end"
    FUZZ_CASE = "fuzz_case"


@dataclass(frozen=True)
class TelemetryEvent:
    """One typed, ordered engine event."""

    seq: int
    kind: EventKind
    session: str | None
    data: dict = field(default_factory=dict)
    #: wall-clock seconds (span durations); optional so the
    #: deterministic fields stay cleanly separated from the one
    #: timing-dependent field
    wall: float | None = None

    def to_json(self) -> str:
        record = {"seq": self.seq, "kind": self.kind.value}
        if self.session is not None:
            record["session"] = self.session
        record["data"] = self.data
        if self.wall is not None:
            record["wall"] = self.wall
        return json.dumps(record, sort_keys=True)


class TelemetrySink(Protocol):
    """Anything that can receive engine events."""

    def emit(self, event: TelemetryEvent) -> None:
        ...

    def close(self) -> None:
        ...


class InMemorySink:
    """Collects events in a list (the test sink)."""

    def __init__(self) -> None:
        self.events: list[TelemetryEvent] = []

    def emit(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    def of(self, kind: EventKind) -> list[TelemetryEvent]:
        return [e for e in self.events if e.kind is kind]

    def count(self, kind: EventKind) -> int:
        return len(self.of(kind))


class JsonlSink:
    """Writes one JSON line per event to a file (the trace sink).

    The file is opened lazily on the first event; a **pre-existing file
    is truncated** at that first open (a stale trace from an earlier
    run must never be silently appended to mid-run), while re-opens by
    the *same* sink after a ``close`` append, so one logical run stays
    one file.  Every line is flushed, so a trace of a crashed run is
    still complete up to the crash.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None
        self._opened = False

    def emit(self, event: TelemetryEvent) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            mode = "a" if self._opened else "w"
            self._handle = self.path.open(mode, encoding="utf-8")
            self._opened = True
        self._handle.write(event.to_json() + "\n")
        self._handle.flush()

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _default_record_wall() -> bool:
    return os.environ.get("ORION_TRACE_WALL", "") != "0"


_current_trace = None  # resolved lazily to avoid an import cycle


def _ambient_trace_id() -> str | None:
    global _current_trace
    if _current_trace is None:
        from repro.obs.tracectx import current_trace

        _current_trace = current_trace
    ctx = _current_trace()
    return None if ctx is None else ctx.trace_id


class TelemetryHub:
    """Fans events out to sinks; owns the sequence counter.

    Thread-safe: concurrent sessions interleave their events into one
    totally ordered stream (the sequence number is the order).

    ``record_wall`` controls whether events carry their optional
    wall-clock field; the default honours ``ORION_TRACE_WALL`` (set it
    to ``0`` for byte-identical traces across repeat runs).
    """

    def __init__(
        self, *sinks: TelemetrySink, record_wall: bool | None = None
    ) -> None:
        self._sinks: list[TelemetrySink] = list(sinks)
        self._seq = 0
        self._span_ids: dict[str | None, int] = {}
        self._lock = threading.Lock()
        self.counts: dict[EventKind, int] = {}
        self.record_wall = (
            _default_record_wall() if record_wall is None else record_wall
        )

    def add_sink(self, sink: TelemetrySink) -> None:
        self._sinks.append(sink)

    def next_span_id(self, scope: str | None = None) -> int:
        """Allocate the next span id within one session scope.

        Scoping per session (rather than using the global sequence
        number) keeps span ids — and therefore a session's whole event
        subsequence — deterministic regardless of how the scheduler
        interleaves sessions.
        """
        with self._lock:
            next_id = self._span_ids.get(scope, 0) + 1
            self._span_ids[scope] = next_id
            return next_id

    def emit(
        self,
        kind: EventKind,
        session: str | None = None,
        wall: float | None = None,
        **data,
    ) -> TelemetryEvent:
        if not self.record_wall:
            wall = None
        if "trace" not in data:
            trace_id = _ambient_trace_id()
            if trace_id is not None:
                data["trace"] = trace_id
        with self._lock:
            self._seq += 1
            event = TelemetryEvent(
                seq=self._seq, kind=kind, session=session, data=data, wall=wall
            )
            self.counts[kind] = self.counts.get(kind, 0) + 1
            for sink in self._sinks:
                sink.emit(event)
        return event

    def flush(self) -> None:
        """Flush every sink that buffers (file sinks, notably)."""
        for sink in self._sinks:
            flush = getattr(sink, "flush", None)
            if flush is not None:
                flush()

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()
