"""The execution engine: backends × sessions × cache × telemetry.

This is the runtime half of the ROADMAP's production story.  The old
``OrionRuntime`` hardwired the timing simulator and ran one workload at
a time; the engine

* measures through a pluggable :class:`~repro.sim.backend.ExecutionBackend`
  (timing simulator, analytical model, functional interpreter — or
  anything satisfying the protocol);
* schedules many :class:`~repro.runtime.session.TuningSession`\\ s
  concurrently over a thread pool (``ORION_ENGINE_JOBS`` / ``jobs``,
  the same convention as the compiler's ``ORION_COMPILE_JOBS``);
* dedupes repeated measurements across sessions and experiments in a
  shared content-addressed
  :class:`~repro.perf.measure_cache.MeasurementCache` (keyed on module
  hash + launch + traits + cache config + backend);
* funnels every cache miss through one shared :class:`MeasurementPool`
  (``ORION_ENGINE_BATCH`` / ``batch``) that collapses concurrent
  identical requests to a single backend invocation and dispatches
  distinct concurrent misses in batches, so overlapping sessions —
  ``run_many`` threads and the tuning daemon's cold-tune workers
  alike — keep the timing backend's per-module trace cache hot;
* narrates everything through structured telemetry
  (:mod:`repro.runtime.telemetry`): a JSONL trace via
  ``ORION_TRACE_FILE``/``--trace``, an in-memory stream for tests.

Determinism is load-bearing: backends are pure functions of the
request, sessions are independent, and reports are ordered by input —
so concurrent execution is bit-identical to sequential.
"""

from __future__ import annotations

import os
import threading
import traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.arch.specs import CacheConfig, GpuArchitecture
from repro.compiler.multiversion import MultiVersionBinary, version_content_hash
from repro.compiler.realize import KernelVersion
from repro.obs.spans import span, use_hub
from repro.perf.measure_cache import MeasurementCache, measurement_cache_key
from repro.runtime.session import (
    ExecutionReport,
    TuningSession,
    Workload,
    iteration_launches,
    scaled_launch,
)
from repro.runtime.telemetry import EventKind, JsonlSink, TelemetryHub
from repro.sim.backend import (
    ExecutionBackend,
    MeasurementRequest,
    MeasurementResult,
    get_backend,
)
from repro.sim.interp import LaunchConfig


def _resolve_jobs(jobs: int | None) -> int:
    """Effective scheduler width: explicit arg, else ``ORION_ENGINE_JOBS``."""
    if jobs is None:
        raw = os.environ.get("ORION_ENGINE_JOBS", "")
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    return max(1, jobs)


def _resolve_batch(batch: int | None) -> int:
    """Measurement batch size: explicit arg, else ``ORION_ENGINE_BATCH``.

    ``<= 1`` disables pooled dispatch (every caller invokes the backend
    directly, the pre-pool engine behaviour).
    """
    if batch is None:
        raw = os.environ.get("ORION_ENGINE_BATCH", "")
        try:
            batch = int(raw) if raw else 8
        except ValueError:
            batch = 8
    return max(0, batch)


class _Flight:
    """One in-flight backend measurement awaited by >= 1 threads."""

    __slots__ = ("key", "request", "event", "result", "error", "done")

    def __init__(self, key: str, request: MeasurementRequest) -> None:
        self.key = key
        self.request = request
        self.event = threading.Event()
        self.result: MeasurementResult | None = None
        self.error: BaseException | None = None
        self.done = False


class MeasurementPool:
    """Batched, deduplicated dispatch of backend measurements.

    One pool per engine, shared by every consumer of that engine —
    ``run_many`` session threads and the tuning daemon's cold-tune
    workers alike.  Two jobs:

    * **single-flight** — concurrent requests for the same cache key
      collapse to one backend invocation; late arrivals wait for the
      first result instead of repeating the work;
    * **batching** — distinct concurrent misses are claimed in groups
      of up to ``batch`` and dispatched together by the claiming
      thread, keeping same-binary candidates temporally adjacent so
      the timing backend's per-module trace cache stays hot across
      sessions.

    Backends are pure functions of the request, so pooled results are
    identical to direct calls; only wall-clock time and telemetry
    interleaving change.  No dispatcher thread exists: the first
    caller to queue a flight drives batches until its own flight
    resolves (or another driver claims it), so an idle engine holds no
    resources and there is nothing to shut down.
    """

    def __init__(
        self, backend: ExecutionBackend, batch: int | None = None
    ) -> None:
        self.backend = backend
        self.batch = _resolve_batch(batch)
        self._lock = threading.Lock()
        self._inflight: dict[str, _Flight] = {}
        self._queue: deque[_Flight] = deque()

    def measure(
        self, key: str, request: MeasurementRequest
    ) -> MeasurementResult:
        """Measure ``request``, joining an identical in-flight call."""
        if self.batch <= 1:
            return self.backend.measure(request)
        with self._lock:
            flight = self._inflight.get(key)
            joined = flight is not None
            if not joined:
                flight = _Flight(key, request)
                self._inflight[key] = flight
                self._queue.append(flight)
        self._count("joined" if joined else "queued")
        if not joined:
            self._drive(flight)
        flight.event.wait()
        if flight.error is not None:
            raise flight.error
        return flight.result

    def _drive(self, own: _Flight) -> None:
        """Claim and dispatch queued flights until ``own`` resolves.

        Every queued flight is popped exactly once, by exactly one
        driver, who always resolves it — so when the queue is empty and
        ``own`` is not done, some other driver holds it and will set
        its event; waiting is safe.
        """
        while True:
            with self._lock:
                if own.done:
                    return
                batch = []
                while self._queue and len(batch) < self.batch:
                    batch.append(self._queue.popleft())
            if not batch:
                return
            self._dispatch(batch)

    def _dispatch(self, batch: list[_Flight]) -> None:
        self._observe_batch(len(batch))
        for flight in batch:
            try:
                flight.result = self.backend.measure(flight.request)
            except Exception as exc:  # noqa: BLE001 — deliver to waiters
                flight.error = exc
        with self._lock:
            for flight in batch:
                self._inflight.pop(flight.key, None)
                flight.done = True
        for flight in batch:
            flight.event.set()

    @staticmethod
    def _count(result: str) -> None:
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "orion_engine_measurements_total",
            "Pooled backend measurement requests by outcome.",
        ).inc(result=result)

    @staticmethod
    def _observe_batch(size: int) -> None:
        from repro.obs.metrics import get_registry

        get_registry().histogram(
            "orion_engine_batch_size",
            "Backend measurements dispatched per claimed batch.",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
        ).observe(size)


class ExecutionEngine:
    """Schedules tuning sessions over a backend + measurement cache."""

    def __init__(
        self,
        arch: GpuArchitecture,
        backend: str | ExecutionBackend = "timing",
        cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
        measurement_cache: MeasurementCache | None = None,
        telemetry: TelemetryHub | None = None,
        jobs: int | None = None,
        batch: int | None = None,
        trace_file: str | os.PathLike | None = None,
        tuning_store=None,
    ) -> None:
        self.arch = arch
        self.backend = get_backend(backend)
        self.cache_config = cache_config
        self.cache = measurement_cache or MeasurementCache()
        self.telemetry = telemetry or TelemetryHub()
        self.jobs = jobs
        self.pool = MeasurementPool(self.backend, batch)
        self._lock = threading.Lock()
        trace = trace_file or os.environ.get("ORION_TRACE_FILE") or None
        #: where this engine's JSONL trace lands (None: not tracing);
        #: the daemon's HTTP sidecar serves it as /debug/trace and uses
        #: its presence to decide whether to mint trace ids
        self.trace_path = Path(trace) if trace else None
        if trace:
            self.telemetry.add_sink(JsonlSink(trace))
        # ``tuning_store``: a repro.service.store.TuningStore, a path to
        # one, or None (also settable via ORION_TUNING_STORE).  Resolved
        # lazily so the runtime has no import-time dependency on the
        # service layer.
        if tuning_store is None:
            tuning_store = os.environ.get("ORION_TUNING_STORE") or None
        if isinstance(tuning_store, (str, os.PathLike)):
            from repro.service.store import TuningStore

            tuning_store = TuningStore(tuning_store)
        self.tuning_store = tuning_store

    # ------------------------------------------------------------------
    # Measurement (cache + telemetry around one backend call)
    # ------------------------------------------------------------------
    def measure(
        self,
        version: KernelVersion,
        launch: LaunchConfig,
        workload: Workload | None = None,
        session: str | None = None,
        forced_warps: int | None = None,
    ) -> MeasurementResult:
        """Measure one version under one launch, through the cache.

        ``forced_warps`` pins the resident-warp count (occupancy
        sweeps); it is part of the cache key.
        """
        workload = workload or Workload(launch=launch)
        with use_hub(self.telemetry), span(
            "measure", session=session, label=version.label
        ):
            return self._measure(
                version, launch, workload, session, forced_warps
            )

    def _measure(
        self,
        version: KernelVersion,
        launch: LaunchConfig,
        workload: Workload,
        session: str | None,
        forced_warps: int | None,
    ) -> MeasurementResult:
        key = measurement_cache_key(
            version_content_hash(version),
            self.backend.name,
            self.arch.name,
            launch.grid_blocks,
            launch.block_size,
            launch.params,
            self.cache_config.value,
            workload.traits,
            workload.ilp,
            workload.max_events_per_warp,
            global_memory=workload.global_memory,
            forced_warps=forced_warps,
            strategy=version.strategy,
            arch_fingerprint=self.arch.fingerprint(),
        )
        with self._lock:
            payload = self.cache.get(key)
        if payload is not None:
            self.telemetry.emit(
                EventKind.CACHE_HIT, session, label=version.label, key=key[:12]
            )
            return MeasurementResult.from_payload(payload)
        self.telemetry.emit(
            EventKind.CACHE_MISS, session, label=version.label, key=key[:12]
        )
        self.telemetry.emit(
            EventKind.BACKEND_INVOKE,
            session,
            backend=self.backend.name,
            label=version.label,
            grid_blocks=launch.grid_blocks,
            block_size=launch.block_size,
        )
        result = self.pool.measure(
            key,
            MeasurementRequest(
                arch=self.arch,
                version=version,
                launch=launch,
                cache_config=self.cache_config,
                traits=workload.traits,
                ilp=workload.ilp,
                max_events_per_warp=workload.max_events_per_warp,
                global_memory=workload.global_memory,
                forced_warps=forced_warps,
            ),
        )
        with self._lock:
            self.cache.put(key, result.to_payload())
        return result

    def measure_pinned(
        self,
        binary: MultiVersionBinary,
        version: KernelVersion,
        workload: Workload,
        session: str | None = None,
    ) -> int:
        """Cycles for the full workload pinned to one version (no tuning).

        Unlike the old ``OrionRuntime.measure_version``, this honours
        ``workload.work_profile`` — iteration ``i`` launches the same
        scaled grid the tuned run launches — so pinned baselines and
        tuned runs measure the same total work.  Deduplication of equal
        launches happens in the content-addressed cache rather than a
        ``grid_blocks``-keyed memo, so two launches that differ in any
        measured dimension are never conflated.
        """
        launches, was_split = iteration_launches(binary, workload)
        total = 0
        for i, launch in enumerate(launches):
            work = workload.work_at(i)
            if not was_split:
                launch = scaled_launch(launch, work)
            total += self.measure(version, launch, workload, session).cycles
        return total

    # ------------------------------------------------------------------
    # Session execution
    # ------------------------------------------------------------------
    def run(self, session: TuningSession) -> ExecutionReport:
        """Drive one session to completion (every iteration measured)."""
        with use_hub(self.telemetry), span(
            "session",
            session=session.name,
            kernel=session.binary.kernel_name,
        ):
            return self._run(session)

    def _run(self, session: TuningSession) -> ExecutionReport:
        workload = session.workload
        launches, was_split = session.iteration_launches()
        self.telemetry.emit(
            EventKind.SESSION_START,
            session.name,
            kernel=session.binary.kernel_name,
            backend=self.backend.name,
            iterations=len(launches),
            was_split=was_split,
        )
        store_key = self._warm_start(session)
        tuner = session.tuner
        for i, launch in enumerate(launches):
            work = workload.work_at(i)
            if not was_split:
                launch = scaled_launch(launch, work)
            version = tuner.next_version()
            tuning = not tuner.converged
            cycles = self.measure(version, launch, workload, session.name).cycles
            tuner.report(float(cycles), work=work)
            if tuning:
                self.telemetry.emit(
                    EventKind.TRIAL,
                    session.name,
                    iteration=i + 1,
                    label=version.label,
                    cycles=cycles,
                    work=work,
                )
            self.telemetry.emit(
                EventKind.ITERATION,
                session.name,
                iteration=i + 1,
                label=version.label,
                cycles=cycles,
                converged=tuner.converged,
            )
            if session.converge_at is None and tuner.converged:
                session.converge_at = i + 1
                self.telemetry.emit(
                    EventKind.CONVERGED,
                    session.name,
                    iteration=i + 1,
                    label=tuner.final_version.label,
                )
            session.record(i + 1, version.label, cycles)
        report = session.finalize(was_split)
        self.telemetry.emit(
            EventKind.SESSION_FINALIZED,
            session.name,
            final=report.final_label,
            total_cycles=report.total_cycles,
            iterations_to_converge=report.iterations_to_converge,
        )
        self._publish(session, report, store_key)
        return report

    # ------------------------------------------------------------------
    # Warm start (the persistent tuning store, repro.service)
    # ------------------------------------------------------------------
    def _tuning_key(self, session: TuningSession) -> str:
        from repro.service.fingerprint import tuning_key

        return tuning_key(
            session.binary,
            session.workload,
            self.arch.name,
            self.backend.name,
            self.cache_config.value,
            arch_fingerprint=self.arch.fingerprint(),
        )

    def _warm_start(self, session: TuningSession) -> str | None:
        """Try to pre-converge ``session`` from the tuning store.

        Returns the session's store key when a store is attached and the
        session is tunable (so a cold result can be published back), or
        ``None`` when the store path is inactive for this session.
        """
        if self.tuning_store is None:
            return None
        if session.tuner.converged or not session.binary.can_tune:
            return None
        key = self._tuning_key(session)
        record = self.tuning_store.get(key)
        if record is None:
            result = "miss"
        elif session.warm_start(record.winner_label):
            result = "hit"
            self.telemetry.emit(
                EventKind.WARM_START,
                session.name,
                label=record.winner_label,
                key=key[:12],
                stored_cycles=record.total_cycles,
            )
        else:
            # The stored label no longer names a version of this binary:
            # a stale entry.  Drop it so the fresh result replaces it.
            result = "stale"
            self.tuning_store.invalidate(key)
        self._count_warm_start(result)
        return key

    def _publish(
        self,
        session: TuningSession,
        report: ExecutionReport,
        store_key: str | None,
    ) -> None:
        """Publish a cold session's converged winner back to the store."""
        if (
            store_key is None
            or session.warm_started_from is not None
            or report.iterations_to_converge is None
        ):
            return
        from repro.service.fingerprint import kernel_fingerprint
        from repro.service.store import record_from_report

        self.tuning_store.put(
            record_from_report(
                store_key,
                kernel_fingerprint(session.binary),
                session.binary,
                report,
                self.arch.name,
                self.backend.name,
            )
        )

    @staticmethod
    def _count_warm_start(result: str) -> None:
        from repro.obs.metrics import get_registry

        get_registry().counter(
            "orion_warm_starts_total",
            "Tuning-store warm-start attempts by result.",
        ).inc(result=result)

    def run_many(
        self, sessions: list[TuningSession], jobs: int | None = None
    ) -> list[ExecutionReport | None]:
        """Run sessions concurrently; reports in input order.

        Sessions are independent and measurements deterministic, so the
        reports are identical to sequential execution — concurrency
        changes wall-clock time and telemetry interleaving only.  The
        shared measurement cache makes overlapping sessions (same
        kernel, same launches) collapse to one backend invocation per
        distinct measurement.

        A session that raises does **not** abort the batch: its slot in
        the returned list is ``None``, its traceback lands in
        ``session.error`` and a ``SESSION_FAILED`` telemetry event, and
        every other session still runs to completion.
        """
        jobs = _resolve_jobs(self.jobs if jobs is None else jobs)
        width = min(jobs, len(sessions)) if sessions else 1
        with use_hub(self.telemetry), span(
            "engine", sessions=len(sessions), jobs=width
        ):
            self.telemetry.emit(
                EventKind.ENGINE_START,
                None,
                sessions=len(sessions),
                jobs=width,
                backend=self.backend.name,
                arch=self.arch.name,
            )
            if width <= 1:
                reports = [self._run_isolated(s) for s in sessions]
            else:
                with ThreadPoolExecutor(max_workers=width) as pool:
                    reports = list(pool.map(self._run_isolated, sessions))
            stats = self.cache.stats
            self.telemetry.emit(
                EventKind.ENGINE_FINISH,
                None,
                sessions=len(sessions),
                failed=sum(1 for r in reports if r is None),
                cache_hits=stats.hits,
                cache_misses=stats.misses,
            )
        # The engine-finish flush is a promise to trace consumers: when
        # ``run_many`` returns, the JSONL file on disk is complete.
        self.telemetry.flush()
        return reports

    def _run_isolated(self, session: TuningSession) -> ExecutionReport | None:
        """One scheduled session; a failure is reported, not propagated."""
        try:
            return self.run(session)
        except Exception as exc:  # noqa: BLE001 — isolate bad workloads
            tb = traceback.format_exc()
            session.error = tb
            self.telemetry.emit(
                EventKind.SESSION_FAILED,
                session.name,
                kernel=session.binary.kernel_name,
                error=f"{type(exc).__name__}: {exc}",
                traceback=tb,
            )
            from repro.obs.log import get_logger
            from repro.obs.metrics import get_registry

            get_registry().counter(
                "orion_session_failures_total",
                "Tuning sessions isolated after raising in the engine.",
            ).inc(error=type(exc).__name__)
            get_logger().error(
                "session_failed",
                session=session.name,
                kernel=session.binary.kernel_name,
                error=f"{type(exc).__name__}: {exc}",
            )
            return None
