"""Kernel splitting (paper Section 3.4).

"Most GPU programs contain a loop around the GPU kernel of interest.
If there is no loop but there are enough threads, then we perform
kernel splitting: we split one kernel invocation into multiple
invocations, such that every invocation of the split kernel launches a
subset of the threads and the total threads across invocations is the
same as the original kernel invocation."

Splitting is done at thread-block granularity (blocks are independent),
giving the Fig. 9 tuner the iterations it needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.interp import LaunchConfig


@dataclass(frozen=True)
class SplitLaunch:
    """One piece of a split kernel invocation."""

    launch: LaunchConfig
    first_block: int


def split_launch(
    launch: LaunchConfig, pieces: int
) -> list[SplitLaunch]:
    """Split one launch into up to ``pieces`` block-contiguous launches.

    Every block of the original launch appears in exactly one piece;
    pieces are as even as possible.  Fewer pieces come back when the
    grid is too small to split that far.
    """
    if pieces <= 0:
        raise ValueError("pieces must be positive")
    pieces = min(pieces, launch.grid_blocks)
    base = launch.grid_blocks // pieces
    remainder = launch.grid_blocks % pieces
    out: list[SplitLaunch] = []
    cursor = 0
    for i in range(pieces):
        size = base + (1 if i < remainder else 0)
        out.append(
            SplitLaunch(
                launch=LaunchConfig(
                    grid_blocks=size,
                    block_size=launch.block_size,
                    params=dict(launch.params),
                ),
                first_block=cursor,
            )
        )
        cursor += size
    return out


def splittable(launch: LaunchConfig, min_blocks_per_piece: int = 2) -> bool:
    """Whether a launch is big enough to split for tuning purposes."""
    return launch.grid_blocks >= 2 * min_blocks_per_piece


def pieces_for_tuning(
    launch: LaunchConfig, candidate_versions: int, min_blocks_per_piece: int = 2
) -> int:
    """How many pieces give the tuner one trial per candidate (plus one)."""
    wanted = candidate_versions + 1
    feasible = launch.grid_blocks // min_blocks_per_piece
    return max(1, min(wanted, feasible))
