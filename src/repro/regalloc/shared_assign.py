"""Shared-memory promotion of spilled variables.

After register allocation bounds the slot budget, spilled variables sit
in local memory (off-chip, L1-cached).  Orion's *conservative* version
instead fits "all variables ... into on-chip memory" by reassigning a
subset of local-memory slots to the software-managed shared memory
(paper Section 3.2 — "first placing them into registers with spills into
local memory, and then reassigning a subset of local memory variables to
shared memory"; this follows the authors' ICS'14 unified on-chip
allocation).

Layout: each thread owns a contiguous frame inside the block's shared
memory, starting after any user-declared shared data::

    address(thread t, slot o) = base(t) + user_bytes + o
    base(t) = t * frame_bytes

``base`` is materialised once at function entry (S2R + IMUL), costing
one long-lived register — the realistic price the paper's allocator also
pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.isa.instructions import (
    Imm,
    Instruction,
    MemSpace,
    Opcode,
    binary,
    s2r,
)
from repro.isa.registers import Reg, SpecialReg, VirtualReg
from repro.regalloc.spill import SpillState


@dataclass
class SharedPromotion:
    """Result of promoting local spill slots into shared memory."""

    #: spilled variable -> byte offset inside the per-thread shared frame
    promoted: dict[Reg, int] = field(default_factory=dict)
    #: per-thread shared frame size in bytes
    frame_bytes: int = 0
    #: extra shared memory needed per *block* (frame * block size)
    extra_shared_bytes: int = 0
    #: the base-address register inserted at entry (needs colouring)
    base_reg: VirtualReg | None = None


def access_frequencies(
    fn: Function, state: SpillState, cfg: CFG | None = None
) -> dict[int, float]:
    """Estimated dynamic access count per local-frame offset.

    Static counts weighted by 10^loop-depth, the classic Chaitin spill
    cost heuristic; hotter slots are better promotion candidates.
    """
    cfg = cfg or CFG(fn)
    freq: dict[int, float] = {off: 0.0 for off in state.offsets.values()}
    for label in cfg.rpo:
        weight = 10.0 ** cfg.loop_depth[label]
        for inst in fn.blocks[label].instructions:
            if (
                inst.is_memory
                and inst.space is MemSpace.LOCAL
                and _is_frame_addressed(inst)
                and inst.offset in freq
            ):
                freq[inst.offset] += weight
    return freq


def promote_spills_to_shared(
    fn: Function,
    state: SpillState,
    budget_bytes_per_thread: int,
    block_size: int,
    user_shared_bytes: int = 0,
) -> SharedPromotion:
    """Move the hottest spilled slots from local into shared memory.

    ``budget_bytes_per_thread`` is how much of the block's shared-memory
    allowance each thread may consume (the realize-occupancy step derives
    it from Equation 1).  Rewrites ``fn`` in place and returns the layout.
    """
    result = SharedPromotion()
    if budget_bytes_per_thread <= 0 or not state.offsets:
        return result

    freq = access_frequencies(fn, state)
    # Hottest first; ties broken by offset for determinism.
    candidates = sorted(
        state.offsets.items(), key=lambda kv: (-freq.get(kv[1], 0.0), kv[1])
    )
    used = 0
    local_to_shared: dict[int, int] = {}
    for var, local_off in candidates:
        size = 4 * var.width
        if used + size > budget_bytes_per_thread:
            continue
        result.promoted[var] = used
        local_to_shared[local_off] = used
        used += size
    if not local_to_shared:
        return result
    result.frame_bytes = used
    result.extra_shared_bytes = used * block_size

    # Rewrite the chosen local accesses into shared accesses off a
    # per-thread base register.
    base = fn.new_vreg(1)
    result.base_reg = base
    for block in fn.ordered_blocks():
        for inst in block.instructions:
            if (
                inst.is_memory
                and inst.space is MemSpace.LOCAL
                and inst.offset in local_to_shared
                and _is_frame_addressed(inst)
            ):
                inst.space = MemSpace.SHARED
                inst.offset = user_shared_bytes + local_to_shared[inst.offset]
                if inst.opcode is Opcode.LD:
                    inst.srcs = [base]
                else:
                    inst.srcs = [inst.srcs[0], base]

    tid = fn.new_vreg(1)
    prologue = [
        s2r(tid, SpecialReg.TID),
        binary(Opcode.IMUL, base, tid, Imm(result.frame_bytes)),
    ]
    fn.entry.instructions[0:0] = prologue
    return result


def _is_frame_addressed(inst: Instruction) -> bool:
    """True for spill-style local accesses (offset-only, no base reg)."""
    if inst.opcode is Opcode.LD:
        return not inst.srcs
    return len(inst.srcs) == 1
