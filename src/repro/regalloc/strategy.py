"""Pluggable allocation strategies: where register pressure goes.

Orion's upward tuning shrinks the per-thread register budget, and the
squeezed-out values have to live *somewhere*.  The paper (and this
reproduction until now) hardwires one answer — thread-private local
memory, cached by L1 — but the literature offers real alternatives with
materially different occupancy/latency trade-offs:

* **local-spill** — the reference behaviour.  Spill slots live in a
  per-thread local-memory frame (off-chip, L1-cached).  Cheap in
  on-chip resources, expensive per access on a cache miss.
* **smem-spill** — RegDem-style (arXiv:1907.02894) shared-memory
  register spilling.  Every spill slot is promoted into a per-thread
  frame carved out of the block's shared memory: accesses hit at the
  fixed shared-memory latency and never touch DRAM, but the frame
  scales with the block size and eats the very resource that bounds
  occupancy.
* **soft-limit** — an experimental Zorua-style (arXiv:1802.02573)
  virtualized register file.  Occupancy arithmetic pretends the
  register file is ``reg_oversubscription`` times its physical size, so
  more warps are resident than the registers can actually hold; the
  simulator charges a deterministic swap penalty to model the runtime
  shuffling of oversubscribed register state through the L2-backed
  swap space.

A strategy owns (a) the spill-target decision inside the allocator,
(b) the occupancy arithmetic used to realize and measure candidates,
and (c) the swap-cost model the timing simulator applies.  Everything
downstream — candidate generation, fingerprints, cache keys, bench
reports — carries the strategy *id* so results never cross strategies.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.occupancy import OccupancyResult
    from repro.arch.specs import CacheConfig, GpuArchitecture

#: The reference strategy: today's (and the paper's) behaviour.
DEFAULT_STRATEGY_ID = "local-spill"

#: Environment knob consumed by :func:`default_strategy_id` — lets CI run
#: the whole tier-1 suite under a non-default strategy without touching
#: every call site.
STRATEGY_ENV = "ORION_STRATEGY"


@runtime_checkable
class AllocationStrategy(Protocol):
    """What every allocation strategy must answer.

    Structural protocol so out-of-tree strategies (ROADMAP 3a/3b/3c
    follow-ons) can plug in without subclassing anything from this
    module.
    """

    id: str
    #: Spill slots are promoted into a per-thread shared-memory frame.
    spills_to_shared: bool
    #: Virtual register file size as a multiple of the physical one
    #: (1.0 = hard limits, the hardware truth).
    reg_oversubscription: float
    experimental: bool

    def occupancy(
        self,
        arch: "GpuArchitecture",
        block_size: int,
        regs_per_thread: int,
        smem_per_block: int,
        cache_config: "CacheConfig",
    ) -> "OccupancyResult": ...

    def max_regs_for_warps(
        self,
        arch: "GpuArchitecture",
        block_size: int,
        target_warps: int,
        smem_per_block: int,
        cache_config: "CacheConfig",
    ) -> int | None: ...

    def swap_model(
        self,
        arch: "GpuArchitecture",
        block_size: int,
        regs_per_thread: int,
        smem_per_block: int,
        cache_config: "CacheConfig",
    ) -> tuple[int, int]: ...


@dataclass(frozen=True)
class SpillStrategy:
    """Concrete :class:`AllocationStrategy` driven by two dials.

    ``spills_to_shared`` flips the spill target from local memory to a
    per-thread shared-memory frame; ``reg_oversubscription`` > 1.0
    virtualizes the register file for the occupancy arithmetic and
    makes :meth:`swap_model` charge for the overflow.
    """

    id: str
    spills_to_shared: bool = False
    reg_oversubscription: float = 1.0
    experimental: bool = False

    def occupancy(
        self,
        arch,
        block_size,
        regs_per_thread,
        smem_per_block=0,
        cache_config=None,
    ):
        """Strategy-aware Equation 1 (oversubscription-adjusted)."""
        from repro.arch.occupancy import calculate_occupancy
        from repro.arch.specs import CacheConfig

        return calculate_occupancy(
            arch,
            block_size,
            regs_per_thread,
            smem_per_block,
            cache_config or CacheConfig.SMALL_CACHE,
            reg_capacity_factor=self.reg_oversubscription,
        )

    def max_regs_for_warps(
        self,
        arch,
        block_size,
        target_warps,
        smem_per_block=0,
        cache_config=None,
    ):
        from repro.arch.occupancy import max_regs_per_thread_for_warps
        from repro.arch.specs import CacheConfig

        return max_regs_per_thread_for_warps(
            arch,
            block_size,
            target_warps,
            smem_per_block,
            cache_config or CacheConfig.SMALL_CACHE,
            reg_capacity_factor=self.reg_oversubscription,
        )

    def swap_model(
        self,
        arch,
        block_size,
        regs_per_thread,
        smem_per_block=0,
        cache_config=None,
    ) -> tuple[int, int]:
        """``(swap_interval, swap_latency)`` for the timing simulator.

        ``(0, 0)`` means no swapping.  Under oversubscription the SM
        hosts more warps than the register file physically backs; the
        overflow fraction determines how often a warp's next
        instruction finds its registers swapped out.  The model is
        deliberately deterministic (a fixed instruction interval, not a
        random draw): every ``interval``-th instruction of every warp
        pays ``latency`` extra cycles, with ``latency`` the L2 latency
        because the swap space is L2-resident.
        """
        if self.reg_oversubscription <= 1.0:
            return (0, 0)
        from repro.arch.specs import CacheConfig

        config = cache_config or CacheConfig.SMALL_CACHE
        soft = self.occupancy(
            arch, block_size, regs_per_thread, smem_per_block, config
        )
        from repro.arch.occupancy import calculate_occupancy

        hard = calculate_occupancy(
            arch, block_size, regs_per_thread, smem_per_block, config
        )
        overflow = soft.active_warps - hard.active_warps
        if overflow <= 0:
            return (0, 0)
        # The overflow fraction of resident register state is swapped
        # out at any time; a warp touches swapped state roughly every
        # resident/overflow instructions, stretched by a granularity
        # factor of 4 (swaps move register *groups*, not single regs).
        interval = max(2, (4 * soft.active_warps) // overflow)
        return (interval, arch.l2_latency)


LOCAL_SPILL = SpillStrategy(id="local-spill")
SMEM_SPILL = SpillStrategy(id="smem-spill", spills_to_shared=True)
SOFT_LIMIT = SpillStrategy(
    id="soft-limit", reg_oversubscription=1.5, experimental=True
)

#: Registry, mirroring ``repro.sim.backend.BACKENDS``.
STRATEGIES: dict[str, AllocationStrategy] = {
    strategy.id: strategy
    for strategy in (LOCAL_SPILL, SMEM_SPILL, SOFT_LIMIT)
}

#: Pseudo-strategy accepted by the CLI / CompileOptions: enumerate
#: candidates under every non-experimental strategy and let the dynamic
#: tuner pick per kernel.
MIXED_ID = "mixed"


def default_strategy_id() -> str:
    """The session default: ``$ORION_STRATEGY`` or ``local-spill``.

    Only *entry points* (CompileOptions, the CLI) consult this; inner
    layers default to the explicit reference strategy so unit tests of
    allocator/simulator internals stay stable under the CI strategy
    matrix.
    """
    value = os.environ.get(STRATEGY_ENV, "").strip()
    if not value:
        return DEFAULT_STRATEGY_ID
    if value != MIXED_ID and value not in STRATEGIES:
        raise ValueError(
            f"{STRATEGY_ENV}={value!r}: unknown strategy "
            f"(choices: {', '.join(sorted(STRATEGIES))}, {MIXED_ID})"
        )
    return value


def get_strategy(
    strategy: str | AllocationStrategy | None,
) -> AllocationStrategy:
    """Resolve a strategy id (or pass an instance through).

    ``None`` resolves to the reference ``local-spill`` strategy — *not*
    the environment default — so library internals are deterministic
    regardless of ``ORION_STRATEGY``.
    """
    if strategy is None:
        return STRATEGIES[DEFAULT_STRATEGY_ID]
    if isinstance(strategy, str):
        try:
            return STRATEGIES[strategy]
        except KeyError:
            raise ValueError(
                f"unknown allocation strategy {strategy!r} "
                f"(choices: {', '.join(sorted(STRATEGIES))})"
            ) from None
    return strategy


def strategy_ids(selector: str | None) -> tuple[str, ...]:
    """Expand a CLI/CompileOptions selector into concrete strategy ids.

    ``mixed`` expands to every non-experimental strategy (reference
    first, so candidate ordering and fail-safe selection stay anchored
    to today's behaviour); anything else must name one registered
    strategy.
    """
    if selector is None:
        selector = default_strategy_id()
    if selector == MIXED_ID:
        return tuple(
            sid
            for sid, strat in STRATEGIES.items()
            if not strat.experimental
        )
    get_strategy(selector)  # validate
    return (selector,)
