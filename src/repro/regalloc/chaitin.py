"""Single-procedure multi-class graph-coloring allocation (paper Fig. 4).

A variant of the Chaitin–Briggs allocator extended for *wide* variables
(64/96/128-bit values needing consecutive, aligned 32-bit slots):

* stack ordering (Fig. 4b): repeatedly pick a trivially-colourable
  variable — ``v.width + blocked(v) <= C`` — preferring the narrowest;
  when none exists, pick the narrowest (then least-connected) variable
  as an optimistic spill candidate;
* colouring (Fig. 4c): pop variables off the stack, give each the lowest
  free aligned slot range; a variable that cannot be coloured is moved
  to the spill list and colouring restarts without it.

``blocked(v)`` counts neighbours in slot units (a 64-bit neighbour can
exclude two slots), which preserves the classic "degree < k implies
colourable" guarantee in the presence of wide variables.

Pre-coloured nodes (the calling convention pins device-function
arguments to slots ``0..n-1``) keep their colours, participate as
blockers, and are never spilled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.interference import InterferenceGraph
from repro.isa.registers import (
    Reg,
    is_aligned,
    reg_sort_key,
    required_alignment,
)


@dataclass
class ColoringResult:
    """Outcome of one colouring attempt."""

    coloring: dict[Reg, int]  # variable -> base slot
    spilled: list[Reg] = field(default_factory=list)

    @property
    def slots_used(self) -> int:
        """One past the highest slot any coloured variable occupies."""
        return max(
            (base + var.width for var, base in self.coloring.items()),
            default=0,
        )

    def occupied_slots(self, var: Reg) -> range:
        base = self.coloring[var]
        return range(base, base + var.width)


def _sort_key(var: Reg) -> tuple[int, int, int]:
    return reg_sort_key(var)


def color_graph(
    graph: InterferenceGraph,
    num_colors: int,
    precolored: dict[Reg, int] | None = None,
    align_wide: bool = True,
) -> ColoringResult:
    """Colour ``graph`` with ``num_colors`` slots, spilling as needed."""
    if num_colors <= 0:
        raise ValueError("num_colors must be positive")
    precolored = dict(precolored or {})
    for var, base in precolored.items():
        if base + var.width > num_colors:
            raise ValueError(f"precoloured {var} at {base} exceeds budget")
        if align_wide and not is_aligned(base, var.width):
            raise ValueError(f"precoloured {var} at {base} is misaligned")

    candidates = [v for v in graph.nodes if v not in precolored]
    stack = _stack_order(graph, num_colors, candidates, set(precolored))
    spilled: list[Reg] = []

    while True:
        coloring = dict(precolored)
        failed: Reg | None = None
        for var in reversed(stack):
            slot = _lowest_free_slot(var, graph, coloring, num_colors, align_wide)
            if slot is None:
                failed = var
                break
            coloring[var] = slot
        if failed is None:
            return ColoringResult(coloring=coloring, spilled=spilled)
        # Fig. 4c: drop the uncolourable variable and restart colouring.
        stack.remove(failed)
        spilled.append(failed)


def _stack_order(
    graph: InterferenceGraph,
    num_colors: int,
    candidates: list[Reg],
    always_blocking: set[Reg],
) -> list[Reg]:
    """Fig. 4b ordering: trivial picks first, else optimistic candidates.

    Degrees are maintained incrementally over dense candidate indices —
    removing a node decrements its neighbours' blocked-width and edge
    counts — instead of rescanning every neighbour set per pick, which
    turns the ordering from O(n²·deg) into O(n² + E) while selecting
    the exact same stack.
    """
    order = sorted(candidates, key=_sort_key)
    ids = {v: i for i, v in enumerate(order)}
    widths = [v.width for v in order]
    # blocked/edges start from the full graph (candidates plus the
    # always-blocking precoloured nodes, which are never removed).
    blocked = [0] * len(order)
    edges = [0] * len(order)
    neighbor_ids: list[list[int]] = []
    for i, v in enumerate(order):
        nbrs: list[int] = []
        for n in graph.neighbors(v):
            blocked[i] += n.width
            edges[i] += 1
            j = ids.get(n)
            if j is not None:
                nbrs.append(j)
        neighbor_ids.append(nbrs)

    alive = [True] * len(order)
    remaining = list(range(len(order)))
    stack: list[Reg] = []
    while remaining:
        pick = -1
        for i in remaining:
            if widths[i] + blocked[i] <= num_colors:
                if pick < 0 or widths[pick] > widths[i]:
                    pick = i
        if pick < 0:
            # No trivially colourable node: optimistic spill candidate
            # with minimal width, then minimal edge count (Fig. 4b).
            pick = remaining[0]
            for i in remaining:
                if widths[pick] > widths[i] or (
                    widths[pick] == widths[i] and edges[pick] > edges[i]
                ):
                    pick = i
        stack.append(order[pick])
        remaining.remove(pick)
        alive[pick] = False
        for j in neighbor_ids[pick]:
            if alive[j]:
                blocked[j] -= widths[pick]
                edges[j] -= 1
    return stack


def _lowest_free_slot(
    var: Reg,
    graph: InterferenceGraph,
    coloring: dict[Reg, int],
    num_colors: int,
    align_wide: bool,
) -> int | None:
    used = [False] * num_colors
    for neighbor in graph.neighbors(var):
        base = coloring.get(neighbor)
        if base is None:
            continue
        for slot in range(base, min(base + neighbor.width, num_colors)):
            used[slot] = True
    step = required_alignment(var.width) if align_wide else 1
    for base in range(0, num_colors - var.width + 1, step):
        if not any(used[base : base + var.width]):
            return base
    return None


def minimum_registers(
    graph: InterferenceGraph,
    precolored: dict[Reg, int] | None = None,
    upper_bound: int = 256,
) -> int:
    """Smallest slot budget that colours the graph without spilling.

    This defines the paper's *original* occupancy level: "all live
    values fit into the minimal number of registers".  Binary search
    over the budget; each probe is one full colouring.
    """
    if not graph.nodes:
        return 0
    lo = max(v.width for v in graph.nodes)
    if precolored:
        lo = max(lo, max(b + v.width for v, b in precolored.items()))
    hi = max(lo, upper_bound)
    if color_graph(graph, hi, precolored).spilled:
        raise ValueError(f"graph does not colour even with {hi} slots")
    while lo < hi:
        mid = (lo + hi) // 2
        if color_graph(graph, mid, precolored).spilled:
            lo = mid + 1
        else:
            hi = mid
    return lo
