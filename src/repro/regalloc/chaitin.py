"""Single-procedure multi-class graph-coloring allocation (paper Fig. 4).

A variant of the Chaitin–Briggs allocator extended for *wide* variables
(64/96/128-bit values needing consecutive, aligned 32-bit slots):

* stack ordering (Fig. 4b): repeatedly pick a trivially-colourable
  variable — ``v.width + blocked(v) <= C`` — preferring the narrowest;
  when none exists, pick the narrowest (then least-connected) variable
  as an optimistic spill candidate;
* colouring (Fig. 4c): pop variables off the stack, give each the lowest
  free aligned slot range; a variable that cannot be coloured is moved
  to the spill list and colouring restarts without it.

``blocked(v)`` counts neighbours in slot units (a 64-bit neighbour can
exclude two slots), which preserves the classic "degree < k implies
colourable" guarantee in the presence of wide variables.

Pre-coloured nodes (the calling convention pins device-function
arguments to slots ``0..n-1``) keep their colours, participate as
blockers, and are never spilled.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.ir.interference import InterferenceGraph
from repro.isa.registers import (
    Reg,
    is_aligned,
    reg_sort_key,
    required_alignment,
)


@dataclass
class ColoringResult:
    """Outcome of one colouring attempt."""

    coloring: dict[Reg, int]  # variable -> base slot
    spilled: list[Reg] = field(default_factory=list)

    @property
    def slots_used(self) -> int:
        """One past the highest slot any coloured variable occupies."""
        return max(
            (base + var.width for var, base in self.coloring.items()),
            default=0,
        )

    def occupied_slots(self, var: Reg) -> range:
        base = self.coloring[var]
        return range(base, base + var.width)


def _sort_key(var: Reg) -> tuple[int, int, int]:
    return reg_sort_key(var)


def color_graph(
    graph: InterferenceGraph,
    num_colors: int,
    precolored: dict[Reg, int] | None = None,
    align_wide: bool = True,
) -> ColoringResult:
    """Colour ``graph`` with ``num_colors`` slots, spilling as needed."""
    if num_colors <= 0:
        raise ValueError("num_colors must be positive")
    precolored = dict(precolored or {})
    for var, base in precolored.items():
        if base + var.width > num_colors:
            raise ValueError(f"precoloured {var} at {base} exceeds budget")
        if align_wide and not is_aligned(base, var.width):
            raise ValueError(f"precoloured {var} at {base} is misaligned")

    # Dense-index domain: graph nodes are numbered once and the
    # colouring lives in a flat array, so the hot probe loop walks
    # ``list[int]`` neighbour ids instead of hashing Reg objects into a
    # dict per lookup.  Same slots assigned as the Reg-keyed original.
    dense = graph.dense()
    nodes, _, nbr_ids, node_widths = dense
    # The ordering setup (sorted candidates, initial blocked/edge counts,
    # candidate-to-candidate neighbour lists) does not depend on the slot
    # budget, so it is shared across the budget binary search in
    # ``minimum_registers`` — only the budget-dependent selection reruns.
    memo = getattr(graph, "_stack_memo", None)
    if memo is None or memo[0] is not dense:
        memo = (dense, {})
        graph._stack_memo = memo
    setup_key = frozenset(precolored)
    setup = memo[1].get(setup_key)
    if setup is None:
        candidate_ids = [
            i for i, v in enumerate(nodes) if v not in precolored
        ]
        setup = _stack_setup(nodes, nbr_ids, node_widths, candidate_ids)
        memo[1][setup_key] = setup
    stack_ids = _stack_order(setup, num_colors)
    spilled: list[Reg] = []
    pre_slots = [
        (i, precolored[v])
        for i, v in enumerate(nodes)
        if v in precolored
    ]
    steps = [
        required_alignment(w) if align_wide else 1 for w in node_widths
    ]
    masks = [(1 << w) - 1 for w in node_widths]

    slot_of = [-1] * len(nodes)
    while True:
        for i in range(len(slot_of)):
            slot_of[i] = -1
        for i, base in pre_slots:
            slot_of[i] = base
        failed_pos = -1
        for pos in range(len(stack_ids) - 1, -1, -1):
            i = stack_ids[pos]
            used = 0
            for j in nbr_ids[i]:
                base = slot_of[j]
                if base < 0:
                    continue
                width = node_widths[j]
                if base + width > num_colors:
                    width = num_colors - base
                    if width <= 0:
                        continue
                used |= ((1 << width) - 1) << base
            mask = masks[i]
            slot = -1
            for base in range(0, num_colors - node_widths[i] + 1, steps[i]):
                if not (used >> base) & mask:
                    slot = base
                    break
            if slot < 0:
                failed_pos = pos
                break
            slot_of[i] = slot
        if failed_pos < 0:
            coloring = dict(precolored)
            for pos in range(len(stack_ids) - 1, -1, -1):
                i = stack_ids[pos]
                coloring[nodes[i]] = slot_of[i]
            return ColoringResult(coloring=coloring, spilled=spilled)
        # Fig. 4c: drop the uncolourable variable and restart colouring.
        spilled.append(nodes[stack_ids[failed_pos]])
        del stack_ids[failed_pos]


def _stack_setup(
    nodes: list[Reg],
    nbr_ids: list[list[int]],
    node_widths: list[int],
    candidate_ids: list[int],
) -> tuple[list[int], list[int], list[int], list[int], list[list[int]]]:
    """Budget-independent half of :func:`_stack_order`.

    ``(order, widths, blocked, edges, neighbor_pos)`` — candidate ids in
    tie-break order, their widths, initial blocked-width and edge counts
    against the full graph (candidates plus the always-blocking
    precoloured nodes), and candidate-to-candidate neighbour positions.
    Cached per (graph, precoloured set) so a budget binary search pays
    the O(E) setup once.
    """
    order = sorted(candidate_ids, key=lambda i: _sort_key(nodes[i]))
    pos_of = [-1] * len(nodes)  # graph id -> candidate position
    for p, gid in enumerate(order):
        pos_of[gid] = p
    widths = [node_widths[g] for g in order]
    blocked = [0] * len(order)
    edges = [0] * len(order)
    neighbor_pos: list[list[int]] = []
    for p, g in enumerate(order):
        nbrs: list[int] = []
        b = 0
        e = 0
        for j in nbr_ids[g]:
            b += node_widths[j]
            e += 1
            q = pos_of[j]
            if q >= 0:
                nbrs.append(q)
        blocked[p] = b
        edges[p] = e
        neighbor_pos.append(nbrs)
    return (order, widths, blocked, edges, neighbor_pos)


def _stack_order(setup, num_colors: int) -> list[int]:
    """Fig. 4b ordering: trivial picks first, else optimistic candidates.

    Runs entirely over dense node ids (see ``InterferenceGraph.dense``).
    Degrees are maintained incrementally — removing a node decrements
    its neighbours' blocked-width and edge counts — instead of
    rescanning every neighbour set per pick, which keeps the ordering
    O(n² + E) while selecting the exact same stack as the original
    Reg-domain scan.  Returns the stack as dense node ids.
    """
    order, widths, blocked0, edges0, neighbor_pos = setup
    blocked = list(blocked0)
    edges = list(edges0)

    # ``blocked`` only ever decreases, so "trivially colourable" is
    # monotone: once a node qualifies it stays qualified until removed.
    # A lazy min-heap keyed (width, position) therefore yields exactly
    # the node the original linear scan picked — the first node of
    # strictly-minimal width among the trivially-colourable ones.
    n = len(order)
    alive = [True] * n
    pushed = [False] * n
    trivial: list[tuple[int, int]] = []
    for i in range(n):
        if widths[i] + blocked[i] <= num_colors:
            trivial.append((widths[i], i))
            pushed[i] = True
    heapq.heapify(trivial)
    stack: list[int] = []
    left = n
    while left:
        pick = -1
        while trivial:
            _, i = trivial[0]
            if alive[i]:
                pick = i
                heapq.heappop(trivial)
                break
            heapq.heappop(trivial)
        if pick < 0:
            # No trivially colourable node: optimistic spill candidate
            # with minimal width, then minimal edge count (Fig. 4b).
            for i in range(n):
                if alive[i] and (
                    pick < 0
                    or widths[pick] > widths[i]
                    or (
                        widths[pick] == widths[i]
                        and edges[pick] > edges[i]
                    )
                ):
                    pick = i
        stack.append(order[pick])
        alive[pick] = False
        left -= 1
        for j in neighbor_pos[pick]:
            if alive[j]:
                blocked[j] -= widths[pick]
                edges[j] -= 1
                if not pushed[j] and widths[j] + blocked[j] <= num_colors:
                    heapq.heappush(trivial, (widths[j], j))
                    pushed[j] = True
    return stack


def _lowest_free_slot(
    var: Reg,
    graph: InterferenceGraph,
    coloring: dict[Reg, int],
    num_colors: int,
    align_wide: bool,
) -> int | None:
    # One int as the occupancy bitmask: building it is a few shifts per
    # coloured neighbour, and probing a candidate base is one shift+AND
    # instead of a per-slot list scan (this is the allocator's hottest
    # loop; same slots returned as the original list scan).
    used = 0
    get = coloring.get
    for neighbor in graph.neighbors(var):
        base = get(neighbor)
        if base is None:
            continue
        width = neighbor.width
        if base + width > num_colors:
            width = num_colors - base
            if width <= 0:
                continue
        used |= ((1 << width) - 1) << base
    step = required_alignment(var.width) if align_wide else 1
    mask = (1 << var.width) - 1
    for base in range(0, num_colors - var.width + 1, step):
        if not (used >> base) & mask:
            return base
    return None


def minimum_registers(
    graph: InterferenceGraph,
    precolored: dict[Reg, int] | None = None,
    upper_bound: int = 256,
) -> int:
    """Smallest slot budget that colours the graph without spilling.

    This defines the paper's *original* occupancy level: "all live
    values fit into the minimal number of registers".  Binary search
    over the budget; each probe is one full colouring.
    """
    if not graph.nodes:
        return 0
    lo = max(v.width for v in graph.nodes)
    if precolored:
        lo = max(lo, max(b + v.width for v, b in precolored.items()))
    hi = max(lo, upper_bound)
    if color_graph(graph, hi, precolored).spilled:
        raise ValueError(f"graph does not colour even with {hi} slots")
    while lo < hi:
        mid = (lo + hi) // 2
        if color_graph(graph, mid, precolored).spilled:
            lo = mid + 1
        else:
            hi = mid
    return lo
