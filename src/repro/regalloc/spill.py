"""Spill code insertion: uncoloured variables move to local memory.

A spilled variable lives in the thread's *local memory* frame (off-chip
DRAM, cached by L1 — paper Section 3.2: "A variable can be placed into
register, shared memory, or L1 cache (via local memory)").  Every use
reloads it into a fresh short-lived temporary and every definition
stores it back, which is what keeps the rewritten graph colourable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.isa.instructions import Instruction, MemSpace, Opcode, load, store
from repro.isa.registers import Reg, VirtualReg


@dataclass
class SpillState:
    """Local-memory frame layout for one function."""

    offsets: dict[Reg, int] = field(default_factory=dict)
    frame_bytes: int = 0
    #: Temporaries created by reload/store insertion, per spilled var.
    temps: dict[Reg, list[VirtualReg]] = field(default_factory=dict)

    def assign(self, var: Reg) -> int:
        if var in self.offsets:
            return self.offsets[var]
        offset = self.frame_bytes
        self.offsets[var] = offset
        self.frame_bytes += 4 * var.width
        return offset


def insert_spill_code(
    fn: Function, spilled: list[Reg], state: SpillState | None = None
) -> SpillState:
    """Rewrite ``fn`` so each variable in ``spilled`` lives in local memory.

    Returns the (possibly pre-existing) :class:`SpillState` extended with
    the new variables.  φs must already be eliminated.
    """
    state = state or SpillState()
    spill_set = set(spilled)
    for var in spilled:
        state.assign(var)
        state.temps.setdefault(var, [])

    for block in fn.ordered_blocks():
        rewritten: list[Instruction] = []
        for inst in block.instructions:
            if inst.opcode is Opcode.PHI:
                raise ValueError("spill insertion requires φ-free code")
            reads = [r for r in inst.regs_read() if r in spill_set]
            writes = [r for r in inst.regs_written() if r in spill_set]
            mapping: dict[Reg, VirtualReg] = {}
            for var in dict.fromkeys(reads):
                temp = fn.new_vreg(var.width)
                state.temps[var].append(temp)
                mapping[var] = temp
                rewritten.append(
                    load(temp, MemSpace.LOCAL, offset=state.offsets[var])
                )
            if mapping:
                inst.replace_reg_uses(dict(mapping))
            stores: list[Instruction] = []
            for var in writes:
                temp = mapping.get(var)
                if temp is None:
                    temp = fn.new_vreg(var.width)
                    state.temps[var].append(temp)
                inst.dst = temp
                stores.append(
                    store(MemSpace.LOCAL, temp, offset=state.offsets[var])
                )
            rewritten.append(inst)
            rewritten.extend(stores)
        block.instructions = rewritten
    return state


def spill_traffic(fn: Function, space: MemSpace = MemSpace.LOCAL) -> int:
    """Static count of spill-space memory operations (a tuning-cost signal).

    ``space`` selects the spill target to count: ``MemSpace.LOCAL`` for
    the reference local-spill strategy, ``MemSpace.SHARED`` after
    shared-memory promotion (the smem-spill strategy rewrites every
    frame access to shared space).
    """
    return sum(
        1
        for inst in fn.instructions()
        if inst.is_memory and inst.space is space
    )
