"""On-chip memory allocation: Fig. 4 colouring, spilling, shared-memory
promotion, and the compressible stack (paper Section 3.2)."""

from repro.regalloc.allocator import (
    AllocationOutcome,
    BudgetError,
    allocate_module,
    minimal_budget,
)
from repro.regalloc.chaitin import ColoringResult, color_graph, minimum_registers
from repro.regalloc.coalesce import CoalesceReport, coalesce_moves
from repro.regalloc.matching import (
    assignment_weight,
    max_weight_assignment,
    min_cost_assignment,
)
from repro.regalloc.shared_assign import SharedPromotion, promote_spills_to_shared
from repro.regalloc.spill import SpillState, insert_spill_code, spill_traffic
from repro.regalloc.strategy import (
    DEFAULT_STRATEGY_ID,
    LOCAL_SPILL,
    SMEM_SPILL,
    SOFT_LIMIT,
    STRATEGIES,
    AllocationStrategy,
    SpillStrategy,
    default_strategy_id,
    get_strategy,
    strategy_ids,
)
from repro.regalloc.stack import (
    Cluster,
    InterprocResult,
    StackError,
    build_clusters,
    count_total_moves,
    movement_weight,
    optimal_layout,
    packed_height,
    plan_interprocedural,
    rewrite_module,
)

__all__ = [
    "AllocationOutcome",
    "AllocationStrategy",
    "BudgetError",
    "Cluster",
    "CoalesceReport",
    "coalesce_moves",
    "ColoringResult",
    "DEFAULT_STRATEGY_ID",
    "InterprocResult",
    "LOCAL_SPILL",
    "SMEM_SPILL",
    "SOFT_LIMIT",
    "STRATEGIES",
    "SharedPromotion",
    "SpillState",
    "SpillStrategy",
    "StackError",
    "allocate_module",
    "default_strategy_id",
    "get_strategy",
    "strategy_ids",
    "assignment_weight",
    "build_clusters",
    "color_graph",
    "count_total_moves",
    "insert_spill_code",
    "max_weight_assignment",
    "min_cost_assignment",
    "minimal_budget",
    "minimum_registers",
    "movement_weight",
    "optimal_layout",
    "packed_height",
    "plan_interprocedural",
    "promote_spills_to_shared",
    "rewrite_module",
    "spill_traffic",
]
