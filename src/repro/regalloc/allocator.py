"""Whole-module on-chip memory allocation for one register budget.

This is the "realizing occupancy" engine (paper Section 3.2): given a
per-thread slot budget (derived from a target occupancy via Equation 1),
produce a binary that fits it:

1. per function: pruned SSA construction + φ elimination, interference
   graph, Fig. 4 colouring with the argument slots pre-coloured;
   uncolourable variables spill to local memory and the function is
   re-coloured until clean;
2. optionally promote the hottest spilled slots into shared memory (the
   *conservative* configuration fits all variables on-chip);
3. inter-procedure planning with the compressible stack and
   Kuhn–Munkres movement minimisation, then rewriting every function to
   absolute physical registers with the call protocol in place.

If the resulting tree exceeds the budget, the offending functions are
re-allocated with tighter per-function budgets until the total fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.callgraph import CallGraph
from repro.ir.function import Module
from repro.ir.interference import build_interference
from repro.ir.liveness import analyze_liveness
from repro.ir.ssa import construct_ssa, destruct_ssa, lift_to_virtual
from repro.isa.registers import PhysReg, Reg, VirtualReg
from repro.regalloc.chaitin import color_graph
from repro.regalloc.shared_assign import promote_spills_to_shared
from repro.regalloc.spill import SpillState, insert_spill_code
from repro.regalloc.strategy import AllocationStrategy, get_strategy
from repro.regalloc.stack import (
    InterprocResult,
    StackError,
    plan_interprocedural,
    rewrite_module,
)


class BudgetError(ValueError):
    """Raised when a register budget is too small to realise at all."""


@dataclass
class AllocationOutcome:
    """An allocated, physically-registered module plus its resource bill."""

    module: Module
    kernel_name: str
    registers_per_thread: int
    #: user-declared shared memory + per-block spill promotion overhead
    shared_bytes_per_block: int
    #: local (off-chip, L1-cached) spill frame per thread, bytes
    local_bytes_per_thread: int
    spilled_variables: int
    #: static compressible-stack moves (saves; restores mirror them)
    stack_moves: int
    interproc: InterprocResult | None = None
    colorings: dict[str, dict[Reg, int]] = field(default_factory=dict)
    #: id of the :class:`~repro.regalloc.strategy.AllocationStrategy`
    #: that placed the spills (resource accounting follows it).
    strategy: str = "local-spill"
    #: spill slots living in the per-thread shared-memory frame
    smem_spill_slots: int = 0


def allocate_module(
    module: Module,
    kernel_name: str,
    reg_budget: int,
    block_size: int = 256,
    smem_spill_budget_per_thread: int = 0,
    space_minimization: bool = True,
    movement_minimization: bool = True,
    max_iterations: int = 48,
    strategy: str | AllocationStrategy | None = None,
) -> AllocationOutcome:
    """Allocate ``module`` so the kernel tree fits ``reg_budget`` slots.

    Returns a *new* module (the input is untouched) rewritten to
    physical registers.  ``smem_spill_budget_per_thread`` enables
    shared-memory promotion of spilled values (bytes each thread may
    claim from the block's shared allowance).

    ``strategy`` selects the spill target (see
    :mod:`repro.regalloc.strategy`); ``None`` means the reference
    ``local-spill`` behaviour.  Under a shared-spill strategy the
    promotion budget is unconditionally unbounded: every spill slot
    moves into the per-thread shared frame, and whether the resulting
    shared footprint still meets an occupancy target is the realize
    step's problem, not the allocator's.
    """
    strat = get_strategy(strategy)
    if strat.spills_to_shared:
        # Effectively unlimited: the block's shared capacity is checked
        # downstream by the occupancy arithmetic.
        smem_spill_budget_per_thread = 1 << 30
    if reg_budget <= 0:
        raise BudgetError("register budget must be positive")
    work = module.copy()
    callgraph = CallGraph(work)
    # Iterate function names in sorted order: the set's iteration order
    # depends on the string hash seed, and allocation details (shared
    # promotion offsets, shrink order) follow iteration order.
    reachable = sorted(callgraph.reachable(kernel_name))
    # Dead-function elimination: functions the kernel can never reach
    # are not allocated, and carrying them with virtual registers would
    # fail the output verifier — the fat binary ships reachable code
    # only.
    for name in [n for n in work.functions if n not in set(reachable)]:
        del work.functions[name]

    for name in reachable:
        fn = work.functions[name]
        # Re-allocating a decoded binary (the real Orion flow): lift its
        # physical registers to variables first; SSA renaming then splits
        # each register into its constituent webs.
        if any(isinstance(r, PhysReg) for r in fn.all_regs()):
            lift_to_virtual(fn)
        # Real binaries legitimately contain values defined only on some
        # paths (e.g. inside a loop known to run at least once); reading
        # such a value is undefined behaviour that the zero-init fixup
        # models consistently with the interpreter's semantics.
        construct_ssa(fn, allow_undef=True)
        destruct_ssa(fn)

    budgets = {name: reg_budget for name in reachable}
    spill_states: dict[str, SpillState] = {name: SpillState() for name in reachable}
    promoted: set[str] = set()
    shared_extra = 0
    shared_cursor = work.functions[kernel_name].shared_bytes
    spilled_total = 0
    smem_slots_total = 0

    colorings: dict[str, dict[Reg, int]] = {}
    plan: InterprocResult | None = None

    for _ in range(max_iterations):
        for name in reachable:
            if name not in colorings:
                colorings[name], newly_spilled = _allocate_function(
                    work, name, budgets[name], spill_states[name]
                )
                spilled_total += newly_spilled
                if (
                    smem_spill_budget_per_thread > 0
                    and name not in promoted
                    and spill_states[name].offsets
                ):
                    promotion = promote_spills_to_shared(
                        work.functions[name],
                        spill_states[name],
                        smem_spill_budget_per_thread,
                        block_size,
                        user_shared_bytes=shared_cursor,
                    )
                    promoted.add(name)
                    smem_slots_total += len(promotion.promoted)
                    if promotion.frame_bytes:
                        shared_extra += promotion.extra_shared_bytes
                        shared_cursor += promotion.extra_shared_bytes
                        # The base register is new: re-colour this function.
                        colorings[name], newly_spilled = _allocate_function(
                            work, name, budgets[name], spill_states[name]
                        )
                        spilled_total += newly_spilled
        try:
            plan = plan_interprocedural(
                work,
                kernel_name,
                colorings,
                space_minimization=space_minimization,
                movement_minimization=movement_minimization,
            )
        except StackError as exc:
            raise BudgetError(str(exc)) from exc
        if plan.registers_per_thread <= reg_budget:
            break
        # Over budget: shrink the deepest offenders and retry.  When a
        # function's *base* alone exceeds the budget (deep call chains
        # under naive space allocation), its callers must shrink too —
        # their slot usage is what pushes the base up.
        shrunk = False
        for name in reachable:
            if name not in colorings:
                continue  # already queued for re-allocation this round
            ceiling = reg_budget - plan.bases[name]
            over = plan.bases[name] + _slots_used(colorings[name]) > reg_budget
            if over and ceiling > 0:
                budgets[name] = max(
                    _min_budget(work, name), min(budgets[name] - 1, ceiling)
                )
                colorings.pop(name)
                shrunk = True
            elif ceiling <= 0:
                for caller in reachable:
                    floor = _min_budget(work, caller)
                    squeezed = max(
                        floor, min(budgets[caller] - 1, budgets[caller] * 4 // 5)
                    )
                    if squeezed < budgets[caller]:
                        budgets[caller] = squeezed
                        colorings.pop(caller, None)
                        shrunk = True
        if not shrunk:
            # Bases themselves push past the budget (arg/scratch slots).
            victim = max(
                reachable, key=lambda n: plan.bases[n] + _slots_used(colorings[n])
            )
            if budgets[victim] <= _min_budget(work, victim):
                raise BudgetError(f"cannot fit {kernel_name} in {reg_budget}")
            budgets[victim] -= 1
            colorings.pop(victim)
    else:
        raise BudgetError(
            f"allocation did not converge within {max_iterations} rounds"
        )

    assert plan is not None
    rewrite_module(work, kernel_name, plan)
    _verify_output(work, reg_budget, plan)
    local_bytes = max(
        (spill_states[name].frame_bytes for name in reachable), default=0
    )
    # Local frames are per-function but a thread can be in at most one
    # deep chain; to keep addressing static each function's frame starts
    # at a distinct offset, so total local usage is the sum.
    total_local = sum(spill_states[name].frame_bytes for name in reachable)
    if strat.spills_to_shared:
        # All slots known at promotion time moved into shared memory;
        # only functions whose re-colouring spilled *after* promotion
        # (one-shot, so those fall back to local) still need a local
        # frame window.
        total_local = _residual_local_bytes(work, reachable, spill_states)
    _offset_local_frames(work, reachable, spill_states)

    _count_allocation(spilled_total, plan.static_move_count())
    if smem_slots_total:
        _count_smem_spills(smem_slots_total, strat.id)
    return AllocationOutcome(
        module=work,
        kernel_name=kernel_name,
        registers_per_thread=plan.registers_per_thread,
        shared_bytes_per_block=work.functions[kernel_name].shared_bytes
        + shared_extra,
        local_bytes_per_thread=total_local,
        spilled_variables=spilled_total,
        stack_moves=plan.static_move_count(),
        interproc=plan,
        colorings=colorings,
        strategy=strat.id,
        smem_spill_slots=smem_slots_total,
    )


def _count_allocation(spilled: int, stack_moves: int) -> None:
    """Charge one finished allocation to the metrics registry.

    Lazy import: the allocator sits well below :mod:`repro.obs` in the
    import graph.
    """
    from repro.obs.metrics import get_registry

    registry = get_registry()
    registry.counter(
        "orion_allocations_total", "Completed module allocations."
    ).inc()
    registry.counter(
        "orion_allocator_spilled_variables_total",
        "Variables spilled to compressible-stack space across allocations.",
    ).inc(spilled)
    registry.counter(
        "orion_allocator_stack_moves_total",
        "Static stack-move instructions emitted across allocations.",
    ).inc(stack_moves)


def _count_smem_spills(slots: int, strategy_id: str) -> None:
    """Charge shared-memory spill promotions, labelled by strategy."""
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "orion_allocator_smem_spill_slots_total",
        "Spill slots promoted into per-thread shared-memory frames.",
    ).inc(slots, strategy=strategy_id)


def _residual_local_bytes(
    module: Module, reachable: list[str], states: dict[str, SpillState]
) -> int:
    """Local frame bytes still *used* after shared promotion.

    A function whose spills all moved to shared memory keeps its (now
    unreferenced) frame layout in ``SpillState``; only functions with a
    surviving frame-addressed local access actually reserve local
    memory.
    """
    from repro.isa.instructions import MemSpace
    from repro.regalloc.shared_assign import _is_frame_addressed

    total = 0
    for name in reachable:
        state = states[name]
        if not state.frame_bytes:
            continue
        fn = module.functions[name]
        if any(
            inst.is_memory
            and inst.space is MemSpace.LOCAL
            and _is_frame_addressed(inst)
            for inst in fn.instructions()
        ):
            total += state.frame_bytes
    return total


def _slots_used(coloring: dict[Reg, int]) -> int:
    return max((b + v.width for v, b in coloring.items()), default=0)


def _min_budget(module: Module, name: str) -> int:
    """Smallest meaningful per-function budget (arguments need slots)."""
    return max(2, module.functions[name].num_args + 1)


def _verify_output(
    module: Module, reg_budget: int, plan: InterprocResult | None = None
) -> None:
    """Machine-verify the allocated module (a compiler self-check).

    Handing over the interprocedural plan lets the verifier check the
    compressible-stack protocol (save/restore balance, exact frame
    bases) with the allocator's own slot maps instead of re-deriving
    them from the code.
    """
    from repro.ir.verify import assert_verified

    assert_verified(
        module, physical=True, reg_budget=reg_budget, interproc=plan
    )


def _allocate_function(
    module: Module,
    name: str,
    budget: int,
    spill_state: SpillState,
) -> tuple[dict[Reg, int], int]:
    """Colour one function under ``budget``, spilling until clean.

    Before the first colouring attempt, move-related variables (mostly
    φ-elimination copies) are conservatively coalesced — Briggs's test
    guarantees this can never introduce a spill.
    """
    from repro.regalloc.coalesce import coalesce_moves

    fn = module.functions[name]
    precolored = {VirtualReg(i, 1): i for i in range(fn.num_args)}
    if fn.num_args > budget:
        raise BudgetError(
            f"{name}: {fn.num_args} arguments exceed budget {budget}"
        )
    reload_temps = {t for temps in spill_state.temps.values() for t in temps}
    spilled_count = 0
    coalesced = False
    for _ in range(64):
        graph = build_interference(fn)
        if not coalesced:
            coalesced = True
            report = coalesce_moves(fn, graph, budget, precolored)
            if report.replacements:
                graph = build_interference(fn)
        for arg in precolored:
            graph.add_node(arg)
        result = color_graph(graph, budget, precolored=precolored)
        if not result.spilled:
            return result.coloring, spilled_count
        if any(v in reload_temps for v in result.spilled):
            raise BudgetError(
                f"{name}: budget {budget} too small even for reload "
                "temporaries"
            )
        insert_spill_code(fn, result.spilled, spill_state)
        reload_temps = {
            t for temps in spill_state.temps.values() for t in temps
        }
        spilled_count += len(result.spilled)
    raise BudgetError(f"{name}: spilling did not converge under {budget}")


def _offset_local_frames(
    module: Module, reachable: list[str], states: dict[str, SpillState]
) -> None:
    """Give each function a disjoint local-memory frame window."""
    from repro.isa.instructions import MemSpace

    cursor = 0
    for name in sorted(reachable):
        state = states[name]
        if not state.frame_bytes:
            continue
        if cursor:
            for inst in module.functions[name].instructions():
                if inst.is_memory and inst.space is MemSpace.LOCAL:
                    inst.offset += cursor
        cursor += state.frame_bytes


def minimal_budget(
    module: Module,
    kernel_name: str,
    upper_bound: int = 255,
) -> int:
    """Smallest register budget allocating the kernel tree spill-free.

    Defines the paper's *original* version: "all live values fit into
    the minimal number of registers".
    """
    lo, hi = 1, upper_bound
    best: int | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        try:
            outcome = allocate_module(module, kernel_name, mid)
        except BudgetError:
            lo = mid + 1
            continue
        if outcome.spilled_variables == 0:
            best = mid
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        raise BudgetError(
            f"{kernel_name} does not allocate spill-free within "
            f"{upper_bound} registers"
        )
    return best
