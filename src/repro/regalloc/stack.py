"""The compressible stack: inter-procedure on-chip memory allocation.

Paper Section 3.2.  Each function's variables are coloured to *relative*
slots by the Fig. 4 allocator; functions then share one per-thread flat
slot space:

* every function gets a **base**: ``base(kernel) = 0`` and
  ``base(callee) = max over call sites of (base(caller) + B_k)``, where
  ``B_k`` is the height the caller's stack is compressed to at site *k*;
* with *space minimisation* on, ``B_k`` is the packed height of the
  variables live across the call (so the callee's contiguous window is
  as large as possible); with it off, ``B_k`` is the caller's full slot
  usage — the "No Space Minimization" ablation of paper Fig. 5;
* right before a call, live variables whose home slot lies at or above
  ``B_k`` are *saved* into free slots below it, and *restored* right
  after the call returns — these MOVs are the "data movements";
* the static slot **layout** is chosen to minimise total movements: by
  Theorem 1 the movement count of placing slot-set ``SS_i`` at position
  ``j`` is a constant ``W_ij``, so a maximum-weight bipartite matching
  (Kuhn–Munkres) over (set, position) pairs with weight ``-W_ij`` yields
  the optimal layout.  Turning this off is the Fig. 5 "No Data Movement
  Minimization" ablation.

Wide variables extend the model: slot-sets that overlap (through wide
values) are merged into *clusters* that move as a unit; clusters wider
than one slot are placed greedily at aligned positions (cheapest first)
and the remaining single-slot sets are matched optimally — for programs
whose cross-call variables are all 32-bit this degenerates to exactly
the paper's formulation.

The calling convention realised here (and checked by the functional
interpreter): arguments are copied into the callee's first slots
``base(callee)+i``, the return value comes back in ``base(callee)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.callgraph import CallGraph
from repro.ir.function import Function, Module
from repro.ir.liveness import analyze_liveness
from repro.isa.instructions import Imm, Instruction, Opcode, Operand, mov
from repro.isa.registers import (
    PhysReg,
    Reg,
    VirtualReg,
    is_aligned,
    required_alignment,
)
from repro.regalloc.matching import max_weight_assignment


class StackError(ValueError):
    """Raised when a call site cannot be realised within the slot budget."""


# ----------------------------------------------------------------------
# Clusters: slot-sets that must move together
# ----------------------------------------------------------------------
@dataclass
class Cluster:
    """A maximal group of overlapping colour classes (usually one slot)."""

    cid: int
    base: int  # original base slot
    width: int  # slots occupied
    vars: list[Reg] = field(default_factory=list)

    @property
    def alignment(self) -> int:
        return max(required_alignment(v.width) for v in self.vars)


def build_clusters(coloring: dict[Reg, int]) -> list[Cluster]:
    """Partition occupied slots into contiguous move-units."""
    if not coloring:
        return []
    slot_vars: dict[int, list[Reg]] = {}
    for var, base in coloring.items():
        for slot in range(base, base + var.width):
            slot_vars.setdefault(slot, []).append(var)
    # Union slots connected through a common variable.
    parent: dict[int, int] = {s: s for s in slot_vars}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for var, base in coloring.items():
        for slot in range(base + 1, base + var.width):
            union(base, slot)

    groups: dict[int, list[int]] = {}
    for slot in slot_vars:
        groups.setdefault(find(slot), []).append(slot)

    clusters = []
    for cid, (root, slots) in enumerate(sorted(groups.items())):
        slots = sorted(slots)
        if slots != list(range(slots[0], slots[-1] + 1)):
            raise StackError("variable slot ranges must be contiguous")
        members = sorted(
            {v for s in slots for v in slot_vars[s]},
            key=lambda v: (coloring[v], v.index),
        )
        clusters.append(
            Cluster(cid=cid, base=slots[0], width=len(slots), vars=members)
        )
    return clusters


# ----------------------------------------------------------------------
# Theorem 1: movement costs and the optimal layout
# ----------------------------------------------------------------------
def movement_weight(
    cluster: Cluster, position: int, live: list[bool], heights: list[int]
) -> int:
    """W_ij generalised to clusters: slots moved across all call sites.

    ``live[k]`` is L_ik (is the cluster live across site k); ``heights``
    are the B_k.  A cluster at ``position`` must move at site k iff it is
    live there and any of its slots reaches B_k, costing ``width`` slot
    movements.
    """
    return sum(
        cluster.width
        for k, bk in enumerate(heights)
        if live[k] and position + cluster.width - 1 >= bk
    )


def optimal_layout(
    clusters: list[Cluster],
    liveness: dict[int, list[bool]],
    heights: list[int],
    total_slots: int,
    minimize_movement: bool = True,
) -> dict[int, int]:
    """Choose a home position for every cluster.

    Returns cluster id -> new base slot.  With ``minimize_movement`` off
    the identity layout is returned (the Fig. 5 ablation).
    """
    if not clusters:
        return {}
    if not minimize_movement:
        return {c.cid: c.base for c in clusters}

    positions = list(range(total_slots))
    taken = [False] * total_slots
    layout: dict[int, int] = {}

    # Wide clusters first: cheapest aligned position, widest first so
    # alignment holes stay available for narrower clusters.
    wide = sorted(
        (c for c in clusters if c.width > 1),
        key=lambda c: (-c.width, c.base),
    )
    for cluster in wide:
        best: tuple[int, int] | None = None
        for pos in range(0, total_slots - cluster.width + 1, cluster.alignment):
            if any(taken[pos : pos + cluster.width]):
                continue
            cost = movement_weight(
                cluster, pos, liveness[cluster.cid], heights
            )
            if best is None or cost < best[0]:
                best = (cost, pos)
        if best is None:
            raise StackError("no aligned position left for wide cluster")
        layout[cluster.cid] = best[1]
        for slot in range(best[1], best[1] + cluster.width):
            taken[slot] = True

    narrow = [c for c in clusters if c.width == 1]
    free_positions = [p for p in positions if not taken[p]]
    if narrow:
        if len(narrow) > len(free_positions):
            raise StackError("more slot-sets than positions")
        weights = [
            [
                -float(
                    movement_weight(c, pos, liveness[c.cid], heights)
                )
                for pos in free_positions
            ]
            for c in narrow
        ]
        assignment = max_weight_assignment(weights)
        for c, col in zip(narrow, assignment):
            layout[c.cid] = free_positions[col]
    return layout


def count_total_moves(
    clusters: list[Cluster],
    layout: dict[int, int],
    liveness: dict[int, list[bool]],
    heights: list[int],
) -> int:
    """Total slot movements a layout incurs (T_mov of Section 3.2)."""
    return sum(
        movement_weight(c, layout[c.cid], liveness[c.cid], heights)
        for c in clusters
    )


def packed_height(widths_and_alignments: list[tuple[int, int]]) -> int:
    """Minimal stack height packing values of (width, alignment)."""
    taken: list[bool] = []
    for width, alignment in sorted(
        widths_and_alignments, key=lambda wa: (-wa[0], -wa[1])
    ):
        pos = 0
        while True:
            if len(taken) < pos + width:
                taken.extend([False] * (pos + width - len(taken)))
            if pos % alignment == 0 and not any(taken[pos : pos + width]):
                for s in range(pos, pos + width):
                    taken[s] = True
                break
            pos += 1
    return len(taken)


# ----------------------------------------------------------------------
# Whole-module inter-procedure assembly
# ----------------------------------------------------------------------
@dataclass
class CallSitePlan:
    """Everything needed to rewrite one call site."""

    block: str
    index: int
    callee: str
    bk: int  # compressed height, caller-relative
    #: (variable, from_slot, to_slot) save moves, caller-relative
    saves: list[tuple[Reg, int, int]] = field(default_factory=list)

    @property
    def move_count(self) -> int:
        return sum(var.width for var, _, _ in self.saves)


@dataclass
class InterprocResult:
    """Outcome of inter-procedure allocation for one kernel's call tree."""

    bases: dict[str, int]
    #: final variable -> absolute slot, per function
    slot_maps: dict[str, dict[Reg, int]]
    plans: dict[str, list[CallSitePlan]]
    total_slots: int
    scratch_slots: int = 0

    @property
    def registers_per_thread(self) -> int:
        return self.total_slots + self.scratch_slots

    def static_move_count(self) -> int:
        """Save moves across all call sites (restores mirror them)."""
        return sum(
            plan.move_count
            for plans in self.plans.values()
            for plan in plans
        )


def plan_interprocedural(
    module: Module,
    kernel_name: str,
    colorings: dict[str, dict[Reg, int]],
    space_minimization: bool = True,
    movement_minimization: bool = True,
) -> InterprocResult:
    """Compute bases, layouts, and per-site move plans for a kernel tree.

    The compressed height of a call site is normally the packed size of
    the values held across it; fragmentation (alignment holes, or the
    identity layout of the no-movement-minimisation ablation) can make
    that unreachable, in which case planning retries with extra slack —
    trading a slightly taller stack for feasibility, exactly the
    space/movement trade-off of Section 3.2.
    """
    extra_height: dict[tuple[str, str, int], int] = {}
    for _ in range(64):
        try:
            return _plan_once(
                module,
                kernel_name,
                colorings,
                space_minimization,
                movement_minimization,
                extra_height,
            )
        except _SiteOverflow as overflow:
            extra_height[overflow.site] = (
                extra_height.get(overflow.site, 0) + 1
            )
    raise StackError(
        f"{kernel_name}: site heights did not stabilise "
        f"(requested extra: {extra_height})"
    )


class _SiteOverflow(Exception):
    """A site's compressed height left no room for its save moves."""

    def __init__(self, site: tuple[str, str, int]) -> None:
        super().__init__(site)
        self.site = site


def _plan_once(
    module: Module,
    kernel_name: str,
    colorings: dict[str, dict[Reg, int]],
    space_minimization: bool,
    movement_minimization: bool,
    extra_height: dict[tuple[str, str, int], int],
) -> InterprocResult:
    callgraph = CallGraph(module)
    # Sorted for reproducibility: name-set iteration order is hash-seed
    # dependent, and plan/layout bookkeeping follows iteration order.
    reachable = sorted(callgraph.reachable(kernel_name))
    reachable_set = set(reachable)
    top_down = [
        name
        for name in reversed(callgraph.bottom_up_order(kernel_name))
        if name in reachable_set
    ]

    slots_used: dict[str, int] = {}
    for name in reachable:
        coloring = colorings[name]
        slots_used[name] = max(
            (base + var.width for var, base in coloring.items()), default=0
        )

    liveness_info = {
        name: analyze_liveness(module.functions[name]) for name in reachable
    }

    # ---- per-function call-site facts (before layout) -----------------
    @dataclass
    class _Site:
        block: str
        index: int
        inst: Instruction
        live_across: set[Reg]
        min_height: int

    sites: dict[str, list[_Site]] = {}
    for name in reachable:
        fn = module.functions[name]
        coloring = colorings[name]
        info = liveness_info[name]
        fn_sites: list[_Site] = []
        for block, index, inst in callgraph.call_sites[name]:
            live = {
                v
                for v in info.live_across_calls[(block, index)]
                if v in coloring
            }
            arg_vars = {s for s in inst.srcs if isinstance(s, VirtualReg)}
            if space_minimization:
                held = live | {a for a in arg_vars if a in coloring}
                height = packed_height(
                    [(v.width, required_alignment(v.width)) for v in held]
                )
            else:
                height = slots_used[name]
            height += extra_height.get((name, block, index), 0)
            fn_sites.append(_Site(block, index, inst, live, height))
        sites[name] = fn_sites

    # ---- bases (top-down; every caller precedes its callees) ----------
    bases: dict[str, int] = {name: 0 for name in reachable}
    for name in top_down:
        for site in sites[name]:
            callee = site.inst.callee
            assert callee is not None
            bases[callee] = max(
                bases[callee], bases[name] + site.min_height
            )

    # ---- per-function layout optimisation ------------------------------
    slot_maps: dict[str, dict[Reg, int]] = {}
    plans: dict[str, list[CallSitePlan]] = {}
    total_slots = 0
    scratch = 0

    for name in reachable:
        fn = module.functions[name]
        coloring = colorings[name]
        clusters = build_clusters(coloring)
        heights = [
            bases[s.inst.callee] - bases[name] for s in sites[name]  # type: ignore[index]
        ]
        live_matrix = {
            c.cid: [
                any(v in s.live_across for v in c.vars) for s in sites[name]
            ]
            for c in clusters
        }
        # Pin device-function argument slots: the calling convention
        # places args at relative slots 0..n-1, so the clusters holding
        # them must not move.
        pinned = {
            c.cid: c.base
            for c in clusters
            if any(
                isinstance(v, VirtualReg)
                and v.index < fn.num_args
                and coloring[v] == v.index
                for v in c.vars
            )
        }
        layout = _layout_with_pins(
            clusters,
            live_matrix,
            heights,
            slots_used[name],
            movement_minimization,
            pinned,
        )
        slot_map = {}
        for cluster in clusters:
            delta = layout[cluster.cid] - cluster.base
            for var in cluster.vars:
                slot_map[var] = coloring[var] + delta + bases[name]
        slot_maps[name] = slot_map
        total_slots = max(total_slots, bases[name] + slots_used[name])

        # ---- save/restore planning per site ----------------------------
        fn_plans: list[CallSitePlan] = []
        for site, bk in zip(sites[name], heights):
            callee = site.inst.callee
            assert callee is not None
            plan = CallSitePlan(site.block, site.index, callee, bk)
            live_rel = {
                v: slot_map[v] - bases[name] for v in site.live_across
            }
            arg_slots = {
                slot_map[s] - bases[name]
                for s in site.inst.srcs
                if isinstance(s, VirtualReg) and s in slot_map
            }
            result_slots: set[int] = set()
            if site.inst.dst is not None and site.inst.dst in slot_map:
                rbase = slot_map[site.inst.dst] - bases[name]
                result_slots = set(
                    range(rbase, rbase + site.inst.dst.width)
                )
            occupied: set[int] = set(result_slots)
            for var, rel in live_rel.items():
                occupied.update(range(rel, rel + var.width))
            occupied |= arg_slots
            movers = sorted(
                (
                    (var, rel)
                    for var, rel in live_rel.items()
                    if rel + var.width - 1 >= bk
                ),
                key=lambda vr: (-vr[0].width, vr[1]),
            )
            for var, rel in movers:
                dest = _find_free_range(
                    occupied, bk, var.width, required_alignment(var.width)
                )
                if dest is None:
                    # No room below B_k (alignment holes, or the result
                    # and argument slots eat the space): retry the plan
                    # with this site one slot taller.
                    raise _SiteOverflow((name, site.block, site.index))
                plan.saves.append((var, rel, dest))
                occupied.update(range(dest, dest + var.width))
                for s in range(rel, rel + var.width):
                    occupied.discard(s)
            fn_plans.append(plan)
            # Argument slots live in the callee window; reserve one more
            # slot for the parallel-copy scratch register when there are
            # arguments at all (cycles among argument copies are rare but
            # possible).
            n_args = len(site.inst.srcs)
            if n_args:
                total_slots = max(
                    total_slots, bases[name] + bk + n_args + 1
                )
        plans[name] = fn_plans

    return InterprocResult(
        bases=bases,
        slot_maps=slot_maps,
        plans=plans,
        total_slots=total_slots,
        scratch_slots=scratch,
    )


def _layout_with_pins(
    clusters: list[Cluster],
    live_matrix: dict[int, list[bool]],
    heights: list[int],
    total_slots: int,
    minimize_movement: bool,
    pinned: dict[int, int],
) -> dict[int, int]:
    if not minimize_movement or not clusters:
        return {c.cid: c.base for c in clusters}
    free = [c for c in clusters if c.cid not in pinned]
    taken = [False] * total_slots
    for cid, base in pinned.items():
        cluster = next(c for c in clusters if c.cid == cid)
        for slot in range(base, base + cluster.width):
            taken[slot] = True
    layout = dict(pinned)
    # Wide first (greedy aligned), then narrow via Kuhn–Munkres.
    wide = sorted((c for c in free if c.width > 1), key=lambda c: -c.width)
    for cluster in wide:
        best: tuple[int, int] | None = None
        for pos in range(0, total_slots - cluster.width + 1, cluster.alignment):
            if any(taken[pos : pos + cluster.width]):
                continue
            cost = movement_weight(cluster, pos, live_matrix[cluster.cid], heights)
            if best is None or cost < best[0]:
                best = (cost, pos)
        if best is None:
            raise StackError("no aligned position left for wide cluster")
        layout[cluster.cid] = best[1]
        for slot in range(best[1], best[1] + cluster.width):
            taken[slot] = True
    narrow = [c for c in free if c.width == 1]
    if narrow:
        free_positions = [p for p in range(total_slots) if not taken[p]]
        if len(narrow) > len(free_positions):
            raise StackError("more slot-sets than positions")
        weights = [
            [
                -float(movement_weight(c, pos, live_matrix[c.cid], heights))
                for pos in free_positions
            ]
            for c in narrow
        ]
        assignment = max_weight_assignment(weights)
        for c, col in zip(narrow, assignment):
            layout[c.cid] = free_positions[col]
    return layout


def _find_free_range(
    occupied: set[int], limit: int, width: int, alignment: int
) -> int | None:
    """Lowest aligned base below ``limit`` with ``width`` free slots."""
    for base in range(0, limit - width + 1, alignment):
        if all(slot not in occupied for slot in range(base, base + width)):
            return base
    return None


# ----------------------------------------------------------------------
# Code rewriting: virtual -> absolute physical slots + call protocols
# ----------------------------------------------------------------------
def rewrite_module(
    module: Module,
    kernel_name: str,
    result: InterprocResult,
) -> None:
    """Rewrite every reachable function to absolute physical registers.

    Calls become bare control transfers: arguments are copied into the
    callee's argument slots, the result is fetched from the callee's
    base slot, and compressible-stack save/restore moves bracket the
    call per the site plan.
    """
    for name, slot_map in result.slot_maps.items():
        fn = module.functions[name]
        base = result.bases[name]
        mapping: dict[Reg, PhysReg] = {
            var: PhysReg(slot, var.width) for var, slot in slot_map.items()
        }

        plans_by_site = {
            (plan.block, plan.index): plan for plan in result.plans[name]
        }
        for block in fn.ordered_blocks():
            rewritten: list[Instruction] = []
            for idx, inst in enumerate(block.instructions):
                plan = plans_by_site.get((block.label, idx))
                if plan is not None:
                    rewritten.extend(
                        _rewrite_call(inst, plan, mapping, base, result)
                    )
                    continue
                if inst.opcode is Opcode.RET and inst.srcs:
                    value = inst.srcs[0]
                    moved = _map_operand(value, mapping)
                    width = (
                        value.width
                        if isinstance(value, (VirtualReg, PhysReg))
                        else 1
                    )
                    rewritten.append(mov(PhysReg(base, width), moved))
                    rewritten.append(Instruction(Opcode.RET))
                    continue
                if inst.dst is not None and isinstance(inst.dst, VirtualReg):
                    if inst.dst not in mapping:
                        raise StackError(
                            f"uncoloured variable {inst.dst} in {name}"
                        )
                    inst.dst = mapping[inst.dst]
                inst.srcs = [_map_operand(s, mapping) for s in inst.srcs]
                rewritten.append(inst)
            block.instructions = rewritten


def _map_operand(op: Operand, mapping: dict[Reg, PhysReg]) -> Operand:
    if isinstance(op, VirtualReg):
        phys = mapping.get(op)
        if phys is None:
            raise StackError(f"uncoloured variable {op}")
        return phys
    return op


def _rewrite_call(
    inst: Instruction,
    plan: CallSitePlan,
    mapping: dict[Reg, PhysReg],
    caller_base: int,
    result: InterprocResult,
) -> list[Instruction]:
    callee_base = result.bases[plan.callee]
    out: list[Instruction] = []

    # 1. Save moves (compress the caller's live stack below B_k).
    for var, from_rel, to_rel in plan.saves:
        out.append(
            mov(
                PhysReg(caller_base + to_rel, var.width),
                PhysReg(caller_base + from_rel, var.width),
            )
        )
    # 2. Argument copies into the callee frame — a parallel copy, since
    #    an argument's source slot may be another argument's destination.
    save_relocation = {
        caller_base + from_rel: caller_base + to_rel
        for _, from_rel, to_rel in plan.saves
    }
    arg_copies: list[tuple[PhysReg, Operand]] = []
    for i, src in enumerate(inst.srcs):
        dest = PhysReg(callee_base + i, 1)
        if isinstance(src, VirtualReg):
            phys = mapping[src]
            # If this argument was itself saved, read the saved location.
            index = save_relocation.get(phys.index, phys.index)
            arg_copies.append((dest, PhysReg(index, phys.width)))
        else:
            arg_copies.append((dest, src))
    scratch = PhysReg(callee_base + len(inst.srcs), 1)
    out.extend(_sequential_slot_copies(arg_copies, scratch))

    # 3. The call itself, stripped to a control transfer.
    out.append(Instruction(Opcode.CALL, callee=inst.callee))

    # 4. Fetch the result before restores can clobber the callee window.
    if inst.dst is not None:
        dst_phys = (
            mapping[inst.dst]
            if isinstance(inst.dst, VirtualReg)
            else inst.dst
        )
        out.append(
            mov(dst_phys, PhysReg(callee_base, dst_phys.width))
        )
    # 5. Restore moves (mirror of the saves).
    for var, from_rel, to_rel in reversed(plan.saves):
        out.append(
            mov(
                PhysReg(caller_base + from_rel, var.width),
                PhysReg(caller_base + to_rel, var.width),
            )
        )
    return out


def _sequential_slot_copies(
    copies: list[tuple[PhysReg, Operand]], scratch: PhysReg
) -> list[Instruction]:
    """Sequentialise a parallel copy over physical slots."""
    pending = [
        (dst, src)
        for dst, src in copies
        if not (isinstance(src, PhysReg) and src.index == dst.index)
    ]
    out: list[Instruction] = []
    while pending:
        blocked = {
            slot
            for _, src in pending
            if isinstance(src, PhysReg)
            for slot in src.slots
        }
        progress = False
        for i, (dst, src) in enumerate(pending):
            if not any(slot in blocked for slot in dst.slots):
                out.append(mov(dst, src))
                pending.pop(i)
                progress = True
                break
        if progress:
            continue
        dst, src = pending[0]
        assert isinstance(src, PhysReg)
        out.append(mov(PhysReg(scratch.index, src.width), src))
        pending = [
            (
                d,
                PhysReg(scratch.index, src.width)
                if isinstance(s, PhysReg) and s.index == src.index
                else s,
            )
            for d, s in pending
        ]
    return out
