"""Conservative copy coalescing (Briggs) for the Fig. 4 allocator.

φ elimination and spill handling introduce register-to-register MOVs;
coalescing merges move-related variables that do not interfere so the
copies disappear.  The paper's related-work section singles out exactly
this lineage (chordal colouring and Hack & Goos's copy coalescing) as
the single-procedure state of the art Orion builds on.

The merge test is Briggs's conservative criterion: combine ``a`` and
``b`` only if the merged node has fewer than ``C`` neighbours of
*significant* degree (degree ≥ C, counted in slot units) — such a node
is guaranteed still colourable, so coalescing can never cause a spill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.interference import InterferenceGraph, move_pairs
from repro.isa.instructions import Opcode
from repro.isa.registers import Reg, VirtualReg


@dataclass
class CoalesceReport:
    merged_pairs: int = 0
    removed_moves: int = 0
    #: representative chosen for each merged-away variable
    replacements: dict[Reg, Reg] = field(default_factory=dict)


def coalesce_moves(
    fn: Function,
    graph: InterferenceGraph,
    num_colors: int,
    precolored: dict[Reg, int] | None = None,
) -> CoalesceReport:
    """Merge move-related variables conservatively (in place).

    The function is rewritten (sources of merged pairs replaced by the
    representative; degenerate self-moves dropped).  The caller must
    rebuild the interference graph afterwards.
    """
    precolored = precolored or {}
    report = CoalesceReport()

    pairs = move_pairs(fn)
    if not pairs:
        return report

    # Dense-id domain (see ``InterferenceGraph.dense``): the merge loop
    # runs over int ids and int sets, so no Reg-object adjacency sets
    # are materialised or hashed.  Same merges, same report.
    nodes, graph_ids, nbr_ids, widths = graph.dense()
    ids = dict(graph_ids)  # extended locally for regs not in the graph
    nodes = list(nodes)
    widths = list(widths)
    adjacency = [set(ns) for ns in nbr_ids]
    # Degrees (neighbour widths, slot units) maintained incrementally
    # across merges instead of re-summed per Briggs test.
    deg = [sum(widths[n] for n in ns) for ns in nbr_ids]

    def gid(v: Reg) -> int:
        i = ids.get(v)
        if i is None:
            i = len(nodes)
            ids[v] = i
            nodes.append(v)
            widths.append(v.width)
            adjacency.append(set())
            deg.append(0)
        return i

    pre_ids = {ids[v] for v in precolored if v in ids}

    # Union-find over variables, so chains of moves collapse.
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        while parent.get(x, x) != x:
            parent[x] = parent.get(parent[x], parent[x])
            x = parent[x]
        return x

    for dst, src in pairs:
        a, b = find(gid(dst)), find(gid(src))
        if a == b:
            report.merged_pairs += 1
            continue
        if a in pre_ids or b in pre_ids:
            continue
        if not isinstance(nodes[a], VirtualReg) or not isinstance(
            nodes[b], VirtualReg
        ):
            continue
        if widths[a] != widths[b]:
            continue
        if b in adjacency[a]:
            continue  # interfering: must stay separate
        neighbors = adjacency[a] | adjacency[b]
        significant = sum(
            widths[n]
            for n in neighbors
            if deg[n] >= num_colors or n in pre_ids
        )
        if significant + widths[a] > num_colors:
            continue  # Briggs test failed: might no longer colour
        # Merge b into a.
        parent[b] = a
        merged = neighbors - {a, b}
        adjacency[a] = merged
        wb = widths[b]  # == widths[a], checked above
        for n in merged:
            nbrs = adjacency[n]
            if b in nbrs:
                nbrs.discard(b)
                if a in nbrs:
                    # n saw both halves: the merge removes one of them.
                    deg[n] -= wb
                else:
                    nbrs.add(a)  # b swapped for equal-width a: no change
            # else: n neighboured a only — untouched by the merge.
        adjacency[b] = set()
        deg[a] = sum(widths[n] for n in merged)
        deg[b] = 0
        report.merged_pairs += 1
        report.replacements[nodes[b]] = nodes[a]

    if not report.replacements:
        return report

    # Rewrite the function and drop moves that became self-copies.
    resolved = {
        var: nodes[find(ids[var])] for var in report.replacements
    }
    for block in fn.ordered_blocks():
        kept = []
        for inst in block.instructions:
            if inst.dst is not None and inst.dst in resolved:
                inst.dst = resolved[inst.dst]
            inst.replace_reg_uses(dict(resolved))
            if (
                inst.opcode is Opcode.MOV
                and inst.srcs
                and inst.dst == inst.srcs[0]
            ):
                report.removed_moves += 1
                continue
            kept.append(inst)
        block.instructions = kept
    return report
