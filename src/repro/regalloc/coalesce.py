"""Conservative copy coalescing (Briggs) for the Fig. 4 allocator.

φ elimination and spill handling introduce register-to-register MOVs;
coalescing merges move-related variables that do not interfere so the
copies disappear.  The paper's related-work section singles out exactly
this lineage (chordal colouring and Hack & Goos's copy coalescing) as
the single-procedure state of the art Orion builds on.

The merge test is Briggs's conservative criterion: combine ``a`` and
``b`` only if the merged node has fewer than ``C`` neighbours of
*significant* degree (degree ≥ C, counted in slot units) — such a node
is guaranteed still colourable, so coalescing can never cause a spill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Function
from repro.ir.interference import InterferenceGraph, move_pairs
from repro.isa.instructions import Opcode
from repro.isa.registers import Reg, VirtualReg


@dataclass
class CoalesceReport:
    merged_pairs: int = 0
    removed_moves: int = 0
    #: representative chosen for each merged-away variable
    replacements: dict[Reg, Reg] = field(default_factory=dict)


def coalesce_moves(
    fn: Function,
    graph: InterferenceGraph,
    num_colors: int,
    precolored: dict[Reg, int] | None = None,
) -> CoalesceReport:
    """Merge move-related variables conservatively (in place).

    The function is rewritten (sources of merged pairs replaced by the
    representative; degenerate self-moves dropped).  The caller must
    rebuild the interference graph afterwards.
    """
    precolored = precolored or {}
    report = CoalesceReport()

    # Union-find over variables, so chains of moves collapse.
    parent: dict[Reg, Reg] = {}

    def find(x: Reg) -> Reg:
        while parent.get(x, x) != x:
            parent[x] = parent.get(parent[x], parent[x])
            x = parent[x]
        return x

    # Work on a mutable copy of the adjacency for incremental merging.
    adjacency = {v: set(ns) for v, ns in graph.adjacency.items()}

    def degree(v: Reg) -> int:
        return sum(n.width for n in adjacency.get(v, ()))

    for dst, src in move_pairs(fn):
        a, b = find(dst), find(src)
        if a == b:
            report.merged_pairs += 1
            continue
        if a in precolored or b in precolored:
            continue
        if not isinstance(a, VirtualReg) or not isinstance(b, VirtualReg):
            continue
        if a.width != b.width:
            continue
        if b in adjacency.get(a, ()):
            continue  # interfering: must stay separate
        neighbors = adjacency.get(a, set()) | adjacency.get(b, set())
        significant = sum(
            n.width
            for n in neighbors
            if degree(n) >= num_colors or n in precolored
        )
        if significant + a.width > num_colors:
            continue  # Briggs test failed: might no longer colour
        # Merge b into a.
        parent[b] = a
        merged = neighbors - {a, b}
        adjacency[a] = merged
        for n in merged:
            adjacency.setdefault(n, set()).discard(b)
            adjacency[n].add(a)
        adjacency.pop(b, None)
        report.merged_pairs += 1
        report.replacements[b] = a

    if not report.replacements:
        return report

    # Rewrite the function and drop moves that became self-copies.
    resolved = {var: find(var) for var in report.replacements}
    for block in fn.ordered_blocks():
        kept = []
        for inst in block.instructions:
            if inst.dst is not None and inst.dst in resolved:
                inst.dst = resolved[inst.dst]
            inst.replace_reg_uses(dict(resolved))
            if (
                inst.opcode is Opcode.MOV
                and inst.srcs
                and inst.dst == inst.srcs[0]
            ):
                report.removed_moves += 1
                continue
            kept.append(inst)
        block.instructions = kept
    return report
