"""Maximum-weight bipartite matching via the Kuhn–Munkres algorithm.

Paper Section 3.2 reduces the minimal-movement slot-layout problem (MMA)
to maximum-weight bipartite matching between variable sets and physical
on-chip slots, solved "using the modified Kuhn–Munkres algorithm, with
O(M³) time complexity".  This is that solver, implemented from scratch
(the shortest-augmenting-path / potentials formulation, which is the
standard O(n³) Hungarian variant).

When the ``ORION_ACCEL`` fast path is on and scipy imports,
:func:`min_cost_assignment` dispatches to
``scipy.optimize.linear_sum_assignment`` (the LAPJV family: a C
shortest-augmenting-path solver) and keeps the pure solver as the
reference and fallback.  Both implementations are deterministic for a
given matrix; the infeasible-assignment guard from the pure solver is
preserved — a scipy infeasibility (or any scipy rejection of the
matrix) re-runs the pure solver so error behaviour, down to the
exception message, is identical.
"""

from __future__ import annotations

from repro import accel

INFINITY = float("inf")


def min_cost_assignment(cost: list[list[float]]) -> list[int]:
    """Assign each row to a distinct column minimising total cost.

    ``cost`` must be an n×m matrix with n <= m.  Returns ``assign`` with
    ``assign[i]`` = column matched to row ``i``.  O(n²·m) pure, LAPJV
    via scipy on the accelerated path.
    """
    n = len(cost)
    if n == 0:
        return []
    m = len(cost[0])
    if any(len(row) != m for row in cost):
        raise ValueError("cost matrix rows have unequal lengths")
    if n > m:
        raise ValueError("need at least as many columns as rows")
    optimize = accel.scipy_optimize_or_none()
    if optimize is not None:
        accel.count_selected("matcher", "lapjv")
        try:
            _, cols = optimize.linear_sum_assignment(cost)
        except ValueError:
            # scipy rejected the matrix (infeasible, or entries it will
            # not take).  The pure solver defines the error contract:
            # re-run it so callers see exactly the reference behaviour —
            # the PR 3 infeasible-assignment ValueError, or a result.
            return _min_cost_assignment_pure(cost)
        return [int(j) for j in cols]
    accel.count_selected("matcher", "pure")
    return _min_cost_assignment_pure(cost)


def _min_cost_assignment_pure(cost: list[list[float]]) -> list[int]:
    """The reference O(n²·m) Hungarian solver (potentials formulation)."""
    n = len(cost)
    m = len(cost[0])

    # Potentials u (rows), v (columns); matching stored as way/links.
    # 1-indexed internally, following the classic formulation.
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    match = [0] * (m + 1)  # column -> row (0 = free)
    way = [0] * (m + 1)

    for i in range(1, n + 1):
        match[0] = i
        j0 = 0
        minv = [INFINITY] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = match[j0]
            delta = INFINITY
            j1 = -1
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            if j1 == -1:
                # Every unassignable column costs infinity: row i cannot
                # be matched at all (all its edges are forbidden).
                # Without this guard j0 becomes -1 and match[-1]/way[-1]
                # silently corrupt the matching from the last column.
                raise ValueError(
                    f"infeasible assignment: row {i - 1} has no "
                    "finite-cost column left"
                )
            for j in range(m + 1):
                if used[j]:
                    u[match[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if match[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            match[j0] = match[j1]
            j0 = j1

    assign = [-1] * n
    for j in range(1, m + 1):
        if match[j]:
            assign[match[j] - 1] = j - 1
    return assign


def max_weight_assignment(weights: list[list[float]]) -> list[int]:
    """Assign rows to columns maximising total weight (perfect on rows).

    This is the paper's formulation: edge weights are −W_ij (movement
    counts negated), and a maximum-weight perfect matching minimises the
    total number of movements.
    """
    negated = [[-w for w in row] for row in weights]
    return min_cost_assignment(negated)


def assignment_weight(weights: list[list[float]], assign: list[int]) -> float:
    """Total weight of an assignment (for tests and reporting)."""
    return sum(weights[i][j] for i, j in enumerate(assign))
