"""Compile-time occupancy tuning (paper Section 3.3, Fig. 8).

The compiler narrows the occupancy search to at most a handful of
candidate kernel versions the runtime then trials:

1. the **original** version — all live values in the minimal number of
   registers (or the per-thread hardware cap), the safe starting point;
2. the tuning **direction** from max-live: at or above the
   full-occupancy register count (32 on Kepler) the kernel starts low
   and tunes *upward*; below it the kernel already runs at maximum
   occupancy and tunes *downward*;
3. upward: one version per occupancy level from the **conservative**
   level (everything fits on-chip: registers + shared memory) up to the
   hardware maximum, thinned to ``max_versions``;
   downward: the original binary re-padded with unused shared memory at
   each lower level (no recompilation needed — Fig. 8's comment);
4. a **fail-safe** version in the opposite direction, in case the
   predicted direction is wrong at runtime;
5. kernels that cannot be dynamically tuned fall back to the ICS'14
   static selection.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.arch.occupancy import occupancy_levels
from repro.arch.specs import CacheConfig, GpuArchitecture
from repro.compiler.maxlive import kernel_max_live, tuning_direction
from repro.compiler.realize import (
    KernelVersion,
    RealizeError,
    realize_occupancy,
    repad_version,
)
from repro.compiler.static_select import static_selection
from repro.ir.function import Module
from repro.isa.encoding import encode_module
from repro.obs.spans import span
from repro.regalloc.allocator import allocate_module, minimal_budget
from repro.regalloc.strategy import (
    DEFAULT_STRATEGY_ID,
    AllocationStrategy,
    get_strategy,
)


def _count_realization(
    kernel_name: str, version, strategy: str = DEFAULT_STRATEGY_ID
) -> None:
    """One candidate realization attempt, by outcome and strategy.

    The parallel path counts in the parent after gathering futures —
    counters incremented inside worker processes would be lost with the
    process.
    """
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "orion_candidate_realizations_total",
        "Candidate kernel-version realization attempts per kernel.",
    ).inc(
        kernel=kernel_name,
        result="ok" if version is not None else "infeasible",
        strategy=strategy,
    )


@dataclass
class TuningPlan:
    """The compiler's candidate set handed to the runtime tuner."""

    kernel_name: str
    direction: str  # "increasing" | "decreasing"
    can_tune: bool
    #: trial order: versions[0] runs first (the original), then the
    #: runtime walks forward while performance improves.
    versions: list[KernelVersion] = field(default_factory=list)
    #: opposite-direction fallback tried only on misprediction
    failsafe: list[KernelVersion] = field(default_factory=list)
    max_live: int = 0

    @property
    def original(self) -> KernelVersion:
        return self.versions[0]

    def all_versions(self) -> list[KernelVersion]:
        return list(self.versions) + list(self.failsafe)


def original_version(
    module: Module,
    kernel_name: str,
    arch: GpuArchitecture,
    block_size: int,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    strategy: str | AllocationStrategy | None = None,
) -> KernelVersion:
    """The paper's *original*: minimal spill-free registers (or the cap)."""
    strat = get_strategy(strategy)
    try:
        budget = minimal_budget(
            module, kernel_name, upper_bound=arch.max_registers_per_thread
        )
    except Exception:
        # Cannot fit spill-free under the hardware cap: use the cap.
        budget = arch.max_registers_per_thread
    outcome = allocate_module(
        module, kernel_name, budget, block_size=block_size, strategy=strat
    )
    occ = strat.occupancy(
        arch,
        block_size,
        outcome.registers_per_thread,
        outcome.shared_bytes_per_block,
        cache_config,
    )
    return KernelVersion(
        label="original",
        target_warps=occ.active_warps,
        achieved_warps=occ.active_warps,
        occupancy=occ.occupancy,
        regs_per_thread=outcome.registers_per_thread,
        smem_per_block=outcome.shared_bytes_per_block,
        smem_padding=0,
        outcome=outcome,
        binary=encode_module(outcome.module),
        strategy=strat.id,
    )


def conservative_level(
    module: Module,
    kernel_name: str,
    arch: GpuArchitecture,
    block_size: int,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    strategy: str | AllocationStrategy | None = None,
) -> int:
    """Highest warp count at which all live values still fit on-chip.

    At ``W`` resident warps each thread owns ``regs/W·32`` register
    slots plus its share of spare shared memory; the conservative level
    is the largest ``W`` whose combined slots cover max-live.  A
    soft-limit strategy sees a proportionally larger register file.
    """
    strat = get_strategy(strategy)
    ml = max(1, kernel_max_live(module, kernel_name))
    user_smem = module.functions[kernel_name].shared_bytes
    warps_per_block = max(1, (block_size + arch.warp_size - 1) // arch.warp_size)
    best = occupancy_levels(arch, block_size)[0]
    register_capacity = int(
        arch.registers_per_sm * strat.reg_oversubscription
    )
    for warps in occupancy_levels(arch, block_size):
        threads = warps * arch.warp_size
        reg_slots = register_capacity // threads
        blocks = warps // warps_per_block
        spare_smem = arch.shared_memory_bytes(cache_config) - blocks * user_smem
        smem_slots = max(0, spare_smem) // (threads * 4)
        if reg_slots + smem_slots >= ml:
            best = warps
    return best


def compile_time_tuning(
    module: Module,
    kernel_name: str,
    arch: GpuArchitecture,
    block_size: int,
    can_tune: bool = True,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    max_versions: int = 5,
    jobs: int | None = None,
    strategies: tuple[str, ...] | None = None,
) -> TuningPlan:
    """Fig. 8: produce the candidate kernel-version set.

    ``jobs`` realises independent occupancy candidates in parallel
    worker processes (``None`` reads ``ORION_COMPILE_JOBS``, default 1).
    Parallelism never changes the plan: ``versions[0]`` is still the
    original, candidates keep their occupancy order, and the resulting
    binaries are byte-identical to a sequential compile — workers are
    gathered in submission order and any pool failure falls back to the
    sequential path.

    ``strategies`` enumerates candidates per allocation strategy ×
    occupancy level (upward direction); ``None`` means the reference
    ``local-spill`` only, which reproduces today's plan exactly.  The
    *first* strategy is primary: it realises the original version and
    the fail-safes, so mixed-strategy plans stay anchored to a known
    baseline.  Downward tuning re-pads the original binary, which never
    spills — strategies are equivalent there, so only the primary is
    used.
    """
    strategy_set = tuple(strategies) if strategies else (DEFAULT_STRATEGY_ID,)
    for sid in strategy_set:
        get_strategy(sid)  # validate early
    primary = strategy_set[0]
    threshold = arch.registers_per_thread_at_full_occupancy
    direction = tuning_direction(module, kernel_name, threshold)
    plan = TuningPlan(
        kernel_name=kernel_name,
        direction=direction,
        can_tune=can_tune,
        max_live=kernel_max_live(module, kernel_name),
    )
    original = original_version(
        module, kernel_name, arch, block_size, cache_config, strategy=primary
    )
    plan.versions.append(original)
    levels = occupancy_levels(arch, block_size)

    if direction == "increasing":
        realized_per_strategy: list[list[KernelVersion]] = []
        for sid in strategy_set:
            floor = conservative_level(
                module, kernel_name, arch, block_size, cache_config,
                strategy=sid,
            )
            targets = [
                w
                for w in levels
                if w >= max(floor, original.achieved_warps + 1)
            ]
            targets = _thin(targets, max_versions - 1)
            realized_per_strategy.append(
                _realize_targets(
                    module,
                    kernel_name,
                    arch,
                    block_size,
                    targets,
                    cache_config,
                    _resolve_jobs(jobs),
                    strategy=sid,
                )
            )
        if len(realized_per_strategy) == 1:
            plan.versions.extend(realized_per_strategy[0])
        else:
            # Interleave strategies level by level (ascending warps,
            # declared strategy order breaking ties) so the runtime
            # hill-climb compares spill targets at each occupancy step.
            rank = {sid: i for i, sid in enumerate(strategy_set)}
            merged = [v for group in realized_per_strategy for v in group]
            merged.sort(key=lambda v: (v.target_warps, rank[v.strategy]))
            plan.versions.extend(merged)
        # Fail-safe: one padded version below the original.
        lower = [w for w in levels if w < original.achieved_warps]
        if lower:
            try:
                plan.failsafe.append(
                    repad_version(
                        original,
                        arch,
                        block_size,
                        lower[-1],
                        cache_config,
                        label=f"failsafe warps={lower[-1]}",
                    )
                )
            except RealizeError:
                pass
    else:
        # Downward: the original binary re-padded at each lower level.
        lower = [w for w in levels if w < original.achieved_warps]
        for warps in _thin(list(reversed(lower)), max_versions - 1):
            try:
                plan.versions.append(
                    repad_version(
                        original,
                        arch,
                        block_size,
                        warps,
                        cache_config,
                        label=f"padded warps={warps}",
                    )
                )
            except RealizeError:
                continue
        # Fail-safe upward: a conservative version above the original,
        # when the original is not already at the hardware maximum.
        upper = [w for w in levels if w > original.achieved_warps]
        if upper:
            try:
                plan.failsafe.append(
                    realize_occupancy(
                        module,
                        kernel_name,
                        arch,
                        block_size,
                        upper[0],
                        cache_config,
                        conservative=True,
                        label=f"failsafe warps={upper[0]}",
                        strategy=primary,
                    )
                )
            except RealizeError:
                pass

    if not can_tune:
        chosen = static_selection(
            module, kernel_name, arch, plan.all_versions()
        )
        plan.versions = [chosen]
        plan.failsafe = []
    return plan


def _resolve_jobs(jobs: int | None) -> int:
    """Effective worker count: explicit arg, else ``ORION_COMPILE_JOBS``."""
    if jobs is None:
        raw = os.environ.get("ORION_COMPILE_JOBS", "")
        try:
            jobs = int(raw) if raw else 1
        except ValueError:
            jobs = 1
    return max(1, jobs)


def _realize_one(
    module: Module,
    kernel_name: str,
    arch: GpuArchitecture,
    block_size: int,
    warps: int,
    cache_config: CacheConfig,
    strategy: str = DEFAULT_STRATEGY_ID,
) -> KernelVersion | None:
    """One conservative candidate, or ``None`` when unrealisable.

    Module-level (picklable, strategy passed by id) so it can run in a
    worker process; failures come back as values rather than exceptions
    to keep the RealizeError semantics identical across transports.
    Non-default strategies are tagged in the label so every candidate in
    a mixed plan stays uniquely addressable (warm starts and the tuner
    both key on labels).
    """
    suffix = "" if strategy == DEFAULT_STRATEGY_ID else f" [{strategy}]"
    try:
        return realize_occupancy(
            module,
            kernel_name,
            arch,
            block_size,
            warps,
            cache_config,
            conservative=True,
            label=f"conservative warps={warps}{suffix}",
            strategy=strategy,
        )
    except RealizeError:
        return None


def _realize_targets(
    module: Module,
    kernel_name: str,
    arch: GpuArchitecture,
    block_size: int,
    targets: list[int],
    cache_config: CacheConfig,
    jobs: int,
    strategy: str = DEFAULT_STRATEGY_ID,
) -> list[KernelVersion]:
    """Realise each target level, in parallel when ``jobs > 1``.

    Candidates are independent compiles of the same input module, so the
    only ordering requirement is that results come back in target order;
    gathering futures in submission order guarantees that.  Any pool
    failure (no fork support, pickling, resource limits) silently falls
    back to the sequential loop, which is also the ``jobs == 1`` path.
    """
    if jobs > 1 and len(targets) > 1:
        try:
            with span(
                "realize_batch", kernel=kernel_name, targets=len(targets)
            ):
                return _realize_parallel(
                    module,
                    kernel_name,
                    arch,
                    block_size,
                    targets,
                    cache_config,
                    jobs,
                    strategy,
                )
        except Exception:
            pass  # fall through to the sequential path
    versions = []
    for warps in targets:
        with span("realize", kernel=kernel_name, warps=warps):
            version = _realize_one(
                module,
                kernel_name,
                arch,
                block_size,
                warps,
                cache_config,
                strategy,
            )
        _count_realization(kernel_name, version, strategy)
        if version is not None:
            versions.append(version)
    return versions


def _realize_parallel(
    module: Module,
    kernel_name: str,
    arch: GpuArchitecture,
    block_size: int,
    targets: list[int],
    cache_config: CacheConfig,
    jobs: int,
    strategy: str = DEFAULT_STRATEGY_ID,
) -> list[KernelVersion]:
    import concurrent.futures
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        context = multiprocessing.get_context("fork")
    else:  # pragma: no cover - platform without fork
        context = multiprocessing.get_context()
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=min(jobs, len(targets)), mp_context=context
    ) as pool:
        futures = [
            pool.submit(
                _realize_one,
                module,
                kernel_name,
                arch,
                block_size,
                warps,
                cache_config,
                strategy,
            )
            for warps in targets
        ]
        results = [future.result() for future in futures]
    for version in results:
        _count_realization(kernel_name, version, strategy)
    return [version for version in results if version is not None]


def _thin(targets: list[int], limit: int) -> list[int]:
    """Keep at most ``limit`` levels, preserving both endpoints."""
    if limit <= 0:
        return []
    if len(targets) <= limit:
        return targets
    if limit == 1:
        return [targets[-1]]
    step = (len(targets) - 1) / (limit - 1)
    picked = sorted({round(i * step) for i in range(limit)})
    return [targets[i] for i in picked]
