"""The *max-live* metric (paper Section 3.3).

"We use a metric called max-live, which is equal to the number of
registers necessary to hold all simultaneously live variables."  The
compile-time tuner compares it against the number of registers per
thread at full occupancy (32 on Kepler: 65536 regs / 2048 threads) to
pick the tuning direction: a kernel whose max-live exceeds the
threshold starts at low occupancy and tunes *upward*; one below it
already runs at maximum occupancy and can only tune *downward*.

For kernels with calls the metric follows the deepest chain the
compressible stack must hold: at a call site the caller keeps its live
values packed below the callee's window.
"""

from __future__ import annotations

from repro.ir.callgraph import CallGraph
from repro.ir.function import Module
from repro.ir.liveness import analyze_liveness
from repro.isa.registers import required_alignment
from repro.regalloc.stack import packed_height


def function_max_live(module: Module, name: str) -> int:
    """Max-live of one function, ignoring its callees."""
    return analyze_liveness(module.functions[name]).max_live


def kernel_max_live(module: Module, kernel_name: str) -> int:
    """Inter-procedural max-live of a kernel's whole call tree.

    ``ml(f) = max(own max-live, max over sites (packed live-at-site +
    ml(callee)))`` — the registers a thread needs with perfect (spill
    free, compressible-stack) allocation.
    """
    callgraph = CallGraph(module)
    memo: dict[str, int] = {}
    for name in callgraph.bottom_up_order(kernel_name):
        fn = module.functions[name]
        info = analyze_liveness(fn)
        best = info.max_live
        for block, index, inst in callgraph.call_sites[name]:
            live = info.live_across_calls[(block, index)]
            height = packed_height(
                [(v.width, required_alignment(v.width)) for v in live]
            )
            callee = inst.callee
            assert callee is not None
            best = max(best, height + memo.get(callee, 0))
        memo[name] = best
    return memo[kernel_name]


def tuning_direction(
    module: Module, kernel_name: str, full_occupancy_registers: int
) -> str:
    """Fig. 8 lines 1–4: "increasing" iff max-live >= the threshold."""
    if kernel_max_live(module, kernel_name) >= full_occupancy_registers:
        return "increasing"
    return "decreasing"
