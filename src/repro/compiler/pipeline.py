"""The Orion compiler driver: front end → middle end → back end.

Paper Section 4: "The front end is responsible for taking a GPU binary
file as input, converting it into assembly code, and analyzing the
assembly to extract a high level intermediate representation.  The
middle end ... obtains a single static assignment (SSA) form of the
code, extracts live ranges, performs resource allocation, updates the
control flow graph, and writes back to the assembly code.  The static
multi-kernel selection and generation is in the middle end.  The back
end converts the transformed assembly code back to binary code."

:func:`compile_binary` is that whole path: it accepts an ORAS binary
(or an in-memory module), runs the Fig. 8 compile-time tuning, and
returns the multi-version binary for the runtime.  The driver consults
the content-addressed compile cache (:mod:`repro.perf.cache`) first —
a hit deserializes the stored fat binary instead of re-running the
middle end — and wraps every stage in a :func:`repro.obs.spans.span`,
which charges :data:`repro.perf.TIMERS` and emits paired
``span_start``/``span_end`` telemetry when a hub is ambient.

:func:`nvcc_baseline` models the paper's comparison point: a quality
single-thread allocation (graph colouring under the 63-register cap)
that is *occupancy-oblivious* — no compressible-stack space or movement
optimisation, no shared-memory promotion, no occupancy search.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.occupancy import calculate_occupancy
from repro.arch.specs import CacheConfig, GpuArchitecture
from repro.compiler.multiversion import MultiVersionBinary
from repro.compiler.realize import KernelVersion
from repro.compiler.tuning import compile_time_tuning
from repro.ir.function import Module
from repro.isa.encoding import decode_module, encode_module
from repro.obs.spans import span
from repro.perf.cache import CompileCache, compile_cache_key, default_cache
from repro.regalloc.allocator import allocate_module
from repro.regalloc.strategy import default_strategy_id, strategy_ids


@dataclass(frozen=True)
class CompileOptions:
    """Knobs of one compilation.

    Every field is part of the compile-cache key (the frozen repr is
    the fingerprint); worker count deliberately is not, so it lives in
    the ``jobs`` argument of :func:`compile_binary` instead.

    ``strategy`` names an allocation strategy (where spilled registers
    live — see :mod:`repro.regalloc.strategy`) or ``"mixed"`` to
    enumerate candidates under every non-experimental strategy.  The
    default resolves ``$ORION_STRATEGY`` at construction time, so the
    resolved id (never the indirection) lands in the cache fingerprint.
    """

    arch: GpuArchitecture
    block_size: int = 256
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE
    can_tune: bool = True
    max_versions: int = 5
    strategy: str = field(default_factory=default_strategy_id)

    def __post_init__(self) -> None:
        strategy_ids(self.strategy)  # validate (raises on unknown ids)


def front_end(data: bytes | Module) -> Module:
    """Decode a binary (or accept an in-memory module) into IR."""
    if isinstance(data, Module):
        return data
    return decode_module(data)


def compile_binary(
    data: bytes | Module,
    kernel_name: str,
    options: CompileOptions,
    jobs: int | None = None,
    use_cache: bool = True,
    cache: CompileCache | None = None,
    verify: bool = False,
) -> MultiVersionBinary:
    """Full Orion compilation: candidate generation + fat binary.

    ``use_cache=False`` always runs the middle end (the pre-cache
    behaviour); otherwise ``cache`` (default: the process-wide
    :func:`repro.perf.default_cache`) is consulted first.  ``jobs``
    parallelises candidate realisation — see
    :func:`repro.compiler.tuning.compile_time_tuning`; it never changes
    the output bytes, which is why it is not part of the cache key.
    ``verify`` gates the result (cache hits included) through
    :func:`verify_binary` — the allocation-soundness checks on every
    realized version, at every target occupancy.  Like ``jobs`` it never
    changes the output bytes, so it is not part of the cache key either.
    """
    if cache is None and use_cache:
        cache = default_cache()
    key: str | None = None
    if cache is not None:
        module_bytes = data if isinstance(data, bytes) else encode_module(data)
        key = compile_cache_key(module_bytes, kernel_name, options)
        with span("cache_lookup", kernel=kernel_name):
            payload = cache.lookup(key)
        if payload is not None:
            with span("cache_decode", kernel=kernel_name):
                try:
                    binary = MultiVersionBinary.from_bytes(payload)
                except Exception:
                    # A truncated/corrupted entry (torn disk write, manual
                    # edit) is a miss, not an error; recompiling below
                    # overwrites it with a good payload.
                    pass
                else:
                    if verify:
                        verify_binary(binary)
                    return binary
    with span("front_end", kernel=kernel_name):
        module = front_end(data)
    with span("tuning", kernel=kernel_name):
        plan = compile_time_tuning(
            module,
            kernel_name,
            options.arch,
            options.block_size,
            can_tune=options.can_tune,
            cache_config=options.cache_config,
            max_versions=options.max_versions,
            jobs=jobs,
            strategies=strategy_ids(options.strategy),
        )
    with span("pack", kernel=kernel_name):
        binary = MultiVersionBinary.from_plan(
            plan, options.arch.name, options.block_size
        )
        if cache is not None and key is not None:
            cache.store(key, binary.to_bytes())
    if verify:
        verify_binary(binary)
    return binary


def verify_binary(binary: MultiVersionBinary) -> None:
    """The pipeline's allocation-soundness gate.

    Re-verifies every realized :class:`KernelVersion` — candidates and
    fail-safe versions alike — at its own register budget, so a clobber
    introduced at any target occupancy is caught before the binary is
    handed to the runtime.  Versions arriving from the compile cache
    carry no :class:`InterprocResult`; the verifier then falls back to
    deriving frame bases from the code, which keeps the gate equally
    applicable to freshly-compiled and deserialized binaries.

    Raises :class:`repro.ir.verify.VerificationError` (a ``ValueError``)
    naming the offending version on the first unsound one.
    """
    from repro.ir.verify import VerificationError, VerifyIssue, verify_module

    with span("verify", kernel=binary.kernel_name):
        checked: set[int] = set()
        for version in (*binary.versions, *binary.failsafe):
            # Padded (downward-tuned) versions share the original's
            # module; one pass per distinct allocation is enough.
            if id(version.outcome.module) in checked:
                continue
            checked.add(id(version.outcome.module))
            issues = verify_module(
                version.outcome.module,
                physical=True,
                reg_budget=version.regs_per_thread,
                interproc=version.outcome.interproc,
            )
            _count_verify("fail" if issues else "pass")
            if issues:
                raise VerificationError([
                    VerifyIssue(
                        f"{version.label}/{issue.function}",
                        issue.block,
                        issue.index,
                        issue.message,
                    )
                    for issue in issues
                ])


def _count_verify(result: str) -> None:
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "orion_verifier_checks_total",
        "Allocation-soundness verifier passes over distinct allocations.",
    ).inc(result=result)


def nvcc_baseline(
    data: bytes | Module,
    kernel_name: str,
    arch: GpuArchitecture,
    block_size: int = 256,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
) -> KernelVersion:
    """The occupancy-oblivious baseline the paper compares against."""
    module = front_end(data)
    # The hardware cap is only a ceiling: colouring takes the lowest
    # slots, so the reported register usage is nvcc's natural demand.
    outcome = allocate_module(
        module,
        kernel_name,
        arch.max_registers_per_thread,
        block_size=block_size,
        space_minimization=False,
        movement_minimization=False,
    )
    occ = calculate_occupancy(
        arch,
        block_size,
        outcome.registers_per_thread,
        outcome.shared_bytes_per_block,
        cache_config,
    )
    return KernelVersion(
        label="nvcc",
        target_warps=occ.active_warps,
        achieved_warps=occ.active_warps,
        occupancy=occ.occupancy,
        regs_per_thread=outcome.registers_per_thread,
        smem_per_block=outcome.shared_bytes_per_block,
        smem_padding=0,
        outcome=outcome,
        binary=encode_module(outcome.module),
    )
