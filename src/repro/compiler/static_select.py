"""Static occupancy selection for kernels the runtime cannot tune.

Paper Section 3.3: "In cases where the kernel function cannot be tuned
(for example, if it only has a single iteration), the selection process
will use the static selection algorithm described in [11]" (Hayes &
Zhang, ICS'14).  Fig. 8's fallback walks occupancies downward and keeps
the lowest one whose warp count still covers the kernel's
latency-hiding need.

The need estimate is Little's-law shaped: a warp stalls for the memory
latency every *D* issued instructions (D = loop-weighted distance
between memory operations), so roughly ``L / (D · c)`` warps keep the
issue port busy, with *c* the per-instruction issue/latency cost.
Memory-dense kernels therefore demand high occupancy; compute-dense
kernels are satisfied by much less, and lower occupancy frees on-chip
resources.
"""

from __future__ import annotations

import math

from repro.arch.specs import GpuArchitecture
from repro.ir.cfg import CFG
from repro.ir.function import Module
from repro.isa.instructions import MemSpace


def memory_instruction_distance(module: Module, kernel_name: str) -> float:
    """Loop-weighted instructions issued per off-chip memory operation."""
    total = 0.0
    memory = 0.0
    for fn in module.functions.values():
        cfg = CFG(fn)
        for label in cfg.rpo:
            weight = 10.0 ** cfg.loop_depth[label]
            for inst in fn.blocks[label].instructions:
                total += weight
                if inst.is_memory and inst.space in (
                    MemSpace.GLOBAL,
                    MemSpace.LOCAL,
                    MemSpace.PARAM,
                ):
                    memory += weight
    if memory == 0:
        return math.inf
    return total / memory


def warps_needed(
    module: Module, kernel_name: str, arch: GpuArchitecture
) -> int:
    """Resident warps required to hide memory latency (Fig. 8's bound)."""
    distance = memory_instruction_distance(module, kernel_name)
    if math.isinf(distance):
        return 1
    per_inst_cycles = max(1.0, arch.alu_latency / 3)
    need = arch.dram_latency / (distance * per_inst_cycles)
    # Wider-issue SMs drain each warp's instructions faster, so more
    # warps are needed before the latency is covered.
    if arch.issue_width > 1:
        need *= 2
    return max(1, min(arch.max_warps_per_sm, math.ceil(need)))


def static_selection(
    module: Module,
    kernel_name: str,
    arch: GpuArchitecture,
    versions: list,
):
    """Pick the lowest-occupancy version meeting the latency-hiding need.

    ``versions`` are :class:`~repro.compiler.realize.KernelVersion`
    candidates; the lowest achieved-warp version with
    ``achieved_warps >= warps_needed`` wins, falling back to the
    highest-occupancy candidate when none suffices.
    """
    if not versions:
        raise ValueError("no candidate versions to select from")
    need = warps_needed(module, kernel_name, arch)
    eligible = [v for v in versions if v.achieved_warps >= need]
    if eligible:
        return min(eligible, key=lambda v: v.achieved_warps)
    return max(versions, key=lambda v: v.achieved_warps)
