"""Multi-version binary container (the compiler↔runtime hand-off).

Orion's compiler emits one *fat binary* holding every candidate kernel
version plus the tuning metadata (direction, candidate order, occupancy
of each version); the runtime loads it and performs the Fig. 9 dynamic
selection.  The serialised format is a JSON manifest followed by the
per-version ORAS binaries, so a multi-version binary written by one
process is fully usable by another.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field

from repro.compiler.realize import KernelVersion
from repro.compiler.tuning import TuningPlan
from repro.isa.encoding import decode_module, encode_module
from repro.regalloc.allocator import AllocationOutcome

_MAGIC = b"ORMV"

_VERSION_HASH_PREFIX = b"orion-version-v1\x00"


def version_content_hash(version: KernelVersion) -> str:
    """SHA-256 content address of one kernel version.

    Covers the encoded module bytes plus the register/shared-memory
    envelope (two versions of identical code differ in timing only
    through those, via occupancy).  The label is deliberately *not*
    hashed: a re-labelled identical version measures identically, and
    the measurement cache should treat it so.

    A non-default allocation strategy *is* hashed: a spill-free kernel
    compiles to identical bytes under every strategy, yet a soft-limit
    version simulates with swap costs the local-spill one never pays —
    strategies must never share measurements.  The reference
    ``local-spill`` contributes nothing, keeping its hashes (and warm
    measurement caches) identical to pre-strategy builds.
    """
    payload = version.binary or encode_module(version.module)
    digest = hashlib.sha256()
    digest.update(_VERSION_HASH_PREFIX)
    digest.update(payload)
    digest.update(
        f"\x00{version.regs_per_thread}\x00{version.smem_per_block}".encode()
    )
    if version.strategy != "local-spill":
        digest.update(f"\x00strategy={version.strategy}".encode())
    return digest.hexdigest()


@dataclass
class MultiVersionBinary:
    """Everything the runtime needs to tune one kernel."""

    kernel_name: str
    arch_name: str
    block_size: int
    direction: str
    can_tune: bool
    versions: list[KernelVersion] = field(default_factory=list)
    failsafe: list[KernelVersion] = field(default_factory=list)

    @classmethod
    def from_plan(
        cls,
        plan: TuningPlan,
        arch_name: str,
        block_size: int,
    ) -> "MultiVersionBinary":
        return cls(
            kernel_name=plan.kernel_name,
            arch_name=arch_name,
            block_size=block_size,
            direction=plan.direction,
            can_tune=plan.can_tune,
            versions=list(plan.versions),
            failsafe=list(plan.failsafe),
        )

    @property
    def original(self) -> KernelVersion:
        return self.versions[0]

    def version_count(self) -> int:
        return len(self.versions) + len(self.failsafe)

    def strategies(self) -> tuple[str, ...]:
        """Distinct allocation-strategy ids across all versions, sorted."""
        return tuple(
            sorted({v.strategy for v in (*self.versions, *self.failsafe)})
        )

    def content_hash(self) -> str:
        """SHA-256 of the serialised binary (manifest + all versions)."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        manifest = {
            "kernel_name": self.kernel_name,
            "arch_name": self.arch_name,
            "block_size": self.block_size,
            "direction": self.direction,
            "can_tune": self.can_tune,
            "versions": [_version_meta(v) for v in self.versions],
            "failsafe": [_version_meta(v) for v in self.failsafe],
        }
        blob = json.dumps(manifest).encode("utf-8")
        parts = [_MAGIC, struct.pack("<I", len(blob)), blob]
        for version in list(self.versions) + list(self.failsafe):
            parts.append(struct.pack("<I", len(version.binary)))
            parts.append(version.binary)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MultiVersionBinary":
        if data[:4] != _MAGIC:
            raise ValueError("not a multi-version binary")
        (manifest_len,) = struct.unpack_from("<I", data, 4)
        cursor = 8
        manifest = json.loads(data[cursor : cursor + manifest_len])
        cursor += manifest_len

        def read_versions(metas: list[dict]) -> list[KernelVersion]:
            nonlocal cursor
            out = []
            for meta in metas:
                (size,) = struct.unpack_from("<I", data, cursor)
                cursor += 4
                binary = data[cursor : cursor + size]
                cursor += size
                out.append(_version_from_meta(meta, binary, manifest["kernel_name"]))
            return out

        return cls(
            kernel_name=manifest["kernel_name"],
            arch_name=manifest["arch_name"],
            block_size=manifest["block_size"],
            direction=manifest["direction"],
            can_tune=manifest["can_tune"],
            versions=read_versions(manifest["versions"]),
            failsafe=read_versions(manifest["failsafe"]),
        )


def _version_meta(v: KernelVersion) -> dict:
    meta = {
        "label": v.label,
        "target_warps": v.target_warps,
        "achieved_warps": v.achieved_warps,
        "occupancy": v.occupancy,
        "regs_per_thread": v.regs_per_thread,
        "smem_per_block": v.smem_per_block,
        "smem_padding": v.smem_padding,
        "local_bytes_per_thread": v.outcome.local_bytes_per_thread,
        "spilled_variables": v.outcome.spilled_variables,
        "stack_moves": v.outcome.stack_moves,
    }
    # Only serialized when non-default: fat binaries produced under the
    # reference strategy stay byte-identical to pre-strategy builds.
    if v.strategy != "local-spill":
        meta["strategy"] = v.strategy
        meta["smem_spill_slots"] = v.outcome.smem_spill_slots
    return meta


def _version_from_meta(
    meta: dict, binary: bytes, kernel_name: str
) -> KernelVersion:
    module = decode_module(binary)
    strategy = meta.get("strategy", "local-spill")
    outcome = AllocationOutcome(
        module=module,
        kernel_name=kernel_name,
        registers_per_thread=meta["regs_per_thread"],
        shared_bytes_per_block=meta["smem_per_block"] - meta["smem_padding"],
        local_bytes_per_thread=meta["local_bytes_per_thread"],
        spilled_variables=meta["spilled_variables"],
        stack_moves=meta["stack_moves"],
        strategy=strategy,
        smem_spill_slots=meta.get("smem_spill_slots", 0),
    )
    return KernelVersion(
        label=meta["label"],
        target_warps=meta["target_warps"],
        achieved_warps=meta["achieved_warps"],
        occupancy=meta["occupancy"],
        regs_per_thread=meta["regs_per_thread"],
        smem_per_block=meta["smem_per_block"],
        smem_padding=meta["smem_padding"],
        outcome=outcome,
        binary=binary,
        strategy=strategy,
    )
