"""Realising a target occupancy (paper Section 3.2, driver side).

Equation 1 turns a target resident-warp count into per-thread register
and shared-memory budgets; :func:`realize_occupancy` then runs the
whole-module allocator under those budgets and verifies the resulting
binary actually achieves the target:

* tuning **up** shrinks the register budget (forcing spills, optionally
  promoted into spare shared memory — the *conservative* style);
* tuning **down** needs no recompilation at all: unused shared-memory
  *padding* per block caps how many blocks fit (Section 3.3: "we can
  tune occupancy down by dynamically increasing shared memory usage per
  thread").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.occupancy import min_smem_padding_to_cap_warps
from repro.arch.specs import CacheConfig, GpuArchitecture
from repro.ir.function import Module
from repro.isa.encoding import encode_module
from repro.regalloc.allocator import (
    AllocationOutcome,
    BudgetError,
    allocate_module,
)
from repro.regalloc.strategy import AllocationStrategy, get_strategy


class RealizeError(ValueError):
    """Raised when a target occupancy cannot be realised."""


@dataclass
class KernelVersion:
    """One occupancy-realised kernel binary (a tuner candidate)."""

    label: str
    target_warps: int
    achieved_warps: int
    occupancy: float
    regs_per_thread: int
    smem_per_block: int  # user + spill promotion + padding
    smem_padding: int  # downward-tuning padding included above
    outcome: AllocationOutcome
    binary: bytes = field(repr=False, default=b"")
    #: allocation-strategy id this candidate was realised under
    strategy: str = "local-spill"

    @property
    def module(self) -> Module:
        return self.outcome.module

    @property
    def kernel_name(self) -> str:
        return self.outcome.kernel_name


def realize_occupancy(
    module: Module,
    kernel_name: str,
    arch: GpuArchitecture,
    block_size: int,
    target_warps: int,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    conservative: bool = False,
    label: str | None = None,
    space_minimization: bool = True,
    movement_minimization: bool = True,
    strategy: str | AllocationStrategy | None = None,
) -> KernelVersion:
    """Produce a kernel binary resident at exactly ``target_warps``.

    ``conservative`` spends spare shared memory on spilled variables so
    that "all variables fit into on-chip memory".  ``strategy`` selects
    where squeezed-out registers go (``None`` = reference local-spill);
    under a shared-spill strategy the allocator promotes *every* spill
    slot, so an infeasible target (shared frame caps occupancy below
    it) surfaces as :class:`RealizeError` instead of silently shipping
    a lower-occupancy candidate.
    """
    strat = get_strategy(strategy)
    user_smem = module.functions[kernel_name].shared_bytes
    reg_budget = strat.max_regs_for_warps(
        arch, block_size, target_warps, user_smem, cache_config
    )
    if reg_budget is None:
        raise RealizeError(
            f"{target_warps} warps unreachable on {arch.name} "
            f"(block={block_size}, user smem={user_smem}B)"
        )

    smem_budget_per_thread = 0
    if conservative and not strat.spills_to_shared:
        warps_per_block = max(1, (block_size + arch.warp_size - 1) // arch.warp_size)
        blocks_at_target = max(1, target_warps // warps_per_block)
        per_block_allowance = (
            arch.shared_memory_bytes(cache_config) // blocks_at_target
        )
        spare = per_block_allowance - user_smem
        smem_budget_per_thread = max(0, spare // block_size)

    for _ in range(8):
        try:
            outcome = allocate_module(
                module,
                kernel_name,
                reg_budget,
                block_size=block_size,
                smem_spill_budget_per_thread=smem_budget_per_thread,
                space_minimization=space_minimization,
                movement_minimization=movement_minimization,
                strategy=strat,
            )
        except BudgetError as exc:
            raise RealizeError(str(exc)) from exc
        occ = strat.occupancy(
            arch,
            block_size,
            outcome.registers_per_thread,
            outcome.shared_bytes_per_block,
            cache_config,
        )
        if occ.active_warps >= target_warps or smem_budget_per_thread == 0:
            break
        # Shared-memory promotion overshot and dragged occupancy below
        # the target: halve the per-thread allowance and retry.
        smem_budget_per_thread //= 2
    else:  # pragma: no cover - loop always breaks within 8 halvings
        raise RealizeError("could not reconcile smem promotion with target")

    if strat.spills_to_shared and occ.active_warps < target_warps:
        # The mandatory shared spill frame itself limits the block
        # count: this target is infeasible under smem spilling (the
        # RegDem trade-off), and candidate generation should know.
        raise RealizeError(
            f"shared spill frame caps occupancy at {occ.active_warps} "
            f"warps, below the {target_warps}-warp target"
        )

    padding = 0
    smem_total = outcome.shared_bytes_per_block
    if occ.active_warps > target_warps:
        # Over-achieving: cap occupancy down to the target with padding.
        padding = min_smem_padding_to_cap_warps(
            arch,
            block_size,
            target_warps,
            outcome.registers_per_thread,
            smem_total,
            cache_config,
            reg_capacity_factor=strat.reg_oversubscription,
        )
        if padding is None:
            raise RealizeError(
                f"cannot pad occupancy down to {target_warps} warps"
            )
        smem_total += padding
        occ = strat.occupancy(
            arch,
            block_size,
            outcome.registers_per_thread,
            smem_total,
            cache_config,
        )

    return KernelVersion(
        label=label or f"warps={occ.active_warps}",
        target_warps=target_warps,
        achieved_warps=occ.active_warps,
        occupancy=occ.occupancy,
        regs_per_thread=outcome.registers_per_thread,
        smem_per_block=smem_total,
        smem_padding=padding,
        outcome=outcome,
        binary=encode_module(outcome.module),
        strategy=strat.id,
    )


def repad_version(
    version: KernelVersion,
    arch: GpuArchitecture,
    block_size: int,
    target_warps: int,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    label: str | None = None,
) -> KernelVersion:
    """A lower-occupancy variant of an existing binary via smem padding.

    No recompilation: only the launch-time shared-memory request grows.
    This is how the downward tuning direction explores occupancy levels.
    The repadded variant inherits the source version's strategy.
    """
    strat = get_strategy(version.strategy)
    base_smem = version.smem_per_block - version.smem_padding
    padding = min_smem_padding_to_cap_warps(
        arch,
        block_size,
        target_warps,
        version.regs_per_thread,
        base_smem,
        cache_config,
        reg_capacity_factor=strat.reg_oversubscription,
    )
    if padding is None:
        raise RealizeError(f"cannot pad down to {target_warps} warps")
    occ = strat.occupancy(
        arch,
        block_size,
        version.regs_per_thread,
        base_smem + padding,
        cache_config,
    )
    return KernelVersion(
        label=label or f"warps={occ.active_warps} (padded)",
        target_warps=target_warps,
        achieved_warps=occ.active_warps,
        occupancy=occ.occupancy,
        regs_per_thread=version.regs_per_thread,
        smem_per_block=base_smem + padding,
        smem_padding=padding,
        outcome=version.outcome,
        binary=version.binary,
        strategy=version.strategy,
    )
