"""The Orion compiler: occupancy realisation, Fig. 8 tuning, and the
multi-version binary (paper Sections 3.2–3.3 and 4)."""

from repro.compiler.maxlive import (
    function_max_live,
    kernel_max_live,
    tuning_direction,
)
from repro.compiler.multiversion import MultiVersionBinary
from repro.compiler.pipeline import (
    CompileOptions,
    compile_binary,
    front_end,
    nvcc_baseline,
)
from repro.compiler.realize import (
    KernelVersion,
    RealizeError,
    realize_occupancy,
    repad_version,
)
from repro.compiler.static_select import (
    memory_instruction_distance,
    static_selection,
    warps_needed,
)
from repro.compiler.tuning import (
    TuningPlan,
    compile_time_tuning,
    conservative_level,
    original_version,
)

__all__ = [
    "CompileOptions",
    "KernelVersion",
    "MultiVersionBinary",
    "RealizeError",
    "TuningPlan",
    "compile_binary",
    "compile_time_tuning",
    "conservative_level",
    "front_end",
    "function_max_live",
    "kernel_max_live",
    "memory_instruction_distance",
    "nvcc_baseline",
    "original_version",
    "realize_occupancy",
    "repad_version",
    "static_selection",
    "tuning_direction",
    "warps_needed",
]
