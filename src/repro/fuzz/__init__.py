"""Differential fuzzing of the Orion compilation pipeline.

Seeded random ORAS modules (:mod:`repro.fuzz.generator`) are pushed
through the full compiler and checked by a three-part oracle
(:mod:`repro.fuzz.oracle`):

1. every realized version — candidates and fail-safes, at every target
   occupancy — passes the allocation-soundness verifier;
2. the functional interpreter produces *identical* global memory for
   every version and for the original module (allocation only moves
   values between slots, it never reorders arithmetic, so equality is
   exact, not approximate);
3. compilation is deterministic: two cold runs through fresh compile
   caches produce byte-identical fat binaries, and a warm cache hit
   decodes back to the same bytes.

Every case is fully determined by its seed, so a failing case is
reproduced with ``repro fuzz --seed <case-seed> --cases 1``.
"""

from repro.fuzz.generator import SHAPES, generate_module
from repro.fuzz.oracle import FuzzFailure, FuzzReport, check_case, run_fuzz

__all__ = [
    "SHAPES",
    "generate_module",
    "FuzzFailure",
    "FuzzReport",
    "check_case",
    "run_fuzz",
]
