"""The differential-fuzzing oracle: verify, interpret, compare.

One *case* is one generated module pushed through the full pipeline:

* the original module is interpreted once to get the reference output;
* the module is compiled twice cold (two fresh
  :class:`~repro.perf.cache.CompileCache` instances) and once warm
  (a cache hit on the first cache); all three fat binaries must be
  byte-identical — the compile path and the serialization round-trip
  are deterministic;
* every realized version — candidates and fail-safes — must pass the
  allocation-soundness verifier at its own register budget and must
  produce exactly the reference global memory under the interpreter.

Exact equality (not approximate) is sound because allocation only moves
values between slots; it never reorders or rewrites arithmetic.

A non-default ``strategy`` adds the **strategy-differential** oracle:
the same module is compiled a second time under that allocation
strategy, every one of *its* versions must also verify and reproduce
the reference output exactly (where spilled values live must never
change what the kernel computes), and the two compiles must carry
distinct kernel fingerprints (a collision would let the tuning store
serve one strategy's winner to the other).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.arch.specs import GTX680, GpuArchitecture
from repro.compiler.pipeline import CompileOptions, compile_binary
from repro.fuzz.generator import (
    PARAM_BASE_OFFSET,
    PARAM_BASE_VALUE,
    generate_module,
)
from repro.ir.verify import verify_module
from repro.obs.spans import span, use_hub
from repro.perf.cache import CompileCache
from repro.sim.interp import LaunchConfig, run_kernel

#: Small fixed launch: the interpreter dominates case runtime.
_LAUNCH = LaunchConfig(
    grid_blocks=1,
    block_size=8,
    params={PARAM_BASE_OFFSET: PARAM_BASE_VALUE},
)


def _initial_memory() -> dict[int, float]:
    return {i * 4: float(i % 7 + 1) for i in range(192)}


@dataclass(frozen=True)
class FuzzFailure:
    """One oracle violation, reproducible from its seed alone."""

    seed: int
    shape: str
    #: "verifier" | "differential" | "determinism" | "store" |
    #: "strategy" | "crash"
    kind: str
    detail: str
    #: trace file of the failing run, when the run carried one — lets
    #: the reproduction line point at the span-level evidence
    trace: str | None = None
    #: non-default allocation strategy the failing run compiled under
    strategy: str = "local-spill"

    @property
    def repro(self) -> str:
        line = f"repro fuzz --seed {self.seed} --cases 1 --shape {self.shape}"
        if self.strategy != "local-spill":
            line += f" --strategy {self.strategy}"
        if self.trace:
            line += f"  # trace: {self.trace}"
        return line

    def __str__(self) -> str:
        return (
            f"[{self.kind}] seed={self.seed} shape={self.shape}: "
            f"{self.detail}\n    reproduce: {self.repro}"
        )


@dataclass
class FuzzReport:
    """Aggregate result of a fuzzing run."""

    cases: int
    shape: str
    failures: list[FuzzFailure] = field(default_factory=list)
    versions_checked: int = 0
    #: non-default strategy the run cross-checked against (oracle off
    #: when it is the reference ``local-spill``)
    strategy: str = "local-spill"

    @property
    def ok(self) -> bool:
        return not self.failures


def check_case(
    seed: int,
    shape: str = "mixed",
    arch: GpuArchitecture = GTX680,
    trace: str | None = None,
    store=None,
    strategy: str = "local-spill",
) -> tuple[list[FuzzFailure], int]:
    """Run the oracle on one generated case.

    Returns ``(failures, versions_checked)``.  A crash anywhere in the
    pipeline is itself a failure (kind ``"crash"``), never an exception
    out of the harness.  ``trace`` names the trace file the run writes
    to, so failures carry a pointer to their span-level evidence.

    ``store`` (a :class:`~repro.service.store.TuningStore`) adds the
    persistence oracle: the kernel fingerprint and tuning key must be
    identical across the case's two cold compiles (keys are the store's
    contract — an unstable key silently forfeits every warm start), and
    a record must round-trip through the real store file byte-exactly
    (kind ``"store"``).

    ``strategy`` (a non-default allocation-strategy id) adds the
    strategy-differential oracle: a second compile under that strategy
    whose every version must verify and match the reference output,
    and whose kernel fingerprint must differ from the base compile's
    (kind ``"strategy"`` on a collision).  The base compile is always
    pinned to ``local-spill`` so the reference half of the comparison
    is identical across CI shards regardless of ``ORION_STRATEGY``.
    """
    failures: list[FuzzFailure] = []

    def fail(kind: str, detail: str, *, failing: str = "local-spill") -> None:
        failures.append(
            FuzzFailure(seed, shape, kind, detail, trace=trace, strategy=failing)
        )

    with span("fuzz_case", seed=seed, shape=shape, strategy=strategy):
        return _check_case_body(
            seed, shape, arch, failures, fail, store, strategy
        )


def _check_versions(
    binary,
    expected,
    fail: Callable[..., None],
    failing: str,
) -> int:
    """Verifier + differential oracle over every version of one binary."""
    checked = 0
    for version in (*binary.versions, *binary.failsafe):
        checked += 1
        try:
            issues = verify_module(
                version.outcome.module,
                physical=True,
                reg_budget=version.regs_per_thread,
                interproc=version.outcome.interproc,
            )
            if issues:
                fail(
                    "verifier",
                    f"version {version.label}: " + "; ".join(map(str, issues)),
                    failing=failing,
                )
                continue
            actual = run_kernel(
                version.outcome.module, _LAUNCH, global_memory=_initial_memory()
            )
            if actual != expected:
                fail(
                    "differential",
                    _describe_divergence(version.label, expected, actual),
                    failing=failing,
                )
        except Exception as exc:  # noqa: BLE001
            fail(
                "crash",
                f"version {version.label}: {type(exc).__name__}: {exc}",
                failing=failing,
            )
    return checked


def _check_case_body(
    seed: int,
    shape: str,
    arch: GpuArchitecture,
    failures: list[FuzzFailure],
    fail: Callable[..., None],
    store=None,
    strategy: str = "local-spill",
) -> tuple[list[FuzzFailure], int]:
    try:
        module = generate_module(seed, shape)
        expected = run_kernel(module, _LAUNCH, global_memory=_initial_memory())
        options = CompileOptions(
            arch=arch, block_size=128, max_versions=4, strategy="local-spill"
        )

        cold = CompileCache()
        binary = compile_binary(
            module, "k", options, use_cache=True, cache=cold
        )
        payload = binary.to_bytes()
        again = compile_binary(
            module, "k", options, use_cache=True, cache=CompileCache()
        )
        if again.to_bytes() != payload:
            fail("determinism", "two cold compiles produced different bytes")
        warm = compile_binary(module, "k", options, use_cache=True, cache=cold)
        if warm.to_bytes() != payload:
            fail("determinism", "cache hit decoded to different bytes")
        if store is not None:
            _check_store_oracle(store, binary, again, arch, seed, fail)
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        fail("crash", f"{type(exc).__name__}: {exc}")
        return failures, 0

    checked = _check_versions(binary, expected, fail, "local-spill")
    if strategy != "local-spill":
        checked += _check_strategy_oracle(
            module, expected, arch, strategy, binary, fail
        )
    return failures, checked


def _check_strategy_oracle(
    module,
    expected,
    arch: GpuArchitecture,
    strategy: str,
    base_binary,
    fail: Callable[..., None],
) -> int:
    """The strategy-differential half: compile again under ``strategy``."""
    from repro.service.fingerprint import kernel_fingerprint

    try:
        alt = compile_binary(
            module,
            "k",
            CompileOptions(
                arch=arch, block_size=128, max_versions=4, strategy=strategy
            ),
            use_cache=True,
            cache=CompileCache(),
        )
    except Exception as exc:  # noqa: BLE001
        fail("crash", f"{type(exc).__name__}: {exc}", failing=strategy)
        return 0
    checked = _check_versions(alt, expected, fail, strategy)
    # Spill-free kernels compile to the same module bytes under every
    # strategy; only the strategy tag keeps their fingerprints (and so
    # their tuning-store records) apart.  A collision here means the
    # store would hand one strategy's winner to the other.
    if alt.strategies() != base_binary.strategies() and kernel_fingerprint(
        alt
    ) == kernel_fingerprint(base_binary):
        fail(
            "strategy",
            f"kernel fingerprint collides between local-spill and "
            f"{strategy} compiles",
            failing=strategy,
        )
    return checked


def _check_store_oracle(
    store, binary, again, arch: GpuArchitecture, seed: int, fail
) -> None:
    """Fingerprint stability + store round-trip for one case."""
    from repro.runtime.session import Workload
    from repro.service.fingerprint import kernel_fingerprint, tuning_key
    from repro.service.store import TuningRecord

    fingerprint = kernel_fingerprint(binary)
    if kernel_fingerprint(again) != fingerprint:
        fail("store", "kernel fingerprint differs between two cold compiles")
        return
    workload = Workload(launch=_LAUNCH, iterations=4)
    key = tuning_key(binary, workload, arch.name, "timing")
    if tuning_key(again, workload, arch.name, "timing") != key:
        fail("store", "tuning key differs between two cold compiles")
        return
    winner = binary.versions[0]
    record = TuningRecord(
        key=key,
        kernel=fingerprint,
        kernel_name=binary.kernel_name,
        arch=arch.name,
        backend="timing",
        winner_label=winner.label,
        winner_warps=winner.achieved_warps,
        occupancy=winner.occupancy,
        total_cycles=seed + 1,
        iterations_to_converge=0,
    )
    store.put(record)
    loaded = store.get(key)
    if loaded is None:
        fail("store", "record vanished on immediate lookup after put")
    elif loaded.to_payload() != record.to_payload():
        fail("store", "record did not round-trip through the store file")


def _describe_divergence(
    label: str, expected: dict[int, float], actual: dict[int, float]
) -> str:
    for address in sorted(expected.keys() | actual.keys()):
        want = expected.get(address)
        got = actual.get(address)
        if want != got:
            return (
                f"version {label} diverges from the original at global "
                f"address {address:#x}: expected {want!r}, got {got!r}"
            )
    return f"version {label} diverges from the original"


def run_fuzz(
    seed: int = 0,
    cases: int = 100,
    shape: str = "mixed",
    arch: GpuArchitecture = GTX680,
    progress: Callable[[str], None] | None = None,
    hub=None,
    trace: str | None = None,
    store=None,
    strategy: str = "local-spill",
) -> FuzzReport:
    """Run ``cases`` consecutive seeds starting at ``seed``.

    Case ``i`` uses seed ``seed + i``, so any failure reproduces in
    isolation with ``--seed <case-seed> --cases 1``.  ``hub`` (a
    :class:`~repro.runtime.telemetry.TelemetryHub`) makes the run emit
    per-case spans; ``trace`` is the file that hub writes, threaded
    onto every failure's reproduction line.  ``store`` adds the
    persistence oracle (see :func:`check_case`), sharing one store
    file across every case of the run.  ``strategy`` (non-default) adds
    the strategy-differential oracle to every case.
    """
    from contextlib import nullcontext

    report = FuzzReport(cases=cases, shape=shape, strategy=strategy)
    ambient = use_hub(hub) if hub is not None else nullcontext()
    with ambient:
        for i in range(cases):
            failures, checked = check_case(
                seed + i, shape, arch, trace=trace, store=store,
                strategy=strategy,
            )
            report.failures.extend(failures)
            report.versions_checked += checked
            _count_fuzz_case(bool(failures))
            if hub is not None:
                from repro.runtime.telemetry import EventKind

                hub.emit(
                    EventKind.FUZZ_CASE,
                    seed=seed + i,
                    shape=shape,
                    versions_checked=checked,
                    failures=len(failures),
                )
            if progress is not None and (i + 1) % 25 == 0:
                progress(
                    f"  {i + 1}/{cases} cases, {report.versions_checked} "
                    f"versions checked, {len(report.failures)} failure(s)"
                )
    if hub is not None:
        hub.flush()
    return report


def _count_fuzz_case(failed: bool) -> None:
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "orion_fuzz_cases_total", "Differential-fuzzing cases by outcome."
    ).inc(result="fail" if failed else "ok")
