"""Seeded random ORAS kernel generator for differential fuzzing.

Programs are built as assembly text (the same idiom the allocation
property tests use) and parsed into validated modules.  Each *shape*
stresses a different compiler subsystem:

* ``straight`` — long straight-line ALU chains (pure colouring);
* ``branchy``  — if/else diamonds with values merged at joins
  (SSA φ placement, critical-edge handling);
* ``loopy``    — counted loops with loop-carried accumulators
  (back edges, live ranges spanning the loop body);
* ``wide``     — 64/96/128-bit values (aligned slot allocation, wide
  spill slots);
* ``calls``    — device functions, including nested calls and values
  live across call sites (compressible stack, save/restore protocol);
* ``mixed``    — one random primary shape plus a random subset of the
  other features.

Generated programs are race-free by construction: every thread reads
the low, never-written region of global memory and writes only its own
word at ``WRITE_OFFSET + 4*tid`` (and one more a page later), so the
interpreter's thread interleaving cannot affect the output and any
divergence between versions is a real compiler bug.

All randomness flows from one ``random.Random(seed)``; the same seed
always yields the same module.
"""

from __future__ import annotations

import random

from repro.ir.function import Module
from repro.isa.assembly import parse_module

SHAPES = ("straight", "branchy", "loopy", "wide", "calls", "mixed")

#: Kernel parameter (byte offset into the param space) the oracle must
#: provide: an extra byte offset added to each thread's base address.
PARAM_BASE_OFFSET = 0
#: The value the oracle passes for it.
PARAM_BASE_VALUE = 32

#: Generated kernels store results at ``WRITE_OFFSET + 4*tid`` upward —
#: far above every address they read (reads stay below ~512).
WRITE_OFFSET = 4096

_FLOAT_CONSTS = ("0.25", "0.5", "0.75", "1.25", "1.5", "2.0", "3.5")
_INT_OPS = ("IADD", "ISUB", "IMUL", "IMIN", "IMAX", "AND", "OR", "XOR")
_FLOAT_OPS = ("FADD", "FSUB", "FMUL", "FMIN", "FMAX")
_POOL_CAP = 6


class _Builder:
    """Accumulates one function's blocks of assembly text."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.entry: list[str] = []
        self.tail = self.entry  # current emission target
        self.blocks: list[tuple[str, list[str]]] = []
        self._reg = 0
        self._label = 0
        self.floats: list[str] = []  # live narrow float registers
        self.ints: list[str] = []  # live int registers
        self.wides: list[str] = []  # live wide registers ("%vN.wK")

    def fresh(self) -> str:
        name = f"%v{self._reg}"
        self._reg += 1
        return name

    def label(self, prefix: str) -> str:
        name = f"{prefix}{self._label}"
        self._label += 1
        return name

    def emit(self, line: str) -> None:
        self.tail.append(line)

    def open(self, label: str) -> None:
        lines: list[str] = []
        self.blocks.append((label, lines))
        self.tail = lines

    # -- value pools ---------------------------------------------------
    def push_float(self, reg: str) -> None:
        self._push(self.floats, reg)

    def push_int(self, reg: str) -> None:
        self._push(self.ints, reg)

    def _push(self, pool: list[str], reg: str) -> None:
        # Past the cap, replace a random element: the pool stays a live
        # set of bounded size while old values go dead.
        if len(pool) >= _POOL_CAP:
            pool[self.rng.randrange(len(pool))] = reg
        else:
            pool.append(reg)

    def any_float(self) -> str:
        return self.rng.choice(self.floats)

    def any_int(self) -> str:
        return self.rng.choice(self.ints)

    def render(self, header: str) -> list[str]:
        lines = [header, "BB0:"]
        lines.extend(f"    {line}" for line in self.entry)
        for label, body in self.blocks:
            lines.append(f"{label}:")
            lines.extend(f"    {line}" for line in body)
        lines.append(".end")
        return lines


def generate_module(seed: int, shape: str = "mixed") -> Module:
    """Deterministically generate one validated ORAS module."""
    if shape not in SHAPES:
        raise ValueError(f"unknown shape {shape!r}; choose from {SHAPES}")
    rng = random.Random(seed)
    concrete = ("straight", "branchy", "loopy", "wide", "calls")
    if shape == "mixed":
        features = {rng.choice(concrete)}
        for extra in concrete:
            if extra not in features and rng.random() < 0.35:
                features.add(extra)
    else:
        features = {shape}

    g = _Builder(rng)
    helpers: list[str] = []

    # -- prologue: thread base address and initial values --------------
    tid = g.fresh()
    g.emit(f"S2R {tid}, %tid")
    g.push_int(tid)
    base = g.fresh()
    g.emit(f"SHL {base}, {tid}, 2")
    if rng.random() < 0.5:
        p = g.fresh()
        g.emit(f"LD.param {p}, [{PARAM_BASE_OFFSET}]")
        shifted = g.fresh()
        g.emit(f"IADD {shifted}, {base}, {p}")
        base = shifted
    for i in range(rng.randint(2, 5)):
        r = g.fresh()
        g.emit(f"LD.global {r}, [{base}+{4 * i}]")
        g.push_float(r)
    for _ in range(rng.randint(0, 2)):
        r = g.fresh()
        g.emit(f"MOV {r}, {rng.randint(0, 7)}")
        g.push_int(r)
    if "wide" in features:
        widths = [2, 4] if rng.random() < 0.4 else [rng.choice((2, 4))]
        for width in widths:
            w = g.fresh()
            off = rng.choice((64, 80, 96))
            g.emit(f"LD.global {w}.w{width}, [{base}+{off}]")
            g.wides.append(f"{w}.w{width}")
    if "straight" in features and rng.random() < 0.3:
        g.emit("BAR")  # entry block: every thread reaches it uniformly

    # -- body structures ----------------------------------------------
    _alu_burst(g, rng.randint(2, 6))
    structures: list[str] = []
    if "branchy" in features:
        structures += ["diamond"] * rng.randint(1, 2)
    if "loopy" in features:
        structures += ["loop"] * rng.randint(1, 2)
    if "straight" in features:
        structures += ["burst"]
    rng.shuffle(structures)
    callees: list[tuple[str, int]] = []
    if "calls" in features:
        callees = _make_helpers(rng, helpers)
    for kind in structures:
        if kind == "diamond":
            _diamond(g)
        elif kind == "loop":
            _loop(g)
        else:
            _alu_burst(g, rng.randint(3, 8))
        if callees and rng.random() < 0.6:
            _call(g, rng.choice(callees))
    if callees:
        # At least one call site, whatever the structure dice said.
        _call(g, rng.choice(callees))
        if rng.random() < 0.5:
            _call(g, rng.choice(callees))
    _alu_burst(g, rng.randint(1, 4))

    # -- epilogue: fold every live value into the output ---------------
    for wide in g.wides:
        narrow = g.fresh()
        g.emit(f"FADD {narrow}, {wide}, 0.0")
        g.push_float(narrow)
    if g.ints and rng.random() < 0.6:
        as_float = g.fresh()
        g.emit(f"I2F {as_float}, {g.any_int()}")
        g.push_float(as_float)
    acc = g.floats[0]
    for value in g.floats[1:]:
        nxt = g.fresh()
        g.emit(f"FADD {nxt}, {acc}, {value}")
        acc = nxt
    out_base = g.fresh()
    g.emit(f"IADD {out_base}, {base}, {WRITE_OFFSET}")
    g.emit(f"ST.global [{out_base}], {acc}")
    if len(g.floats) > 1 and rng.random() < 0.5:
        g.emit(f"ST.global [{out_base}+{WRITE_OFFSET}], {g.any_float()}")
    g.emit("EXIT")

    text = [f".module fuzz_{seed}"]
    text.extend(g.render(".kernel k shared=0"))
    text.extend(helpers)
    module = parse_module("\n".join(text))
    module.validate()
    return module


# ----------------------------------------------------------------------
def _alu_burst(g: _Builder, count: int) -> None:
    rng = g.rng
    for _ in range(count):
        if g.ints and rng.random() < 0.3:
            roll = rng.random()
            if roll < 0.2:
                r = g.fresh()
                g.emit(f"SHL {r}, {g.any_int()}, {rng.randint(0, 4)}")
            elif roll < 0.4:
                r = g.fresh()
                g.emit(f"SHR {r}, {g.any_int()}, {rng.randint(0, 4)}")
            elif roll < 0.55:
                r = g.fresh()
                g.emit(f"F2I {r}, {g.any_float()}")
            else:
                op = rng.choice(_INT_OPS)
                b = g.any_int() if rng.random() < 0.7 else str(rng.randint(0, 7))
                r = g.fresh()
                g.emit(f"{op} {r}, {g.any_int()}, {b}")
            g.push_int(r)
        else:
            r = g.fresh()
            if rng.random() < 0.3:
                c = g.any_float() if rng.random() < 0.5 else rng.choice(_FLOAT_CONSTS)
                g.emit(f"FFMA {r}, {g.any_float()}, {rng.choice(_FLOAT_CONSTS)}, {c}")
            else:
                op = rng.choice(_FLOAT_OPS)
                b = g.any_float() if rng.random() < 0.7 else rng.choice(_FLOAT_CONSTS)
                g.emit(f"{op} {r}, {g.any_float()}, {b}")
            g.push_float(r)


def _diamond(g: _Builder) -> None:
    rng = g.rng
    cond = g.fresh()
    g.emit(f"ISET.lt {cond}, {g.any_int()}, {rng.randint(1, 6)}")
    then_l, else_l, join_l = g.label("T"), g.label("F"), g.label("J")
    g.emit(f"CBR {cond}, {then_l}, {else_l}")
    out = g.fresh()
    for label in (then_l, else_l):
        g.open(label)
        if rng.random() < 0.5:
            g.emit(f"MOV {out}, {rng.choice(_FLOAT_CONSTS)}")
        else:
            g.emit(
                f"{rng.choice(_FLOAT_OPS)} {out}, {g.any_float()}, "
                f"{rng.choice(_FLOAT_CONSTS)}"
            )
        g.emit(f"BRA {join_l}")
    g.open(join_l)
    g.push_float(out)


def _loop(g: _Builder) -> None:
    rng = g.rng
    counter, acc = g.fresh(), g.fresh()
    trips = rng.randint(1, 4)
    g.emit(f"MOV {counter}, 0")
    g.emit(f"MOV {acc}, 0.0")
    head, body, done = g.label("HEAD"), g.label("BODY"), g.label("DONE")
    g.emit(f"BRA {head}")
    g.open(head)
    cond = g.fresh()
    g.emit(f"ISET.lt {cond}, {counter}, {trips}")
    g.emit(f"CBR {cond}, {body}, {done}")
    g.open(body)
    current = acc
    for _ in range(rng.randint(1, 3)):
        nxt = g.fresh()
        g.emit(
            f"FFMA {nxt}, {g.any_float()}, {rng.choice(_FLOAT_CONSTS)}, {current}"
        )
        current = nxt
    if current != acc:
        g.emit(f"MOV {acc}, {current}")
    g.emit(f"IADD {counter}, {counter}, 1")
    g.emit(f"BRA {head}")
    g.open(done)
    g.push_float(acc)


def _call(g: _Builder, callee: tuple[str, int]) -> None:
    name, n_args = callee
    args = ", ".join(g.any_float() for _ in range(n_args))
    out = g.fresh()
    g.emit(f"CALL {out}, {name}({args})")
    g.push_float(out)


def _make_helpers(
    rng: random.Random, helpers: list[str]
) -> list[tuple[str, int]]:
    """Emit 1–2 device functions; the second may call the first.

    Bodies keep a derived value live across the nested call so the
    compressible-stack save/restore protocol is exercised inside device
    functions, not just at kernel call sites.
    """
    callees: list[tuple[str, int]] = []
    n_args = rng.randint(1, 3)
    leaf = f"h{rng.randint(0, 9)}"
    lines = [f".func {leaf} args={n_args} returns=1", "BB0:"]
    reg = n_args
    acc = "%v0"
    for i in range(1, n_args):
        lines.append(f"    FADD %v{reg}, {acc}, %v{i}")
        acc = f"%v{reg}"
        reg += 1
    lines.append(
        f"    {rng.choice(_FLOAT_OPS)} %v{reg}, {acc}, "
        f"{rng.choice(_FLOAT_CONSTS)}"
    )
    lines.append(f"    RET %v{reg}")
    lines.append(".end")
    helpers.extend(lines)
    callees.append((leaf, n_args))

    if rng.random() < 0.6:
        wrapper = f"w{rng.randint(0, 9)}"
        inner_args = ", ".join("%v0" for _ in range(n_args))
        lines = [
            f".func {wrapper} args=1 returns=1",
            "BB0:",
            # %v1 is live across the nested call: forces a stack save.
            f"    FADD %v1, %v0, {rng.choice(_FLOAT_CONSTS)}",
            f"    CALL %v2, {leaf}({inner_args})",
            "    FMUL %v3, %v2, 0.5",
            "    FADD %v4, %v3, %v1",
            "    RET %v4",
            ".end",
        ]
        helpers.extend(lines)
        callees.append((wrapper, 1))
    return callees
