"""A small builder for generating benchmark kernels in ORAS assembly.

The paper's benchmarks are CUDA programs; Orion consumes their compiled
binaries.  Our stand-ins are generated ORAS programs engineered to match
each benchmark's *measurable* properties — the Table 2 register
pressure, static call counts, and shared-memory usage, plus the memory
behaviour that shapes its occupancy curve.  The builder keeps those
generators declarative and compact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.function import Module
from repro.isa.assembly import parse_module


@dataclass
class KernelBuilder:
    """Accumulates assembly lines; tracks virtual register numbering."""

    module_name: str
    kernel_name: str = "kernel"
    shared_bytes: int = 0
    _lines: list[str] = field(default_factory=list)
    _functions: list[str] = field(default_factory=list)
    _next: int = 0
    _label: int = 0

    # ------------------------------------------------------------------
    def reg(self) -> str:
        """A fresh virtual register name."""
        name = f"%v{self._next}"
        self._next += 1
        return name

    def regs(self, count: int) -> list[str]:
        return [self.reg() for _ in range(count)]

    def label(self, hint: str = "L") -> str:
        self._label += 1
        return f"{hint}{self._label}"

    def emit(self, line: str) -> None:
        self._lines.append(f"    {line}")

    def mark(self, label: str) -> None:
        self._lines.append(f"{label}:")

    # ------------------------------------------------------------------
    # Common fragments
    # ------------------------------------------------------------------
    def global_thread_id(self) -> str:
        """gid = ctaid * ntid + tid."""
        tid, ctaid, ntid, gid = self.regs(4)
        self.emit(f"S2R {tid}, %tid")
        self.emit(f"S2R {ctaid}, %ctaid")
        self.emit(f"S2R {ntid}, %ntid")
        self.emit(f"IMAD {gid}, {ctaid}, {ntid}, {tid}")
        return gid

    def scaled(self, src: str, shift: int) -> str:
        out = self.reg()
        self.emit(f"SHL {out}, {src}, {shift}")
        return out

    def load_global(self, base: str, offset: int = 0) -> str:
        out = self.reg()
        self.emit(f"LD.global {out}, [{base}+{offset}]")
        return out

    def counted_loop(self, trip_count: int | str) -> tuple[str, str, str]:
        """Open a loop; returns (head, body, done) labels.

        Call :meth:`close_loop` at the end of the body.  The induction
        variable is internal; ``trip_count`` may be an immediate or a
        register holding the bound.
        """
        counter = self.reg()
        head, body, done = (
            self.label("HEAD"),
            self.label("BODY"),
            self.label("DONE"),
        )
        self.emit(f"MOV {counter}, 0")
        self.emit(f"BRA {head}")
        self.mark(head)
        cond = self.reg()
        self.emit(f"ISET.lt {cond}, {counter}, {trip_count}")
        self.emit(f"CBR {cond}, {body}, {done}")
        self.mark(body)
        self._loop_stack.append((counter, head, done))
        return head, body, done

    _loop_stack: list[tuple[str, str, str]] = field(default_factory=list)

    def close_loop(self) -> None:
        counter, head, done = self._loop_stack.pop()
        self.emit(f"IADD {counter}, {counter}, 1")
        self.emit(f"BRA {head}")
        self.mark(done)

    def live_chain(self, values: list[str], coeff: float = 1.01) -> str:
        """Fold ``values`` with FFMA, keeping all of them live.

        Each value feeds the accumulator once per call, so every value
        in the list stays live through the fold — the register-pressure
        backbone of the high-pressure benchmarks.
        """
        accum = values[0]
        for value in values[1:]:
            out = self.reg()
            self.emit(f"FFMA {out}, {value}, {coeff}, {accum}")
            accum = out
        return accum

    # ------------------------------------------------------------------
    def device_function(
        self, name: str, num_args: int, body_lines: list[str]
    ) -> None:
        """Register a device function given its raw body lines.

        Bodies use ``%v0..%v(n-1)`` for arguments and must end in RET.
        """
        text = [f".func {name} args={num_args} returns=1"]
        text.append("BB0:")
        text.extend(f"    {line}" for line in body_lines)
        text.append(".end")
        self._functions.append("\n".join(text))

    # ------------------------------------------------------------------
    def build(self) -> Module:
        header = f".module {self.module_name}"
        kernel = [
            f".kernel {self.kernel_name} shared={self.shared_bytes}",
            "BB0:",
            *self._lines,
            ".end",
        ]
        text = "\n".join([header, "\n".join(kernel), *self._functions])
        module = parse_module(text)
        module.validate()
        return module
