"""The benchmark suite: Table 2's twelve programs plus matrixMul,
imageDenoising, and heartwall, as generated ORAS modules."""

from repro.bench.builder import KernelBuilder
from repro.bench.kernels import (
    BENCHMARKS,
    BenchmarkSpec,
    downward_benchmarks,
    figure5_benchmarks,
    table2_benchmarks,
    upward_benchmarks,
)
from repro.bench.workloads import WorkloadSpec

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "KernelBuilder",
    "WorkloadSpec",
    "downward_benchmarks",
    "figure5_benchmarks",
    "table2_benchmarks",
    "upward_benchmarks",
]
