"""The benchmark suite: Table 2's twelve programs plus matrixMul,
imageDenoising's companion figure, and heartwall (used by Fig. 5).

Each generator produces an ORAS module engineered to match the paper's
measurable per-benchmark properties:

* **Reg** — registers needed to avoid spilling (Table 2): a pool of
  *persistent* values loaded before the main loop and folded into the
  accumulator every iteration keeps exactly that many values live;
* **Func** — static call sites after inlining (Table 2): a few *hot*
  call sites run every iteration (exercising the compressible stack),
  and the remainder sit in a cold branch — statically present,
  dynamically idle, just like the inlined-but-rarely-taken paths the
  paper counts;
* **Smem** — user-allocated shared memory (Table 2): tile exchange
  through shared memory with a barrier;
* memory behaviour — streaming loads (cold), per-warp table reads
  (cache-sensitive working sets), coalescing/irregularity via
  :class:`~repro.sim.trace.MemoryTraits`.

The exact register counts depend on our allocator rather than nvcc's,
so they approximate the paper's numbers; the Table 2 harness prints
both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench.builder import KernelBuilder
from repro.bench.workloads import WorkloadSpec
from repro.ir.function import Module
from repro.sim.trace import MemoryTraits


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark: its paper-reported facts plus our generator."""

    name: str
    domain: str
    suite: str  # "rodinia" | "cuda-sdk"
    paper_regs: int | None
    paper_calls: int | None
    paper_smem: bool
    #: paper Fig. 11 group ("up") vs Fig. 12 group ("down"); extras = ""
    tuning_group: str
    build: Callable[[], Module] = field(compare=False)
    workload: WorkloadSpec = field(compare=False, default_factory=WorkloadSpec)
    #: backprop: too small to tune — always run the original version
    force_original: bool = False


# ----------------------------------------------------------------------
# Generic generator
# ----------------------------------------------------------------------
def _make_kernel(
    name: str,
    persistent: int,
    trips: int,
    stream_loads: int,
    table_reads: int = 0,
    table_lines: int = 4,
    compute: int = 2,
    smem_bytes: int = 0,
    hot_call: str | None = None,
    cold_calls: int = 0,
    call_tree: dict[str, list[str]] | None = None,
    wide_values: int = 0,
    stream_spread: int = 128,
    iter_stride: int = 16384,
) -> Module:
    """Build one benchmark kernel.

    ``call_tree`` maps a device function name to the functions its body
    calls once each (hot); ``hot_call`` names the function invoked once
    per loop iteration; ``cold_calls`` extra statically-present call
    sites to ``hot_call`` (or a default helper) in a never-taken branch.
    """
    b = KernelBuilder(module_name=name, shared_bytes=smem_bytes)
    gid = b.global_thread_id()
    base = b.scaled(gid, 7)  # 128B-spaced per-thread base: distinct lines
    warp = b.reg()
    b.emit(f"SHR {warp}, {gid}, 5")
    table_base = b.scaled(warp, 10)  # per-warp 1KB table region

    # Persistent pool: live across the whole loop (register pressure).
    pool = []
    for i in range(persistent):
        pool.append(b.load_global(base, offset=4 * i))
    wides = []
    for i in range(wide_values):
        w = b.reg() + ".w2"
        b.emit(f"LD.global {w}, [{base}+{4 * (persistent + 2 * i)}]")
        wides.append(w)

    # Optional shared-memory tile exchange (Table 2's Smem column).
    if smem_bytes:
        lane = b.reg()
        b.emit(f"S2R {lane}, %tid")
        lane4 = b.scaled(lane, 2)
        b.emit(f"ST.shared [{lane4}], {pool[0]}")
        b.emit("BAR")
        neighbor = b.reg()
        b.emit(f"LD.shared {neighbor}, [{lane4}+4]")
        pool[0] = neighbor

    accum = b.reg()
    b.emit(f"MOV {accum}, 0.0")

    b.counted_loop(trips)
    counter = b._loop_stack[-1][0]
    # Streaming loads: a fresh region every iteration (cold in cache),
    # in a per-warp region disjoint from every other warp's stream.
    stream_base = b.reg()
    b.emit(f"SHL {stream_base}, {warp}, 18")
    stride = b.reg()
    b.emit(f"IMAD {stride}, {counter}, {iter_stride}, {stream_base}")
    streamed = []
    for i in range(stream_loads):
        streamed.append(
            b.load_global(stride, offset=stream_spread * i + 65536)
        )
    # Table reads: a small per-warp region reused every iteration
    # (cache-sensitive working set -> occupancy-dependent hit rate).
    for i in range(table_reads):
        idx = b.reg()
        b.emit(f"AND {idx}, {counter}, {table_lines - 1}")
        addr = b.reg()
        b.emit(f"IMAD {addr}, {idx}, 128, {table_base}")
        streamed.append(b.load_global(addr, offset=128 * i + 4 * 1024 * 1024))
    folded = b.live_chain(pool + wides + streamed)
    for _ in range(compute):
        nxt = b.reg()
        b.emit(f"FFMA {nxt}, {folded}, 1.000001, {accum}")
        accum = nxt
        folded = accum
    if hot_call:
        out = b.reg()
        b.emit(f"CALL {out}, {hot_call}({accum})")
        accum = out
    b.close_loop()

    # Cold branch: statically present call sites that never execute
    # (the paper counts static sites in the binary after inlining).
    if cold_calls and hot_call:
        minus = b.reg()
        b.emit(f"ISET.eq {minus}, {gid}, -123456789")
        cold, warm = b.label("COLD"), b.label("WARM")
        b.emit(f"CBR {minus}, {cold}, {warm}")
        b.mark(cold)
        cold_accum = accum
        for _ in range(cold_calls):
            out = b.reg()
            b.emit(f"CALL {out}, {hot_call}({cold_accum})")
            cold_accum = out
        b.emit(f"ST.global [{base}+4], {cold_accum}")
        b.emit(f"BRA {warm}")
        b.mark(warm)

    b.emit(f"ST.global [{base}], {accum}")
    b.emit("EXIT")

    for fname, callees in (call_tree or {}).items():
        body = []
        acc = "%v0"
        nxt = 1
        for callee in callees:
            body.append(f"CALL %v{nxt}, {callee}(%v{0 if nxt == 1 else nxt - 1})")
            nxt += 1
        body.append(f"FFMA %v{nxt}, %v{nxt - 1 if callees else 0}, 1.25, %v0")
        body.append(f"RET %v{nxt}")
        b.device_function(fname, 1, body)
    return b.build()


# ----------------------------------------------------------------------
# Per-benchmark generators
# ----------------------------------------------------------------------
def build_cfd() -> Module:
    """Fluid dynamics: highest register pressure, 36 static calls."""
    return _make_kernel(
        "cfd",
        persistent=51,
        trips=8,
        stream_loads=6,
        compute=3,
        hot_call="flux",
        cold_calls=33,
        call_tree={"flux": ["dot"], "dot": ["frcp_fn"], "frcp_fn": []},
    )


def build_dxtc() -> Module:
    """Image compression: shared-memory tiles, 11 calls."""
    return _make_kernel(
        "dxtc",
        persistent=39,
        trips=8,
        stream_loads=4,
        compute=3,
        smem_bytes=6144,
        hot_call="dist",
        cold_calls=9,
        call_tree={"dist": ["clampf"], "clampf": []},
    )


def build_heartwall() -> Module:
    """Heart-wall tracking (Rodinia): call-heavy, used in Fig. 5."""
    return _make_kernel(
        "heartwall",
        persistent=35,
        trips=8,
        stream_loads=5,
        compute=3,
        hot_call="convolve",
        cold_calls=8,
        call_tree={"convolve": ["fexp_fn"], "fexp_fn": []},
    )


def build_fdtd3d() -> Module:
    """3D stencil: wide halo held live, shared tiles, no calls."""
    return _make_kernel(
        "FDTD3d",
        persistent=32,
        trips=8,
        stream_loads=7,
        compute=3,
        smem_bytes=2048,
        wide_values=2,
    )


def build_hotspot() -> Module:
    """Thermal simulation: moderate pressure, 6 calls, shared tiles."""
    return _make_kernel(
        "hotspot",
        persistent=26,
        trips=10,
        stream_loads=5,
        compute=3,
        smem_bytes=4096,
        hot_call="step",
        cold_calls=4,
        call_tree={"step": ["clamp01"], "clamp01": []},
    )


def build_imagedenoising() -> Module:
    """NLM denoising: the Fig. 1 bell curve; very high pressure."""
    return _make_kernel(
        "imageDenoising",
        persistent=52,
        trips=8,
        stream_loads=5,
        compute=3,
        smem_bytes=1024,
        hot_call="weight",
        cold_calls=1,
        call_tree={"weight": []},
    )


def build_particles() -> Module:
    """Particle simulation: high pressure, no calls, not tunable."""
    return _make_kernel(
        "particles",
        persistent=43,
        trips=10,
        stream_loads=4,
        compute=5,
    )


def build_recursivegaussian() -> Module:
    """Recursive Gaussian filter: 21 static calls."""
    return _make_kernel(
        "recursiveGaussian",
        persistent=32,
        trips=8,
        stream_loads=4,
        compute=3,
        hot_call="coef",
        cold_calls=19,
        call_tree={"coef": ["fdiv_fn"], "fdiv_fn": []},
    )


def build_backprop() -> Module:
    """Tiny ML kernel: <100 instructions, no loops or calls."""
    b = KernelBuilder(module_name="backprop")
    gid = b.global_thread_id()
    base = b.scaled(gid, 7)
    # 12 cold lines plus 8 re-reads of the first line: enough memory
    # latency to need ~60% occupancy, enough bandwidth to saturate there.
    values = [b.load_global(base, offset=128 * i) for i in range(12)]
    values += [b.load_global(base, offset=128 * i + 4) for i in range(8)]
    folded = b.live_chain(values)
    out = b.reg()
    b.emit(f"FMUL {out}, {folded}, 0.5")
    b.emit(f"ST.global [{base}], {out}")
    b.emit("EXIT")
    return b.build()


def build_bfs() -> Module:
    """Graph traversal: irregular, divergent, latency-bound."""
    return _make_kernel(
        "bfs",
        persistent=8,
        trips=10,
        stream_loads=3,
        compute=1,
        stream_spread=4096,
    )


def build_gaussian() -> Module:
    """Gaussian elimination row kernel: tiny, bandwidth-bound."""
    return _make_kernel(
        "gaussian",
        persistent=1,
        trips=8,
        stream_loads=5,
        compute=1,
        stream_spread=4096,
        # five 4KB scattered windows per iteration: stride past them so
        # iterations never overlap (bandwidth-flat at every occupancy)
        iter_stride=24576,
        hot_call="fdiv_fn",
        cold_calls=1,
        call_tree={"fdiv_fn": []},
    )


def build_srad() -> Module:
    """Speckle-reducing diffusion: the Fig. 10 flat-top curve."""
    return _make_kernel(
        "srad",
        persistent=9,
        trips=10,
        stream_loads=1,
        table_reads=3,
        compute=10,
        smem_bytes=1024,
        hot_call="diffuse",
        cold_calls=5,
        call_tree={"diffuse": ["fdiv_fn"], "fdiv_fn": []},
    )


def build_streamcluster() -> Module:
    """Data mining: per-warp centre table, cache-sensitive (Fig. 14b)."""
    return _make_kernel(
        "streamcluster",
        persistent=8,
        trips=12,
        stream_loads=1,
        table_reads=3,
        table_lines=1,
        compute=7,
    )


def build_matrixmul() -> Module:
    """Tiled matrix multiplication: the Fig. 2 plateau."""
    return _make_kernel(
        "matrixMul",
        persistent=9,
        trips=10,
        stream_loads=1,
        table_reads=2,
        compute=14,
        smem_bytes=2048,
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def _spec(
    name: str,
    domain: str,
    suite: str,
    regs: int | None,
    calls: int | None,
    smem: bool,
    group: str,
    build: Callable[[], Module],
    workload: WorkloadSpec,
    force_original: bool = False,
) -> BenchmarkSpec:
    return BenchmarkSpec(
        name=name,
        domain=domain,
        suite=suite,
        paper_regs=regs,
        paper_calls=calls,
        paper_smem=smem,
        tuning_group=group,
        build=build,
        workload=workload,
        force_original=force_original,
    )


_COALESCED = MemoryTraits(global_lane_stride=4)
_STRIDED = MemoryTraits(global_lane_stride=32)
_STRIDED8 = MemoryTraits(global_lane_stride=8)
_STRIDED16 = MemoryTraits(global_lane_stride=16)
_IRREGULAR = MemoryTraits(
    global_lane_stride=128, divergence=1.6, irregularity=0.6, active_lanes=2
)
_SCATTERED = MemoryTraits(global_lane_stride=128)


BENCHMARKS: dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        _spec(
            "cfd", "Fluid dynam.", "rodinia", 63, 36, False, "up",
            build_cfd,
            WorkloadSpec(grid_blocks=96, iterations=24, traits=_STRIDED8),
        ),
        _spec(
            "dxtc", "Image proc.", "cuda-sdk", 49, 11, True, "up",
            build_dxtc,
            WorkloadSpec(grid_blocks=96, iterations=24, traits=_COALESCED),
        ),
        _spec(
            "heartwall", "Medical imaging", "rodinia", None, None, False,
            "extra", build_heartwall,
            WorkloadSpec(grid_blocks=96, iterations=24, traits=_STRIDED8),
        ),
        _spec(
            "FDTD3d", "Numer. analysis", "cuda-sdk", 48, 0, True, "up",
            build_fdtd3d,
            WorkloadSpec(grid_blocks=96, iterations=24, traits=_COALESCED),
        ),
        _spec(
            "hotspot", "Temp. modeling", "rodinia", 37, 6, True, "up",
            build_hotspot,
            WorkloadSpec(grid_blocks=96, iterations=24, traits=_COALESCED),
        ),
        _spec(
            "imageDenoising", "Image proc.", "cuda-sdk", 63, 2, True, "up",
            build_imagedenoising,
            WorkloadSpec(grid_blocks=96, iterations=24, traits=_COALESCED),
        ),
        _spec(
            "particles", "Simulation", "cuda-sdk", 52, 0, False, "up",
            build_particles,
            # One invocation of a brief kernel: the runtime cannot
            # trial-and-error on it, so the static selection decides.
            WorkloadSpec(grid_blocks=96, iterations=1, traits=_STRIDED8,
                         allow_tuning=False),
        ),
        _spec(
            "recursiveGaussian", "Numer. analysis", "cuda-sdk", 42, 21,
            False, "up", build_recursivegaussian,
            WorkloadSpec(grid_blocks=96, iterations=24, traits=_COALESCED),
        ),
        _spec(
            "backprop", "Machine learning", "rodinia", 21, 0, False, "down",
            build_backprop,
            WorkloadSpec(grid_blocks=64, iterations=24, traits=_STRIDED8,
                         max_events_per_warp=600),
            force_original=True,
        ),
        _spec(
            "bfs", "Graph traversal", "rodinia", 16, 0, False, "down",
            build_bfs,
            WorkloadSpec(grid_blocks=96, iterations=24, traits=_IRREGULAR),
        ),
        _spec(
            "gaussian", "Numer. analysis", "rodinia", 11, 2, False, "down",
            build_gaussian,
            WorkloadSpec(grid_blocks=96, iterations=24, traits=_SCATTERED),
        ),
        _spec(
            "srad", "Imaging app", "rodinia", 20, 7, True, "down",
            build_srad,
            WorkloadSpec(grid_blocks=96, iterations=24, traits=_STRIDED16,
                         ilp=1.5),
        ),
        _spec(
            "streamcluster", "Data mining", "rodinia", 18, 0, False, "down",
            build_streamcluster,
            WorkloadSpec(grid_blocks=96, iterations=24, traits=_STRIDED8),
        ),
        _spec(
            "matrixMul", "Linear algebra", "cuda-sdk", None, None, True,
            "extra", build_matrixmul,
            WorkloadSpec(grid_blocks=96, iterations=24, traits=_STRIDED16,
                         ilp=2.0),
        ),
    ]
}


def table2_benchmarks() -> list[BenchmarkSpec]:
    """The twelve benchmarks of the paper's Table 2, in its order."""
    order = [
        "cfd", "dxtc", "FDTD3d", "hotspot", "imageDenoising", "particles",
        "recursiveGaussian", "backprop", "bfs", "gaussian", "srad",
        "streamcluster",
    ]
    return [BENCHMARKS[name] for name in order]


def upward_benchmarks() -> list[BenchmarkSpec]:
    """The seven Fig. 11 benchmarks (compiler predicts 'increasing')."""
    order = [
        "cfd", "dxtc", "FDTD3d", "hotspot", "imageDenoising", "particles",
        "recursiveGaussian",
    ]
    return [BENCHMARKS[name] for name in order]


def downward_benchmarks() -> list[BenchmarkSpec]:
    """The five Fig. 12 benchmarks (compiler predicts 'decreasing')."""
    order = ["backprop", "bfs", "gaussian", "srad", "streamcluster"]
    return [BENCHMARKS[name] for name in order]


def figure5_benchmarks() -> list[BenchmarkSpec]:
    """The seven call-heavy benchmarks of the Fig. 5 ablation."""
    order = [
        "cfd", "dxtc", "heartwall", "hotspot", "imageDenoising",
        "particles", "recursiveGaussian",
    ]
    return [BENCHMARKS[name] for name in order]
