"""Workload descriptions for the benchmark suite.

A :class:`WorkloadSpec` captures how a benchmark *runs*: launch
geometry, how many times the application loops over the kernel (the
iterations the Fig. 9 tuner feeds on), the warp-level memory behaviour
(coalescing, divergence, irregularity), and the instruction-level
parallelism of its inner loop.  These are the properties the paper's
evaluation varies across benchmarks; the kernel *code* properties
(register pressure, calls, shared memory) live in the generators in
:mod:`repro.bench.kernels`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.interp import LaunchConfig, Value
from repro.sim.trace import MemoryTraits


@dataclass(frozen=True)
class WorkloadSpec:
    """Dynamic execution profile of one benchmark."""

    grid_blocks: int = 64
    block_size: int = 256
    #: application-level kernel-loop iterations (1 = not iterative)
    iterations: int = 8
    params: dict[int, Value] = field(default_factory=dict)
    traits: MemoryTraits = field(default_factory=MemoryTraits)
    ilp: float = 1.0
    max_events_per_warp: int = 3000
    #: False marks kernels the runtime must not trial-and-error on
    #: (paper: particles' kernel is too brief for split-tuning)
    allow_tuning: bool = True

    def launch(self) -> LaunchConfig:
        return LaunchConfig(
            grid_blocks=self.grid_blocks,
            block_size=self.block_size,
            params=dict(self.params),
        )

    @property
    def can_tune(self) -> bool:
        """Dynamically tunable: an app loop, or a grid big enough to split."""
        if not self.allow_tuning:
            return False
        return self.iterations > 1 or self.grid_blocks >= 4
