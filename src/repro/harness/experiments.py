"""One entry point per paper table and figure (the experiment index).

Every public function regenerates one artifact of the paper's
evaluation section and returns structured rows plus a ``render()``-able
string, so the benchmark harness prints the same series the paper
plots.  Absolute cycle counts belong to our simulator, not the authors'
GPUs; the claims under reproduction are the *shapes*: who wins, by
roughly what factor, and where the crossovers sit.

| id      | artifact                                            |
|---------|-----------------------------------------------------|
| fig1    | imageDenoising runtime vs occupancy (GTX680 bell)   |
| fig2    | matrixMul runtime vs occupancy (plateau)            |
| fig5    | inter-procedure allocation ablations                |
| fig10   | srad runtime vs occupancy (C2075 flat top)          |
| fig11   | Orion-Min / nvcc / Orion-Max / Orion-Select speedup |
| fig12   | downward tuning: registers & runtime                |
| fig13   | energy: selected vs ideal (C2075)                   |
| fig14   | gaussian / streamcluster curves (C2075)             |
| fig15   | backprop / bfs curves (GTX680)                      |
| table2  | benchmark info: Reg / Func / Smem                   |
| table3  | small-cache vs large-cache speedup                  |
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.occupancy import calculate_occupancy, occupancy_levels
from repro.arch.specs import GTX680, TESLA_C2075, CacheConfig, GpuArchitecture
from repro.bench.kernels import (
    BENCHMARKS,
    BenchmarkSpec,
    downward_benchmarks,
    figure5_benchmarks,
    table2_benchmarks,
    upward_benchmarks,
)
from repro.compiler.multiversion import MultiVersionBinary
from repro.compiler.pipeline import CompileOptions, compile_binary, nvcc_baseline
from repro.compiler.realize import KernelVersion, RealizeError, realize_occupancy
from repro.harness.reporting import format_series, format_table
from repro.ir.callgraph import count_static_calls
from repro.perf.measure_cache import MeasurementCache
from repro.regalloc.allocator import minimal_budget
from repro.regalloc.strategy import default_strategy_id, get_strategy
from repro.runtime.engine import ExecutionEngine
from repro.runtime.session import ExecutionReport, TuningSession, Workload
from repro.sim.backend import MeasurementResult
from repro.sim.energy import gpu_power


# ----------------------------------------------------------------------
# Shared plumbing (everything cached per benchmark+architecture)
# ----------------------------------------------------------------------
_COMPILE_CACHE: dict[tuple[str, str, str], MultiVersionBinary] = {}
_NVCC_CACHE: dict[tuple[str, str], KernelVersion] = {}
#: one content-addressed measurement cache shared by every engine the
#: harness creates, so launches repeated across figures, tables, and
#: tuning sessions dedupe to a single backend invocation
_MEASUREMENT_CACHE = MeasurementCache()
_ENGINES: dict[tuple[str, str, str], ExecutionEngine] = {}


def engine(
    arch: GpuArchitecture,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    backend: str = "timing",
) -> ExecutionEngine:
    """The harness's engine for one (architecture, cache config, backend).

    Engines share one measurement cache: every figure and table that
    re-measures a launch another experiment already measured gets a
    cache hit instead of a simulation.
    """
    key = (arch.name, cache_config.value, backend)
    if key not in _ENGINES:
        _ENGINES[key] = ExecutionEngine(
            arch,
            backend=backend,
            cache_config=cache_config,
            measurement_cache=_MEASUREMENT_CACHE,
        )
    return _ENGINES[key]


def compiled(
    spec: BenchmarkSpec,
    arch: GpuArchitecture,
    strategy: str | None = None,
) -> MultiVersionBinary:
    """The benchmark's fat binary, compiled once per (arch, strategy).

    ``strategy`` is a :mod:`repro.regalloc.strategy` selector (an id or
    ``"mixed"``); ``None`` resolves the session default, matching what
    a bare :class:`CompileOptions` would do.
    """
    sid = strategy if strategy is not None else default_strategy_id()
    key = (spec.name, arch.name, sid)
    if key not in _COMPILE_CACHE:
        module = spec.build()
        _COMPILE_CACHE[key] = compile_binary(
            module,
            module.kernel().name,
            CompileOptions(
                arch=arch,
                block_size=spec.workload.block_size,
                can_tune=spec.workload.can_tune,
                strategy=sid,
            ),
        )
    return _COMPILE_CACHE[key]


def nvcc_version(spec: BenchmarkSpec, arch: GpuArchitecture) -> KernelVersion:
    key = (spec.name, arch.name)
    if key not in _NVCC_CACHE:
        module = spec.build()
        _NVCC_CACHE[key] = nvcc_baseline(
            module,
            module.kernel().name,
            arch,
            block_size=spec.workload.block_size,
        )
    return _NVCC_CACHE[key]


def time_version(
    spec: BenchmarkSpec,
    arch: GpuArchitecture,
    version: KernelVersion,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
) -> MeasurementResult:
    """One launch of one version under the benchmark's workload traits.

    Goes through the execution engine, so repeats (within this figure
    or any other) are measurement-cache hits.
    """
    wl = spec.workload
    return engine(arch, cache_config).measure(
        version,
        wl.launch(),
        Workload(
            launch=wl.launch(),
            traits=wl.traits,
            ilp=wl.ilp,
            max_events_per_warp=wl.max_events_per_warp,
        ),
        session=spec.name,
    )


def clear_caches() -> None:
    _COMPILE_CACHE.clear()
    _NVCC_CACHE.clear()
    _MEASUREMENT_CACHE.clear()
    _ENGINES.clear()
    _SWEEP_CACHE.clear()
    _EXECUTE_CACHE.clear()


# ----------------------------------------------------------------------
# Occupancy sweeps (Figures 1, 2, 10, 14, 15)
# ----------------------------------------------------------------------
@dataclass
class SweepPoint:
    warps: int
    occupancy: float
    cycles: int
    version: KernelVersion = field(repr=False, compare=False, default=None)


@dataclass
class SweepResult:
    benchmark: str
    arch_name: str
    points: list[SweepPoint]

    @property
    def best(self) -> SweepPoint:
        return min(self.points, key=lambda p: p.cycles)

    @property
    def worst(self) -> SweepPoint:
        return max(self.points, key=lambda p: p.cycles)

    def normalized(self, to: str = "best") -> list[tuple[float, float]]:
        """(occupancy, normalized runtime) pairs.

        ``to``: "best" normalises to the fastest level (Figures 1/2),
        "max" to the highest-occupancy level (Figure 10's convention).
        """
        if to == "best":
            denom = self.best.cycles
        elif to == "max":
            denom = self.points[-1].cycles
        else:
            raise ValueError(f"unknown normalisation {to!r}")
        return [(p.occupancy, p.cycles / denom) for p in self.points]

    def render(self, to: str = "best") -> str:
        pairs = self.normalized(to)
        return (
            f"{self.benchmark} on {self.arch_name}\n"
            + format_series(
                [o for o, _ in pairs],
                [r for _, r in pairs],
                "occupancy",
                "normalized runtime",
            )
        )


_SWEEP_CACHE: dict[tuple[str, str, str, str], SweepResult] = {}


def occupancy_sweep(
    benchmark: str,
    arch: GpuArchitecture,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
    strategy: str | None = None,
) -> SweepResult:
    """Orion-generated code at every occupancy level, timed.

    This is the paper's evaluation methodology: "we let the Orion
    compiler generate code at all occupancy levels, allowing for
    identification of the best and worst cases."  ``strategy`` names a
    concrete allocation strategy (``None`` = the reference
    ``local-spill``, keeping figure generation deterministic).
    """
    sid = get_strategy(strategy).id
    cache_key = (benchmark, arch.name, cache_config.value, sid)
    if cache_key in _SWEEP_CACHE:
        return _SWEEP_CACHE[cache_key]
    spec = BENCHMARKS[benchmark]
    module = spec.build()
    kernel = module.kernel().name
    suffix = "" if sid == "local-spill" else f" [{sid}]"
    points = []
    for warps in occupancy_levels(arch, spec.workload.block_size):
        try:
            version = realize_occupancy(
                module,
                kernel,
                arch,
                spec.workload.block_size,
                warps,
                cache_config,
                conservative=True,
                label=f"sweep warps={warps}{suffix}",
                strategy=sid,
            )
        except RealizeError:
            continue
        measured = time_version(spec, arch, version, cache_config)
        points.append(
            SweepPoint(
                warps=warps,
                occupancy=warps / arch.max_warps_per_sm,
                cycles=measured.cycles,
                version=version,
            )
        )
    result = SweepResult(
        benchmark=benchmark, arch_name=arch.name, points=points
    )
    _SWEEP_CACHE[cache_key] = result
    return result


def figure1() -> SweepResult:
    """Fig. 1: imageDenoising on GTX680 — the motivating ~3x bell."""
    return occupancy_sweep("imageDenoising", GTX680)


def figure2() -> SweepResult:
    """Fig. 2: matrixMul — performance plateaus above ~50% occupancy."""
    return occupancy_sweep("matrixMul", TESLA_C2075)


def figure10() -> SweepResult:
    """Fig. 10: srad on Tesla C2075 — halving occupancy costs nothing."""
    return occupancy_sweep("srad", TESLA_C2075)


def figure14() -> dict[str, SweepResult]:
    """Fig. 14: gaussian (flat) and streamcluster (skewed bell), C2075."""
    return {
        "gaussian": occupancy_sweep("gaussian", TESLA_C2075),
        "streamcluster": occupancy_sweep("streamcluster", TESLA_C2075),
    }


def figure15() -> dict[str, SweepResult]:
    """Fig. 15: backprop and bfs on GTX680."""
    return {
        "backprop": occupancy_sweep("backprop", GTX680),
        "bfs": occupancy_sweep("bfs", GTX680),
    }


# ----------------------------------------------------------------------
# Figure 5: inter-procedure allocation ablations
# ----------------------------------------------------------------------
@dataclass
class Fig5Row:
    benchmark: str
    no_space_minimization: float  # normalised runtime vs optimised
    no_movement_minimization: float
    optimized_moves: int
    unoptimized_moves: int


def figure5(arch: GpuArchitecture = TESLA_C2075) -> list[Fig5Row]:
    """Optimised vs unoptimised inter-procedure allocation (Fig. 5).

    "No Space Minimization" gives the callee a window above the caller's
    full frame (more registers -> more spills at the same occupancy);
    "No Data Movement Minimization" keeps the allocator's slot layout
    instead of the Kuhn–Munkres one (more saves/restores per call).
    Both ablations target the highest occupancy level Orion's compiler
    generates for the kernel — the configuration where inter-procedure
    allocation pressure is at its strongest.
    """
    rows = []
    for spec in figure5_benchmarks():
        module = spec.build()
        kernel = module.kernel().name
        candidates = compiled(spec, arch).versions
        target = max(v.achieved_warps for v in candidates)
        variants = {}
        moves = {}
        for label, space, movement in (
            ("optimized", True, True),
            ("no_space", False, True),
            ("no_movement", True, False),
        ):
            version = realize_occupancy(
                module,
                kernel,
                arch,
                spec.workload.block_size,
                target,
                conservative=True,
                label=f"fig5 {label} warps={target}",
                space_minimization=space,
                movement_minimization=movement,
            )
            variants[label] = time_version(spec, arch, version).cycles
            moves[label] = version.outcome.stack_moves
        base = variants["optimized"]
        rows.append(
            Fig5Row(
                benchmark=spec.name,
                no_space_minimization=variants["no_space"] / base,
                no_movement_minimization=variants["no_movement"] / base,
                optimized_moves=moves["optimized"],
                unoptimized_moves=moves["no_movement"],
            )
        )
    return rows


def render_figure5(rows: list[Fig5Row]) -> str:
    return format_table(
        ["benchmark", "no space min", "no movement min", "opt moves", "unopt moves"],
        [
            (
                r.benchmark,
                r.no_space_minimization,
                r.no_movement_minimization,
                r.optimized_moves,
                r.unoptimized_moves,
            )
            for r in rows
        ],
        title="Figure 5: inter-procedure allocation ablation "
        "(normalized runtime vs optimized)",
    )


# ----------------------------------------------------------------------
# Figure 11: the headline speedup comparison
# ----------------------------------------------------------------------
@dataclass
class Fig11Row:
    benchmark: str
    orion_min: float  # normalised speedup over nvcc (worst level)
    nvcc: float  # 1.0 by construction
    orion_max: float  # best level
    orion_select: float  # dynamic tuning, overhead included
    selected_label: str
    iterations_to_converge: int | None


def orion_selected_version(
    spec: BenchmarkSpec, arch: GpuArchitecture
) -> KernelVersion:
    """The version Orion's runtime finally locks in for a benchmark."""
    if spec.force_original:
        return compiled(spec, arch).original
    report = _execute(spec, arch)
    return report.final_version


_EXECUTE_CACHE: dict[tuple[str, str], object] = {}


def _execute(spec: BenchmarkSpec, arch: GpuArchitecture):
    key = (spec.name, arch.name)
    if key not in _EXECUTE_CACHE:
        session = TuningSession(
            compiled(spec, arch), _workload(spec), name=spec.name
        )
        _EXECUTE_CACHE[key] = engine(arch).run(session)
    return _EXECUTE_CACHE[key]


def bench_suite(
    arch: GpuArchitecture,
    backend: str = "timing",
    jobs: int | None = None,
    only: list[str] | None = None,
    suite_engine: ExecutionEngine | None = None,
    strategy: str | None = None,
) -> list[tuple[str, ExecutionReport]]:
    """Drive the whole benchmark suite through one engine, concurrently.

    One :class:`TuningSession` per benchmark, scheduled by
    ``ExecutionEngine.run_many`` (``jobs``/``ORION_ENGINE_JOBS`` wide).
    Sessions are independent and measurements content-addressed, so the
    reports are identical at any scheduler width.  Pass ``suite_engine``
    to control the backend instance, telemetry sinks, or trace file;
    ``only`` restricts to a subset of benchmark names; ``strategy`` is
    the allocation-strategy selector handed to :func:`compiled`.
    """
    names = list(only) if only else list(BENCHMARKS)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise ValueError(f"unknown benchmark(s): {', '.join(unknown)}")
    eng = suite_engine or engine(arch, backend=backend)
    sessions = [
        TuningSession(
            compiled(BENCHMARKS[name], arch, strategy=strategy),
            _workload(BENCHMARKS[name]),
            name=name,
        )
        for name in names
    ]
    reports = eng.run_many(sessions, jobs=jobs)
    # The engine isolates per-session failures (slot is None) so the
    # rest of the suite completes; surface them here, after the batch.
    failed = [
        (name, session)
        for name, session, report in zip(names, sessions, reports)
        if report is None
    ]
    if failed:
        first = failed[0][1].error or "unknown failure"
        raise RuntimeError(
            f"benchmark session(s) failed: "
            f"{', '.join(name for name, _ in failed)}\n{first}"
        )
    return list(zip(names, reports))


def _workload(spec: BenchmarkSpec) -> Workload:
    wl = spec.workload
    return Workload(
        launch=wl.launch(),
        iterations=wl.iterations,
        traits=wl.traits,
        ilp=wl.ilp,
        max_events_per_warp=wl.max_events_per_warp,
    )


def figure11(arch: GpuArchitecture) -> list[Fig11Row]:
    """Fig. 11: normalized speedup over the nvcc baseline.

    Orion-Min/Max are the worst/best single occupancy levels found by
    exhaustive sweep; Orion-Select is the dynamically tuned execution
    *including* its tuning-iteration overhead.
    """
    rows = []
    for spec in upward_benchmarks():
        sweep = occupancy_sweep(spec.name, arch)
        nvcc = nvcc_version(spec, arch)
        iterations = max(1, spec.workload.iterations)
        nvcc_total = time_version(spec, arch, nvcc).cycles * iterations

        # "All occupancy levels" includes the compiler's own candidate
        # versions (the original may beat every conservative level).
        level_cycles = [p.cycles for p in sweep.points]
        for version in compiled(spec, arch).versions:
            level_cycles.append(time_version(spec, arch, version).cycles)

        if spec.force_original or not spec.workload.can_tune:
            selected = orion_selected_version(spec, arch)
            select_total = (
                time_version(spec, arch, selected).cycles * iterations
            )
            converged = 0
            label = selected.label
        else:
            report = _execute(spec, arch)
            select_total = report.total_cycles
            converged = report.iterations_to_converge
            label = report.final_label

        min_total = max(level_cycles) * iterations
        max_total = min(level_cycles) * iterations
        rows.append(
            Fig11Row(
                benchmark=spec.name,
                orion_min=nvcc_total / min_total,
                nvcc=1.0,
                orion_max=nvcc_total / max_total,
                orion_select=nvcc_total / select_total,
                selected_label=label,
                iterations_to_converge=converged,
            )
        )
    return rows


def average_select_speedup(rows: list[Fig11Row]) -> float:
    """The paper's headline: mean Orion-Select speedup over nvcc."""
    return sum(r.orion_select for r in rows) / len(rows)


def render_figure11(rows: list[Fig11Row], arch_name: str) -> str:
    table = format_table(
        ["benchmark", "Orion-Min", "nvcc", "Orion-Max", "Orion-Select", "picked", "iters"],
        [
            (
                r.benchmark,
                r.orion_min,
                r.nvcc,
                r.orion_max,
                r.orion_select,
                r.selected_label,
                r.iterations_to_converge,
            )
            for r in rows
        ],
        title=f"Figure 11: normalized speedup over nvcc ({arch_name})",
    )
    avg = (average_select_speedup(rows) - 1.0) * 100
    return f"{table}\naverage Orion-Select speedup: {avg:+.2f}%"


# ----------------------------------------------------------------------
# Figure 12: downward tuning — registers and runtime
# ----------------------------------------------------------------------
@dataclass
class Fig12Row:
    benchmark: str
    normalized_registers: float
    normalized_runtime: float
    selected_label: str


def figure12(arch: GpuArchitecture) -> list[Fig12Row]:
    """Fig. 12: register-file use & runtime of the tuned-down versions,
    normalised to the nvcc-generated program."""
    rows = []
    for spec in downward_benchmarks():
        nvcc = nvcc_version(spec, arch)
        wl = spec.workload
        nvcc_occ = calculate_occupancy(
            arch, wl.block_size, nvcc.regs_per_thread, nvcc.smem_per_block
        )
        selected = orion_selected_version(spec, arch)
        sel_occ = calculate_occupancy(
            arch, wl.block_size, selected.regs_per_thread, selected.smem_per_block
        )
        nvcc_cycles = time_version(spec, arch, nvcc).cycles
        sel_cycles = time_version(spec, arch, selected).cycles
        rows.append(
            Fig12Row(
                benchmark=spec.name,
                normalized_registers=(
                    sel_occ.allocated_registers / nvcc_occ.allocated_registers
                ),
                normalized_runtime=sel_cycles / nvcc_cycles,
                selected_label=selected.label,
            )
        )
    return rows


def average_register_saving(rows: list[Fig12Row]) -> float:
    """Mean occupancy/register reduction (paper: 19.17% on average)."""
    return sum(1.0 - r.normalized_registers for r in rows) / len(rows)


def render_figure12(rows: list[Fig12Row], arch_name: str) -> str:
    table = format_table(
        ["benchmark", "registers", "runtime", "picked"],
        [
            (r.benchmark, r.normalized_registers, r.normalized_runtime, r.selected_label)
            for r in rows
        ],
        title=f"Figure 12: downward occupancy tuning ({arch_name}), "
        "normalized to nvcc",
    )
    saving = average_register_saving(rows) * 100
    return f"{table}\naverage register saving: {saving:.2f}%"


# ----------------------------------------------------------------------
# Figure 13: energy (Tesla C2075)
# ----------------------------------------------------------------------
@dataclass
class Fig13Row:
    benchmark: str
    selected_energy: float  # normalised to nvcc
    ideal_energy: float  # exhaustive-search minimum


def figure13(arch: GpuArchitecture = TESLA_C2075) -> list[Fig13Row]:
    """Fig. 13: normalized energy of the selected kernel vs the ideal.

    Power follows the occupancy's register-file utilisation (the
    mechanism the paper measures with CUPTI); energy = power x cycles.
    """
    rows = []
    for spec in downward_benchmarks():
        wl = spec.workload
        nvcc = nvcc_version(spec, arch)
        nvcc_occ = calculate_occupancy(
            arch, wl.block_size, nvcc.regs_per_thread, nvcc.smem_per_block
        )
        nvcc_energy = (
            gpu_power(arch, nvcc_occ)
            * time_version(spec, arch, nvcc).cycles
        )

        selected = orion_selected_version(spec, arch)
        sel_occ = calculate_occupancy(
            arch, wl.block_size, selected.regs_per_thread, selected.smem_per_block
        )
        sel_energy = (
            gpu_power(arch, sel_occ)
            * time_version(spec, arch, selected).cycles
        )

        sweep = occupancy_sweep(spec.name, arch)
        ideal = min(
            gpu_power(
                arch,
                calculate_occupancy(
                    arch,
                    wl.block_size,
                    p.version.regs_per_thread,
                    p.version.smem_per_block,
                ),
            )
            * p.cycles
            for p in sweep.points
        )
        rows.append(
            Fig13Row(
                benchmark=spec.name,
                selected_energy=sel_energy / nvcc_energy,
                ideal_energy=ideal / nvcc_energy,
            )
        )
    return rows


def render_figure13(rows: list[Fig13Row]) -> str:
    return format_table(
        ["benchmark", "selected", "ideal"],
        [(r.benchmark, r.selected_energy, r.ideal_energy) for r in rows],
        title="Figure 13: normalized energy of selected kernel (Tesla C2075)",
    )


# ----------------------------------------------------------------------
# Table 2: benchmark information
# ----------------------------------------------------------------------
@dataclass
class Table2Row:
    benchmark: str
    domain: str
    paper_regs: int | None
    measured_regs: int
    paper_calls: int | None
    measured_calls: int
    paper_smem: bool
    measured_smem: bool


def table2() -> list[Table2Row]:
    """Table 2: Reg (spill-free registers), Func (static calls), Smem."""
    rows = []
    for spec in table2_benchmarks():
        module = spec.build()
        kernel = module.kernel().name
        rows.append(
            Table2Row(
                benchmark=spec.name,
                domain=spec.domain,
                paper_regs=spec.paper_regs,
                measured_regs=minimal_budget(module, kernel, upper_bound=96),
                paper_calls=spec.paper_calls,
                measured_calls=count_static_calls(module, kernel),
                paper_smem=spec.paper_smem,
                measured_smem=module.kernel().shared_bytes > 0,
            )
        )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    return format_table(
        ["benchmark", "domain", "Reg (paper)", "Reg (ours)",
         "Func (paper)", "Func (ours)", "Smem (paper)", "Smem (ours)"],
        [
            (
                r.benchmark,
                r.domain,
                r.paper_regs,
                r.measured_regs,
                r.paper_calls,
                r.measured_calls,
                "Yes" if r.paper_smem else "No",
                "Yes" if r.measured_smem else "No",
            )
            for r in rows
        ],
        title="Table 2: benchmark information (paper vs measured)",
    )


# ----------------------------------------------------------------------
# Table 3: small-cache vs large-cache speedup
# ----------------------------------------------------------------------
@dataclass
class Table3Row:
    benchmark: str
    arch_name: str
    small_cache: float
    large_cache: float | None  # None: infeasible (occupancy requirement)


def table3(arch: GpuArchitecture) -> list[Table3Row]:
    """Table 3: speedup over nvcc at Orion's selected occupancy, under
    the small-cache (16KB L1) and large-cache (48KB L1) configurations.

    A large-cache cell is empty when the selected occupancy cannot be
    reached with only 16KB of shared memory per SM.
    """
    rows = []
    for spec in upward_benchmarks():
        module = spec.build()
        kernel = module.kernel().name
        nvcc = nvcc_version(spec, arch)
        nvcc_cycles = time_version(spec, arch, nvcc).cycles
        selected = orion_selected_version(spec, arch)
        target = selected.achieved_warps

        sc_cycles = time_version(spec, arch, selected).cycles
        large: float | None
        try:
            lc_version = realize_occupancy(
                module,
                kernel,
                arch,
                spec.workload.block_size,
                target,
                CacheConfig.LARGE_CACHE,
                conservative=True,
                label=f"large-cache warps={target}",
            )
            lc_cycles = time_version(
                spec, arch, lc_version, CacheConfig.LARGE_CACHE
            ).cycles
            large = nvcc_cycles / lc_cycles
        except RealizeError:
            large = None
        rows.append(
            Table3Row(
                benchmark=spec.name,
                arch_name=arch.name,
                small_cache=nvcc_cycles / sc_cycles,
                large_cache=large,
            )
        )
    return rows


def render_table3(rows: list[Table3Row], arch_name: str) -> str:
    return format_table(
        ["benchmark", "small cache", "large cache"],
        [(r.benchmark, r.small_cache, r.large_cache) for r in rows],
        title=f"Table 3: speedup at Orion's occupancy, SC vs LC ({arch_name})",
    )
