"""Plain-text rendering of experiment results (tables and series).

The paper's artifacts are figures and tables; this module prints the
same rows/series as aligned ASCII so a terminal run of the benchmark
harness reads like the evaluation section.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    materialised = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(list(headers)))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in materialised)
    return "\n".join(out)


def format_series(
    xs: Sequence[float], ys: Sequence[float], x_label: str, y_label: str
) -> str:
    """Render an (x, y) series the way the paper's curve figures read."""
    header = f"{x_label:>10s}  {y_label}"
    lines = [header, "-" * len(header)]
    peak = max(ys) if ys else 1.0
    for x, y in zip(xs, ys):
        bar = "#" * max(1, round(30 * y / peak)) if peak else ""
        lines.append(f"{x:10.3f}  {y:8.3f}  {bar}")
    return "\n".join(lines)


def format_phase_report(
    timers=None,
    cache_stats=None,
    title: str = "Compilation phases",
) -> str:
    """Render the pipeline's phase timers plus compile-cache counters.

    ``timers`` defaults to the process-wide :data:`repro.perf.TIMERS`;
    ``cache_stats`` defaults to the default compile cache's counters.
    """
    from repro.perf import TIMERS, default_cache

    timers = TIMERS if timers is None else timers
    cache_stats = default_cache().stats if cache_stats is None else cache_stats
    snapshot = timers.snapshot()
    total = sum(stats.seconds for stats in snapshot.values())
    rows = [
        (
            name,
            stats.calls,
            stats.seconds,
            (100.0 * stats.seconds / total) if total else 0.0,
        )
        for name, stats in sorted(
            snapshot.items(), key=lambda item: -item[1].seconds
        )
    ]
    rows.append(("total", sum(s.calls for s in snapshot.values()), total, 100.0 if total else 0.0))
    table = format_table(
        ["phase", "calls", "seconds", "%"],
        [(n, c, f"{s:.3f}", f"{p:.1f}") for n, c, s, p in rows],
        title=title,
    )
    cache_line = (
        f"compile cache: {cache_stats.hits} hits "
        f"({cache_stats.memory_hits} memory, {cache_stats.disk_hits} disk), "
        f"{cache_stats.misses} misses, "
        f"hit rate {100.0 * cache_stats.hit_rate:.1f}%"
    )
    return table + "\n" + cache_line


def format_suite_report(
    rows: Iterable[tuple[str, object]],
    title: str = "Benchmark suite (execution engine)",
) -> str:
    """Render (benchmark, ExecutionReport) pairs the engine produced."""
    return format_table(
        ["benchmark", "final version", "total cycles", "iters", "converged @", "split"],
        [
            (
                name,
                report.final_label,
                report.total_cycles,
                len(report.records),
                report.iterations_to_converge,
                "yes" if report.was_split else "no",
            )
            for name, report in rows
        ],
        title=title,
    )


def format_telemetry_summary(hub, cache_stats=None) -> str:
    """Render a :class:`~repro.runtime.telemetry.TelemetryHub`'s event
    counts plus the measurement-cache counters — the engine-side twin
    of :func:`format_phase_report`."""
    rows = [
        (kind.value, count)
        for kind, count in sorted(hub.counts.items(), key=lambda kv: kv[0].value)
    ]
    table = format_table(["event", "count"], rows, title="Engine telemetry")
    if cache_stats is None:
        return table
    cache_line = (
        f"measurement cache: {cache_stats.hits} hits "
        f"({cache_stats.memory_hits} memory, {cache_stats.disk_hits} disk), "
        f"{cache_stats.misses} misses, "
        f"hit rate {100.0 * cache_stats.hit_rate:.1f}%"
    )
    return table + "\n" + cache_line


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
