"""Occupancy-headroom analysis (paper Section 4.2, closing discussion).

"In all four of these cases, performance as a function of occupancy
plateaus ... we can use this information for additional optimization.
For example, loop unrolling is a common technique which reduces branch
penalties, but may increase register pressure and therefore lower
occupancy.  By finding this range of similar occupancies, however, we
can determine the amount of leeway available with which to perform such
optimizations without experiencing slowdown."

:func:`occupancy_headroom` turns a sweep into exactly that report: the
plateau of occupancy levels performing within tolerance of the best,
the lowest level inside it, and the per-thread register / per-block
shared-memory budget an optimiser may additionally consume while
staying on the plateau.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.occupancy import max_regs_per_thread_for_warps
from repro.arch.specs import CacheConfig, GpuArchitecture
from repro.harness.experiments import SweepResult


@dataclass(frozen=True)
class HeadroomReport:
    """How much slack a kernel has for register-hungry optimisations."""

    benchmark: str
    best_warps: int
    #: lowest warp count performing within tolerance of the best
    lowest_equivalent_warps: int
    #: (occupancy, normalised runtime) of every plateau level
    plateau: tuple[tuple[float, float], ...]
    #: registers/thread the kernel uses at the best level
    registers_used: int
    #: registers/thread still available at the lowest equivalent level
    registers_available: int

    @property
    def extra_registers(self) -> int:
        """Leeway an optimiser (e.g. unrolling) may consume for free."""
        return max(0, self.registers_available - self.registers_used)

    @property
    def has_headroom(self) -> bool:
        return self.extra_registers > 0


def occupancy_headroom(
    sweep: SweepResult,
    arch: GpuArchitecture,
    block_size: int,
    tolerance: float = 0.05,
    cache_config: CacheConfig = CacheConfig.SMALL_CACHE,
) -> HeadroomReport:
    """Analyse a sweep for the paper's optimisation-leeway range."""
    if not sweep.points:
        raise ValueError("sweep has no points")
    best = sweep.best
    band = best.cycles * (1 + tolerance)
    plateau = [p for p in sweep.points if p.cycles <= band]
    lowest = min(plateau, key=lambda p: p.warps)
    available = max_regs_per_thread_for_warps(
        arch,
        block_size,
        lowest.warps,
        smem_per_block=lowest.version.smem_per_block - lowest.version.smem_padding
        if lowest.version is not None
        else 0,
        cache_config=cache_config,
    )
    return HeadroomReport(
        benchmark=sweep.benchmark,
        best_warps=best.warps,
        lowest_equivalent_warps=lowest.warps,
        plateau=tuple(
            (p.occupancy, p.cycles / best.cycles) for p in plateau
        ),
        registers_used=(
            best.version.regs_per_thread if best.version is not None else 0
        ),
        registers_available=available or 0,
    )
