"""repro — a full reproduction of *Orion: A Framework for GPU Occupancy
Tuning* (Hayes, Li, Chavarria, Song, Zhang; Middleware 2016).

The package is organised like the system the paper describes:

* :mod:`repro.arch` — GPU architecture descriptors and the occupancy
  calculator (paper Section 2).
* :mod:`repro.isa` — the ORAS virtual GPU ISA with an assembler,
  disassembler, and binary codec (the asfermi-style front/back end).
* :mod:`repro.ir` — CFG, call graph, pruned SSA, liveness, interference.
* :mod:`repro.regalloc` — the Fig. 4 multi-class Chaitin–Briggs
  allocator, spilling, shared-memory promotion, and the compressible
  stack with Kuhn–Munkres movement minimisation (Section 3.2).
* :mod:`repro.compiler` — occupancy realisation, compile-time tuning
  (Fig. 8), and multi-version binary generation (Section 3.3).
* :mod:`repro.runtime` — dynamic occupancy adaptation (Fig. 9) and
  kernel splitting (Section 3.4).
* :mod:`repro.sim` — the execution substrate: a functional interpreter
  plus an event-driven SM timing/energy simulator standing in for the
  paper's GTX680 and Tesla C2075.
* :mod:`repro.bench` — the twelve Table-2 benchmarks (plus matrixMul and
  imageDenoising) as ORAS programs.
* :mod:`repro.harness` — one entry point per paper table and figure.
"""

__version__ = "1.0.0"
