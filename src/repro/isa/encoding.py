"""Binary codec for ORAS modules — Orion's front- and back-end substrate.

The paper's Orion operates directly on SASS *binaries*: a front end
decodes the binary to assembly (via an asfermi-style ISA description)
and a back end re-encodes the transformed assembly.  This module plays
that role for ORAS: :func:`encode_module` serialises a
:class:`~repro.ir.function.Module` to bytes and :func:`decode_module`
losslessly reverses it.

Layout (little-endian):

* header: magic ``ORAS``, version u16, function count u16, module name;
* per function: header (flags, args, shared bytes), block label table,
  then a stream of variable-length instruction records.  Branch targets
  and callees are stored as indices into the block/function tables, so a
  decoded module is structurally identical to the encoded one.
"""

from __future__ import annotations

import struct

from repro.ir.function import Function, Module
from repro.isa.instructions import (
    CmpOp,
    Imm,
    Instruction,
    MemSpace,
    Opcode,
    Operand,
)
from repro.isa.registers import PhysReg, SpecialReg, VirtualReg

MAGIC = b"ORAS"
VERSION = 2


class CodecError(ValueError):
    """Raised when a byte stream is not a valid ORAS binary."""


_OPCODES = list(Opcode)
_OPCODE_INDEX = {op: i for i, op in enumerate(_OPCODES)}
_SPACES = list(MemSpace)
_SPACE_INDEX = {s: i for i, s in enumerate(_SPACES)}
_CMPS = list(CmpOp)
_CMP_INDEX = {c: i for i, c in enumerate(_CMPS)}
_SPECIALS = list(SpecialReg)
_SPECIAL_INDEX = {s: i for i, s in enumerate(_SPECIALS)}

_TAG_VREG = 0
_TAG_PREG = 1
_TAG_SPECIAL = 2
_TAG_IMM_INT = 3
_TAG_IMM_FLOAT = 4

_NONE_U8 = 0xFF
_NONE_U16 = 0xFFFF


class _Writer:
    def __init__(self) -> None:
        self._chunks: list[bytes] = []

    def u8(self, v: int) -> None:
        self._chunks.append(struct.pack("<B", v))

    def u16(self, v: int) -> None:
        self._chunks.append(struct.pack("<H", v))

    def u32(self, v: int) -> None:
        self._chunks.append(struct.pack("<I", v))

    def i32(self, v: int) -> None:
        self._chunks.append(struct.pack("<i", v))

    def i64(self, v: int) -> None:
        self._chunks.append(struct.pack("<q", v))

    def f64(self, v: float) -> None:
        self._chunks.append(struct.pack("<d", v))

    def text(self, s: str) -> None:
        raw = s.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise CodecError("string too long")
        self.u16(len(raw))
        self._chunks.append(raw)

    def bytes(self) -> bytes:
        return b"".join(self._chunks)


class _Reader:
    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise CodecError("truncated binary")
        chunk = self._data[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def u8(self) -> int:
        return struct.unpack("<B", self._take(1))[0]

    def u16(self) -> int:
        return struct.unpack("<H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self._take(4))[0]

    def i32(self) -> int:
        return struct.unpack("<i", self._take(4))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def text(self) -> str:
        n = self.u16()
        return self._take(n).decode("utf-8")

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._data)


def _encode_operand(w: _Writer, op: Operand) -> None:
    if isinstance(op, VirtualReg):
        w.u8(_TAG_VREG)
        w.u32(op.index)
        w.u8(op.width)
    elif isinstance(op, PhysReg):
        w.u8(_TAG_PREG)
        w.u32(op.index)
        w.u8(op.width)
    elif isinstance(op, SpecialReg):
        w.u8(_TAG_SPECIAL)
        w.u8(_SPECIAL_INDEX[op])
    elif isinstance(op, Imm):
        if isinstance(op.value, float):
            w.u8(_TAG_IMM_FLOAT)
            w.f64(op.value)
        else:
            w.u8(_TAG_IMM_INT)
            w.i64(op.value)
    else:
        raise CodecError(f"cannot encode operand {op!r}")


def _decode_operand(r: _Reader) -> Operand:
    tag = r.u8()
    if tag == _TAG_VREG:
        index = r.u32()
        return VirtualReg(index, r.u8())
    if tag == _TAG_PREG:
        index = r.u32()
        return PhysReg(index, r.u8())
    if tag == _TAG_SPECIAL:
        return _SPECIALS[r.u8()]
    if tag == _TAG_IMM_INT:
        return Imm(r.i64())
    if tag == _TAG_IMM_FLOAT:
        return Imm(r.f64())
    raise CodecError(f"unknown operand tag {tag}")


def _encode_instruction(
    w: _Writer,
    inst: Instruction,
    block_index: dict[str, int],
    func_index: dict[str, int],
) -> None:
    w.u8(_OPCODE_INDEX[inst.opcode])
    if inst.dst is None:
        w.u8(0)
    else:
        w.u8(1)
        _encode_operand(w, inst.dst)
    w.u8(len(inst.srcs))
    for src in inst.srcs:
        _encode_operand(w, src)
    w.u8(_SPACE_INDEX[inst.space] if inst.space is not None else _NONE_U8)
    w.i32(inst.offset)
    w.u8(_CMP_INDEX[inst.cmp] if inst.cmp is not None else _NONE_U8)
    w.u8(len(inst.targets))
    for target in inst.targets:
        if target not in block_index:
            raise CodecError(f"branch to unknown block {target!r}")
        w.u16(block_index[target])
    if inst.callee is not None:
        if inst.callee not in func_index:
            raise CodecError(f"call to unknown function {inst.callee!r}")
        w.u16(func_index[inst.callee])
    else:
        w.u16(_NONE_U16)
    w.u8(_SPECIAL_INDEX[inst.special] if inst.special is not None else _NONE_U8)
    w.u8(len(inst.phi_args))
    for block, op in inst.phi_args:
        w.u16(block_index[block])
        _encode_operand(w, op)


def _decode_instruction(
    r: _Reader, block_names: list[str], func_names: list[str]
) -> Instruction:
    opcode = _OPCODES[r.u8()]
    dst = None
    if r.u8():
        decoded = _decode_operand(r)
        if not isinstance(decoded, (VirtualReg, PhysReg)):
            raise CodecError("instruction destination must be a register")
        dst = decoded
    srcs = [_decode_operand(r) for _ in range(r.u8())]
    space_idx = r.u8()
    space = _SPACES[space_idx] if space_idx != _NONE_U8 else None
    offset = r.i32()
    cmp_idx = r.u8()
    cmp = _CMPS[cmp_idx] if cmp_idx != _NONE_U8 else None
    targets = [block_names[r.u16()] for _ in range(r.u8())]
    callee_idx = r.u16()
    callee = func_names[callee_idx] if callee_idx != _NONE_U16 else None
    special_idx = r.u8()
    special = _SPECIALS[special_idx] if special_idx != _NONE_U8 else None
    phi_args = []
    for _ in range(r.u8()):
        block = block_names[r.u16()]
        phi_args.append((block, _decode_operand(r)))
    return Instruction(
        opcode=opcode,
        dst=dst,
        srcs=srcs,
        space=space,
        offset=offset,
        cmp=cmp,
        targets=targets,
        callee=callee,
        special=special,
        phi_args=phi_args,
    )


def encode_module(module: Module) -> bytes:
    """Serialise a module to an ORAS binary."""
    w = _Writer()
    w._chunks.append(MAGIC)
    w.u16(VERSION)
    w.text(module.name)
    functions = list(module.functions.values())
    func_index = {fn.name: i for i, fn in enumerate(functions)}
    w.u16(len(functions))
    # Function name table first, so calls can reference any function
    # regardless of definition order.
    for fn in functions:
        w.text(fn.name)
    for fn in functions:
        flags = (1 if fn.is_kernel else 0) | (2 if fn.returns_value else 0)
        w.u8(flags)
        w.u16(fn.num_args)
        w.u32(fn.shared_bytes)
        order = fn.block_order
        block_index = {label: i for i, label in enumerate(order)}
        w.u16(len(order))
        for label in order:
            w.text(label)
            w.u32(len(fn.blocks[label].instructions))
        for label in order:
            for inst in fn.blocks[label].instructions:
                _encode_instruction(w, inst, block_index, func_index)
    return w.bytes()


def decode_module(data: bytes) -> Module:
    """Decode an ORAS binary back into a module."""
    r = _Reader(data)
    if r._take(4) != MAGIC:
        raise CodecError("bad magic; not an ORAS binary")
    version = r.u16()
    if version != VERSION:
        raise CodecError(f"unsupported ORAS version {version}")
    module = Module(r.text())
    num_functions = r.u16()
    func_names = [r.text() for _ in range(num_functions)]
    headers: list[Function] = []
    for name in func_names:
        flags = r.u8()
        num_args = r.u16()
        shared_bytes = r.u32()
        fn = Function(
            name,
            is_kernel=bool(flags & 1),
            num_args=num_args,
            shared_bytes=shared_bytes,
            returns_value=bool(flags & 2),
        )
        blocks = [(r.text(), r.u32()) for _ in range(r.u16())]
        block_names = [label for label, _ in blocks]
        for label, count in blocks:
            block = fn.add_block(label)
            for _ in range(count):
                block.append(_decode_instruction(r, block_names, func_names))
        headers.append(fn)
        module.add(fn)
    if not r.exhausted:
        raise CodecError("trailing bytes after module")
    for fn in headers:
        top = max(
            (reg.index + 1 for reg in fn.all_regs() if isinstance(reg, VirtualReg)),
            default=0,
        )
        fn.reserve_vregs(top)
    return module
