"""Textual assembly (ORAS) — printer and parser.

Orion's front end turns a decoded binary into assembly text before
lifting it to IR; its back end prints transformed IR back out.  This
module is that text layer.  The format round-trips exactly:
``parse_module(format_module(m))`` reproduces ``m`` structurally.

Example::

    .module saxpy
    .kernel saxpy_kernel shared=0
    BB0:
        S2R %v0, %tid
        LD.param %v1, [0]
        LD.global %v2.w2, [%v0+8]
        FFMA %v3, %v2.w2, %v1, %v2.w2
        ST.global [%v0+8], %v3
        EXIT
    .end
"""

from __future__ import annotations

import re

from repro.ir.function import BasicBlock, Function, Module
from repro.isa.instructions import (
    CmpOp,
    Imm,
    Instruction,
    MemSpace,
    Opcode,
    Operand,
)
from repro.isa.registers import PhysReg, Reg, SpecialReg, VirtualReg


class AsmError(ValueError):
    """Raised on malformed assembly text."""


# ----------------------------------------------------------------------
# Formatting
# ----------------------------------------------------------------------
def _format_operand(op: Operand) -> str:
    if isinstance(op, (VirtualReg, PhysReg)):
        return str(op)
    if isinstance(op, SpecialReg):
        return f"%{op.value}"
    if isinstance(op, Imm):
        if isinstance(op.value, float):
            text = repr(op.value)
            return text if ("." in text or "e" in text or "inf" in text) else text + ".0"
        return str(op.value)
    raise TypeError(f"unknown operand {op!r}")


def _format_addr(inst: Instruction, base: Reg | None) -> str:
    if base is None:
        return f"[{inst.offset}]"
    if inst.offset:
        sign = "+" if inst.offset > 0 else "-"
        return f"[{_format_operand(base)}{sign}{abs(inst.offset)}]"
    return f"[{_format_operand(base)}]"


def format_instruction(inst: Instruction) -> str:
    """One instruction as assembly text (no indentation)."""
    op = inst.opcode
    if op is Opcode.S2R:
        return f"S2R {_format_operand(inst.dst)}, %{inst.special.value}"
    if op in (Opcode.ISET, Opcode.FSET):
        name = f"{op.value.upper()}.{inst.cmp.value}"
        srcs = ", ".join(_format_operand(s) for s in inst.srcs)
        return f"{name} {_format_operand(inst.dst)}, {srcs}"
    if op is Opcode.LD:
        base = inst.srcs[0] if inst.srcs else None
        return (
            f"LD.{inst.space.value} {_format_operand(inst.dst)}, "
            f"{_format_addr(inst, base)}"
        )
    if op is Opcode.ST:
        value = inst.srcs[0]
        base = inst.srcs[1] if len(inst.srcs) > 1 else None
        return (
            f"ST.{inst.space.value} {_format_addr(inst, base)}, "
            f"{_format_operand(value)}"
        )
    if op is Opcode.BRA:
        return f"BRA {inst.targets[0]}"
    if op is Opcode.CBR:
        return (
            f"CBR {_format_operand(inst.srcs[0])}, "
            f"{inst.targets[0]}, {inst.targets[1]}"
        )
    if op is Opcode.CALL:
        args = ", ".join(_format_operand(s) for s in inst.srcs)
        callsite = f"{inst.callee}({args})"
        if inst.dst is not None:
            return f"CALL {_format_operand(inst.dst)}, {callsite}"
        return f"CALL {callsite}"
    if op is Opcode.RET:
        if inst.srcs:
            return f"RET {_format_operand(inst.srcs[0])}"
        return "RET"
    if op in (Opcode.EXIT, Opcode.BAR, Opcode.NOP):
        return op.value.upper()
    if op is Opcode.PHI:
        args = ", ".join(
            f"[{block}: {_format_operand(value)}]"
            for block, value in inst.phi_args
        )
        return f"PHI {_format_operand(inst.dst)}, {args}"
    # Generic ALU form: OP dst, srcs...
    parts = [_format_operand(inst.dst)] if inst.dst is not None else []
    parts.extend(_format_operand(s) for s in inst.srcs)
    return f"{op.value.upper()} {', '.join(parts)}"


def format_function(fn: Function) -> str:
    head = ".kernel" if fn.is_kernel else ".func"
    attrs = [fn.name]
    if fn.is_kernel:
        attrs.append(f"shared={fn.shared_bytes}")
    else:
        attrs.append(f"args={fn.num_args}")
        attrs.append(f"returns={1 if fn.returns_value else 0}")
    lines = [f"{head} {' '.join(attrs)}"]
    for block in fn.ordered_blocks():
        lines.append(f"{block.label}:")
        lines.extend(f"    {format_instruction(i)}" for i in block.instructions)
    lines.append(".end")
    return "\n".join(lines)


def format_module(module: Module) -> str:
    parts = [f".module {module.name}"]
    parts.extend(format_function(fn) for fn in module.functions.values())
    return "\n\n".join(parts) + "\n"


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
_REG_RE = re.compile(r"^%v(\d+)(?:\.w(\d))?$")
_PHYS_RE = re.compile(r"^R(\d+)(?:\.w(\d))?$")
_ADDR_RE = re.compile(r"^\[([^\]+-]+)?(?:([+-])(\d+))?\]$|^\[(-?\d+)\]$")
_SPECIALS = {f"%{s.value}": s for s in SpecialReg}
_CALL_RE = re.compile(r"^(\w+)\((.*)\)$")
_PHI_ARG_RE = re.compile(r"^\[(\w+):\s*(.+)\]$")


def _parse_operand(text: str) -> Operand:
    text = text.strip()
    if text in _SPECIALS:
        return _SPECIALS[text]
    m = _REG_RE.match(text)
    if m:
        return VirtualReg(int(m.group(1)), int(m.group(2) or 1))
    m = _PHYS_RE.match(text)
    if m:
        return PhysReg(int(m.group(1)), int(m.group(2) or 1))
    try:
        if "." in text or "e" in text or "inf" in text or "nan" in text:
            return Imm(float(text))
        return Imm(int(text, 0))
    except ValueError as exc:
        raise AsmError(f"cannot parse operand {text!r}") from exc


def _parse_addr(text: str) -> tuple[Reg | None, int]:
    text = text.strip()
    if not (text.startswith("[") and text.endswith("]")):
        raise AsmError(f"expected address operand, got {text!r}")
    inner = text[1:-1].strip()
    # Pure-offset form: [123] or [-4]
    if re.fullmatch(r"-?\d+", inner):
        return None, int(inner)
    m = re.fullmatch(r"([^+\-\s]+)\s*(?:([+-])\s*(\d+))?", inner)
    if not m:
        raise AsmError(f"cannot parse address {text!r}")
    base = _parse_operand(m.group(1))
    if not isinstance(base, (VirtualReg, PhysReg)):
        raise AsmError(f"address base must be a register in {text!r}")
    offset = 0
    if m.group(2):
        offset = int(m.group(3))
        if m.group(2) == "-":
            offset = -offset
    return base, offset


def _split_commas(text: str) -> list[str]:
    """Split on commas not inside brackets or parens."""
    parts, depth, current = [], 0, []
    for ch in text:
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def parse_instruction(line: str) -> Instruction:
    """Parse one assembly line into an :class:`Instruction`."""
    line = line.split("#", 1)[0].strip()
    if not line:
        raise AsmError("empty instruction line")
    mnemonic, _, rest = line.partition(" ")
    rest = rest.strip()
    parts = _split_commas(rest) if rest else []
    name, _, suffix = mnemonic.partition(".")
    name = name.upper()

    if name == "S2R":
        dst = _parse_operand(parts[0])
        special = _SPECIALS.get(parts[1].strip())
        if special is None:
            raise AsmError(f"unknown special register {parts[1]!r}")
        return Instruction(Opcode.S2R, dst=dst, special=special)

    if name in ("ISET", "FSET"):
        cmp = CmpOp(suffix.lower())
        dst = _parse_operand(parts[0])
        return Instruction(
            Opcode[name],
            dst=dst,
            srcs=[_parse_operand(p) for p in parts[1:]],
            cmp=cmp,
        )

    if name == "LD":
        space = MemSpace(suffix.lower())
        dst = _parse_operand(parts[0])
        base, offset = _parse_addr(parts[1])
        srcs: list[Operand] = [base] if base is not None else []
        return Instruction(Opcode.LD, dst=dst, srcs=srcs, space=space, offset=offset)

    if name == "ST":
        space = MemSpace(suffix.lower())
        base, offset = _parse_addr(parts[0])
        value = _parse_operand(parts[1])
        srcs = [value] + ([base] if base is not None else [])
        return Instruction(Opcode.ST, srcs=srcs, space=space, offset=offset)

    if name == "BRA":
        return Instruction(Opcode.BRA, targets=[parts[0]])

    if name == "CBR":
        return Instruction(
            Opcode.CBR,
            srcs=[_parse_operand(parts[0])],
            targets=[parts[1], parts[2]],
        )

    if name == "CALL":
        dst: Reg | None = None
        callsite = parts[-1]
        if len(parts) == 2:
            parsed = _parse_operand(parts[0])
            if not isinstance(parsed, (VirtualReg, PhysReg)):
                raise AsmError("CALL destination must be a register")
            dst = parsed
        m = _CALL_RE.match(callsite)
        if not m:
            raise AsmError(f"cannot parse call site {callsite!r}")
        callee, argtext = m.group(1), m.group(2).strip()
        args = [_parse_operand(a) for a in _split_commas(argtext)] if argtext else []
        return Instruction(Opcode.CALL, dst=dst, srcs=args, callee=callee)

    if name == "RET":
        srcs = [_parse_operand(parts[0])] if parts else []
        return Instruction(Opcode.RET, srcs=srcs)

    if name in ("EXIT", "BAR", "NOP"):
        return Instruction(Opcode[name])

    if name == "PHI":
        dst = _parse_operand(parts[0])
        phi_args: list[tuple[str, Operand]] = []
        for arg in parts[1:]:
            m = _PHI_ARG_RE.match(arg.strip())
            if not m:
                raise AsmError(f"cannot parse phi arg {arg!r}")
            phi_args.append((m.group(1), _parse_operand(m.group(2))))
        return Instruction(Opcode.PHI, dst=dst, phi_args=phi_args)

    try:
        opcode = Opcode[name]
    except KeyError as exc:
        raise AsmError(f"unknown mnemonic {name!r}") from exc
    if not parts:
        return Instruction(opcode)
    dst = _parse_operand(parts[0])
    if not isinstance(dst, (VirtualReg, PhysReg)):
        raise AsmError(f"{name} destination must be a register")
    return Instruction(opcode, dst=dst, srcs=[_parse_operand(p) for p in parts[1:]])


_FUNC_HEAD_RE = re.compile(
    r"^\.(kernel|func)\s+(\w+)((?:\s+\w+=\d+)*)\s*$"
)
_ATTR_RE = re.compile(r"(\w+)=(\d+)")


def parse_module(text: str) -> Module:
    """Parse a full ``.module`` document."""
    module: Module | None = None
    fn: Function | None = None
    block: BasicBlock | None = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            if line.startswith(".module"):
                module = Module(line.split(None, 1)[1].strip())
            elif line.startswith((".kernel", ".func")):
                if module is None:
                    module = Module("module")
                m = _FUNC_HEAD_RE.match(line)
                if not m:
                    raise AsmError(f"bad function header: {line!r}")
                kind, name, attrtext = m.groups()
                attrs = {k: int(v) for k, v in _ATTR_RE.findall(attrtext or "")}
                fn = Function(
                    name,
                    is_kernel=(kind == "kernel"),
                    num_args=attrs.get("args", 0),
                    shared_bytes=attrs.get("shared", 0),
                    returns_value=bool(attrs.get("returns", 0)),
                )
                module.add(fn)
                block = None
            elif line == ".end":
                fn = None
                block = None
            elif line.endswith(":"):
                if fn is None:
                    raise AsmError("block label outside a function")
                block = fn.add_block(line[:-1])
            else:
                if fn is None or block is None:
                    raise AsmError(f"instruction outside a block: {line!r}")
                block.append(parse_instruction(line))
        except AsmError as exc:
            raise AsmError(f"line {lineno}: {exc}") from exc

    if module is None:
        raise AsmError("no .module found")
    for function in module.functions.values():
        top = max(
            (r.index + 1 for r in function.all_regs() if isinstance(r, VirtualReg)),
            default=0,
        )
        function.reserve_vregs(top)
    return module
