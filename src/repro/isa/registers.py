"""Register model for the ORAS virtual GPU ISA.

Two register kinds exist:

* :class:`VirtualReg` — compiler-internal names of unbounded supply, each
  with a *width* in 32-bit slots (1, 2, 3 or 4, i.e. 32/64/96/128-bit —
  the "wide variables" of paper Section 3.2 that require consecutive,
  aligned physical registers).
* :class:`PhysReg` — machine registers ``R0..R62``.  A wide value is
  named by its base register and occupies ``width`` consecutive slots.

Special (read-only) registers expose the thread's coordinates, mirroring
SASS's S2R sources.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SpecialReg(enum.Enum):
    """Hardware-provided read-only values."""

    TID = "tid"  # thread index within the block
    CTAID = "ctaid"  # block index within the grid
    NTID = "ntid"  # block size (threads per block)
    NCTAID = "nctaid"  # grid size (blocks per grid)
    LANEID = "laneid"  # thread index within the warp
    WARPID = "warpid"  # warp index within the block


@dataclass(frozen=True, order=True)
class VirtualReg:
    """An SSA-ready virtual register: a name plus a width in 32-bit slots."""

    index: int
    width: int = 1

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("virtual register index must be non-negative")
        if self.width not in (1, 2, 3, 4):
            raise ValueError("width must be 1..4 32-bit slots")

    def __str__(self) -> str:
        suffix = "" if self.width == 1 else f".w{self.width}"
        return f"%v{self.index}{suffix}"


@dataclass(frozen=True, order=True)
class PhysReg:
    """A physical register, named by its base slot index.

    ``width`` slots starting at ``index`` belong to this value.  Wide
    values must be aligned: ``index`` is a multiple of a power-of-two
    alignment derived from the width (2 for 64-bit, 4 for 96/128-bit),
    matching the paper's "aligned, consecutive 32-bit registers".
    """

    index: int
    width: int = 1

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError("physical register index must be non-negative")
        if self.width not in (1, 2, 3, 4):
            raise ValueError("width must be 1..4 32-bit slots")

    @property
    def slots(self) -> range:
        return range(self.index, self.index + self.width)

    def __str__(self) -> str:
        suffix = "" if self.width == 1 else f".w{self.width}"
        return f"R{self.index}{suffix}"


Reg = VirtualReg | PhysReg


def reg_sort_key(reg: Reg) -> tuple[int, int, int]:
    """Stable total order over registers (virtual before physical).

    Whenever a ``set[Reg]`` must be materialised into an ordering
    (colouring stacks, cluster members, test output), sorting by this
    key keeps the result independent of set iteration order and hash
    seed, which keeps allocation output reproducible bit-for-bit.
    """
    return (0 if isinstance(reg, VirtualReg) else 1, reg.index, reg.width)


def required_alignment(width: int) -> int:
    """Alignment (in slots) a value of ``width`` slots must start at."""
    if width == 1:
        return 1
    if width == 2:
        return 2
    if width in (3, 4):
        return 4
    raise ValueError("width must be 1..4 32-bit slots")


def is_aligned(index: int, width: int) -> bool:
    """Whether a base slot index satisfies the width's alignment rule."""
    return index % required_alignment(width) == 0
