"""ORAS: the virtual GPU instruction set (registers, instructions, text, codec)."""

from repro.isa.instructions import (
    CmpOp,
    FuncUnit,
    Imm,
    Instruction,
    MemSpace,
    Opcode,
    Operand,
)
from repro.isa.registers import (
    PhysReg,
    Reg,
    SpecialReg,
    VirtualReg,
    is_aligned,
    required_alignment,
)

__all__ = [
    "CmpOp",
    "FuncUnit",
    "Imm",
    "Instruction",
    "MemSpace",
    "Opcode",
    "Operand",
    "PhysReg",
    "Reg",
    "SpecialReg",
    "VirtualReg",
    "is_aligned",
    "required_alignment",
]
