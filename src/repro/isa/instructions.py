"""Instruction model for the ORAS virtual GPU ISA.

The ISA is deliberately SASS-flavoured: three-address arithmetic over
32-bit register slots, wide (multi-slot) values, explicit memory spaces
(global / shared / local / param), barriers, and function calls (device
functions are *not* always inlined — the paper leans on this: even after
aggressive inlining, cfd retains 36 static calls, and intrinsics such as
floating-point division compile to calls).

Instructions are mutable on purpose — the middle end rewrites operands in
place during SSA renaming and register allocation — but every container
copy is deep (:meth:`Instruction.copy`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.registers import PhysReg, Reg, SpecialReg, VirtualReg


class MemSpace(enum.Enum):
    """Address spaces a load/store can touch."""

    GLOBAL = "global"
    SHARED = "shared"
    LOCAL = "local"  # thread-private; spill target; L1-cached
    PARAM = "param"  # kernel arguments (read-only)


class FuncUnit(enum.Enum):
    """Which pipeline an opcode occupies (drives simulator latency)."""

    ALU = "alu"
    SFU = "sfu"
    MEM = "mem"
    SMEM = "smem"
    CTRL = "ctrl"
    SYNC = "sync"


class CmpOp(enum.Enum):
    LT = "lt"
    LE = "le"
    EQ = "eq"
    NE = "ne"
    GT = "gt"
    GE = "ge"


class Opcode(enum.Enum):
    # Data movement
    MOV = "mov"
    SELP = "selp"  # dst = src0 ? src1 : src2
    S2R = "s2r"  # read special register
    I2F = "i2f"
    F2I = "f2i"
    # Integer ALU
    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    IMAD = "imad"  # dst = src0 * src1 + src2
    IMIN = "imin"
    IMAX = "imax"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    # Float ALU
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FFMA = "ffma"  # dst = src0 * src1 + src2
    FMIN = "fmin"
    FMAX = "fmax"
    # Special-function unit
    FDIV = "fdiv"
    FRCP = "frcp"
    FSQRT = "fsqrt"
    FEXP = "fexp"
    FLOG = "flog"
    FSIN = "fsin"
    # Comparisons (dst gets integer 0/1)
    ISET = "iset"
    FSET = "fset"
    # Memory
    LD = "ld"
    ST = "st"
    # Control
    BRA = "bra"
    CBR = "cbr"  # srcs[0] != 0 -> targets[0], else targets[1]
    CALL = "call"
    RET = "ret"
    EXIT = "exit"
    BAR = "bar"  # block-wide barrier
    NOP = "nop"
    PHI = "phi"  # SSA-only pseudo-instruction


#: Opcodes that end a basic block.
TERMINATORS = frozenset({Opcode.BRA, Opcode.CBR, Opcode.RET, Opcode.EXIT})

_THREE_SRC = frozenset({Opcode.IMAD, Opcode.FFMA, Opcode.SELP})
_TWO_SRC = frozenset(
    {
        Opcode.IADD,
        Opcode.ISUB,
        Opcode.IMUL,
        Opcode.IMIN,
        Opcode.IMAX,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FMIN,
        Opcode.FMAX,
        Opcode.FDIV,
        Opcode.ISET,
        Opcode.FSET,
    }
)
_ONE_SRC = frozenset(
    {
        Opcode.MOV,
        Opcode.I2F,
        Opcode.F2I,
        Opcode.FRCP,
        Opcode.FSQRT,
        Opcode.FEXP,
        Opcode.FLOG,
        Opcode.FSIN,
    }
)

_SFU_OPS = frozenset(
    {Opcode.FDIV, Opcode.FRCP, Opcode.FSQRT, Opcode.FEXP, Opcode.FLOG, Opcode.FSIN}
)


@dataclass(frozen=True)
class Imm:
    """An immediate operand (int or float)."""

    value: int | float

    def __str__(self) -> str:
        return repr(self.value)


Operand = Reg | SpecialReg | Imm


@dataclass
class Instruction:
    """One ORAS instruction.

    ``targets`` holds basic-block labels for branches; ``callee`` names a
    device function for :data:`Opcode.CALL`; ``space``/``offset`` qualify
    memory operations (effective address = value(srcs' base) + offset).
    ``phi_args`` pairs predecessor-block labels with incoming operands
    and is only populated for :data:`Opcode.PHI`.
    """

    opcode: Opcode
    dst: Reg | None = None
    srcs: list[Operand] = field(default_factory=list)
    space: MemSpace | None = None
    offset: int = 0
    cmp: CmpOp | None = None
    targets: list[str] = field(default_factory=list)
    callee: str | None = None
    special: SpecialReg | None = None
    phi_args: list[tuple[str, Operand]] = field(default_factory=list)

    # Simulator-side caches (class attributes, NOT dataclass fields:
    # they must stay out of __init__/__eq__/__repr__).  Both depend
    # purely on ``opcode`` — never on operands — so they cannot go
    # stale under operand mutation by the allocator.
    _exec_plan = None  # repro.sim.interp dispatch plan
    _trace_event = None  # repro.sim.trace (TraceEvent, flat code) pair

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LD, Opcode.ST)

    @property
    def is_call(self) -> bool:
        return self.opcode is Opcode.CALL

    @property
    def func_unit(self) -> FuncUnit:
        if self.opcode in _SFU_OPS:
            return FuncUnit.SFU
        if self.is_memory:
            if self.space in (MemSpace.SHARED,):
                return FuncUnit.SMEM
            return FuncUnit.MEM
        if self.opcode is Opcode.BAR:
            return FuncUnit.SYNC
        if self.opcode in TERMINATORS or self.is_call:
            return FuncUnit.CTRL
        return FuncUnit.ALU

    def regs_read(self) -> list[Reg]:
        """Registers this instruction reads, in operand order."""
        read: list[Reg] = [
            s for s in self.srcs if isinstance(s, (VirtualReg, PhysReg))
        ]
        if self.opcode is Opcode.PHI:
            read.extend(
                op
                for _, op in self.phi_args
                if isinstance(op, (VirtualReg, PhysReg))
            )
        return read

    def regs_written(self) -> list[Reg]:
        return [self.dst] if self.dst is not None else []

    def operands_read(self) -> list[Operand]:
        ops: list[Operand] = list(self.srcs)
        if self.opcode is Opcode.PHI:
            ops.extend(op for _, op in self.phi_args)
        return ops

    # ------------------------------------------------------------------
    # Rewriting
    # ------------------------------------------------------------------
    def replace_reg_uses(self, mapping: dict[Reg, Operand]) -> None:
        """Rewrite every read of a register per ``mapping`` (in place)."""
        self.srcs = [
            mapping.get(s, s) if isinstance(s, (VirtualReg, PhysReg)) else s
            for s in self.srcs
        ]
        if self.opcode is Opcode.PHI:
            self.phi_args = [
                (
                    block,
                    mapping.get(op, op)
                    if isinstance(op, (VirtualReg, PhysReg))
                    else op,
                )
                for block, op in self.phi_args
            ]

    def copy(self) -> "Instruction":
        return Instruction(
            opcode=self.opcode,
            dst=self.dst,
            srcs=list(self.srcs),
            space=self.space,
            offset=self.offset,
            cmp=self.cmp,
            targets=list(self.targets),
            callee=self.callee,
            special=self.special,
            phi_args=list(self.phi_args),
        )

    def __str__(self) -> str:
        from repro.isa.assembly import format_instruction

        return format_instruction(self)


# ----------------------------------------------------------------------
# Convenience constructors (keep benchmark/kernel builders readable)
# ----------------------------------------------------------------------
def mov(dst: Reg, src: Operand) -> Instruction:
    return Instruction(Opcode.MOV, dst=dst, srcs=[src])


def s2r(dst: Reg, special: SpecialReg) -> Instruction:
    return Instruction(Opcode.S2R, dst=dst, special=special)


def binary(opcode: Opcode, dst: Reg, a: Operand, b: Operand) -> Instruction:
    if opcode not in _TWO_SRC:
        raise ValueError(f"{opcode} is not a two-source opcode")
    return Instruction(opcode, dst=dst, srcs=[a, b])


def ternary(
    opcode: Opcode, dst: Reg, a: Operand, b: Operand, c: Operand
) -> Instruction:
    if opcode not in _THREE_SRC:
        raise ValueError(f"{opcode} is not a three-source opcode")
    return Instruction(opcode, dst=dst, srcs=[a, b, c])


def unary(opcode: Opcode, dst: Reg, a: Operand) -> Instruction:
    if opcode not in _ONE_SRC:
        raise ValueError(f"{opcode} is not a one-source opcode")
    return Instruction(opcode, dst=dst, srcs=[a])


def iset(dst: Reg, cmp: CmpOp, a: Operand, b: Operand) -> Instruction:
    return Instruction(Opcode.ISET, dst=dst, srcs=[a, b], cmp=cmp)


def fset(dst: Reg, cmp: CmpOp, a: Operand, b: Operand) -> Instruction:
    return Instruction(Opcode.FSET, dst=dst, srcs=[a, b], cmp=cmp)


def load(
    dst: Reg, space: MemSpace, base: Reg | None = None, offset: int = 0
) -> Instruction:
    srcs: list[Operand] = [base] if base is not None else []
    return Instruction(Opcode.LD, dst=dst, srcs=srcs, space=space, offset=offset)


def store(
    space: MemSpace, value: Operand, base: Reg | None = None, offset: int = 0
) -> Instruction:
    srcs: list[Operand] = [value]
    if base is not None:
        srcs.append(base)
    return Instruction(Opcode.ST, srcs=srcs, space=space, offset=offset)


def bra(target: str) -> Instruction:
    return Instruction(Opcode.BRA, targets=[target])


def cbr(cond: Operand, taken: str, not_taken: str) -> Instruction:
    return Instruction(Opcode.CBR, srcs=[cond], targets=[taken, not_taken])


def call(
    callee: str, args: list[Operand] | None = None, dst: Reg | None = None
) -> Instruction:
    return Instruction(Opcode.CALL, dst=dst, srcs=list(args or []), callee=callee)


def ret(value: Operand | None = None) -> Instruction:
    return Instruction(Opcode.RET, srcs=[value] if value is not None else [])


def exit_() -> Instruction:
    return Instruction(Opcode.EXIT)


def bar() -> Instruction:
    return Instruction(Opcode.BAR)


def phi(dst: Reg, args: list[tuple[str, Operand]]) -> Instruction:
    return Instruction(Opcode.PHI, dst=dst, phi_args=list(args))
