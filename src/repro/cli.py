"""Command-line interface: ``python -m repro <command>``.

The paper's toolchain is driven from the shell (nvcc emits a binary,
Orion rewrites it, the runtime loads the multi-version result); this
CLI exposes the same workflow over ORAS files:

* ``asm``      — assemble ORAS text into a binary module;
* ``dis``      — disassemble a binary module back to text;
* ``compile``  — run the full Orion compiler, writing a multi-version
  binary and printing the candidate table;
* ``inspect``  — describe a multi-version binary;
* ``run``      — execute a kernel on the functional interpreter;
* ``fuzz``     — differential fuzzing: seeded random kernels through
  the whole pipeline, checked by the allocation-soundness verifier and
  the functional interpreter (see :mod:`repro.fuzz`);
* ``sweep``    — time every occupancy level through a backend;
* ``bench``    — drive the whole benchmark suite through the execution
  engine, scheduling the per-kernel tuning sessions concurrently;
  ``--report`` writes the versioned machine-readable bench report;
* ``trace``    — analyse a JSONL telemetry trace: ``summary``,
  ``filter``, ``diff``, ``export --format chrome`` (Perfetto), plus
  the distributed half — ``merge`` joins per-node trace files (or
  live ``--url`` fetches from daemons' ``/debug/trace``) by trace id
  into one cross-node timeline, and ``slow --top N`` ranks merged
  requests by latency;
* ``metrics``  — print the Prometheus-style text exposition of a bench
  report's embedded metrics snapshot, or scrape a live daemon's
  ``/metrics`` endpoint with ``--url``;
* ``serve``    — run the tuning daemon: a localhost socket service in
  front of a persistent tuning store (see :mod:`repro.service` and
  ``docs/service.md``); ``--ring`` joins a sharded/replicated daemon
  cluster, ``--http-port`` adds ``/metrics`` + ``/healthz`` +
  ``/debug/*`` over HTTP, ``--log-file`` writes the structured JSONL
  log;
* ``submit``   — tune a multi-version binary through the daemon (warm
  store hits skip measurement entirely), degrading to in-process
  tuning when the daemon is unreachable; ``--ring`` routes to the
  kernel's ring owner with failover;
* ``loadtest`` — drive concurrent tune requests across a daemon ring
  and report p50/p99 latency and the warm/cold source mix;
* ``store``    — inspect the persistent tuning store: ``stats``,
  ``gc`` (compact the log), ``export`` (dump live records as JSON).

``sweep``, ``bench`` and ``fuzz`` accept ``--trace`` (JSONL telemetry)
and ``--metrics`` (print the process metrics registry after the run);
``sweep`` and ``bench`` also accept ``--backend`` (timing simulator,
analytical MWP/CWP model, or functional interpreter).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.arch.specs import (
    GTX680,
    GTX980,
    GTX1080,
    TESLA_C2075,
    GpuArchitecture,
)
from repro.compiler.multiversion import MultiVersionBinary
from repro.compiler.pipeline import CompileOptions, compile_binary
from repro.fuzz.generator import SHAPES
from repro.harness.reporting import format_series, format_table
from repro.isa.assembly import format_module, parse_module
from repro.isa.encoding import decode_module, encode_module
from repro.regalloc.strategy import MIXED_ID, STRATEGIES
from repro.sim.backend import BACKENDS
from repro.sim.interp import LaunchConfig, run_kernel

ARCHS: dict[str, GpuArchitecture] = {
    "gtx680": GTX680,
    "gtx980": GTX980,
    "gtx1080": GTX1080,
    "c2075": TESLA_C2075,
}


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="timing",
        help="execution backend (default: timing)",
    )
    _add_observability(parser)


def _add_observability(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a JSONL telemetry trace of the run to FILE "
             "(also honoured via $ORION_TRACE_FILE)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the Prometheus-style metrics exposition after the run",
    )


def _print_live_metrics() -> None:
    from repro.obs.metrics import get_registry, render_prometheus

    print(render_prometheus(get_registry().snapshot()), end="")


def _load_module(path: Path):
    """Load an ORAS module from assembly text or a binary file."""
    data = path.read_bytes()
    if data[:4] == b"ORAS":
        return decode_module(data)
    return parse_module(data.decode("utf-8"))


def _add_arch(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--arch",
        choices=sorted(ARCHS),
        default="gtx680",
        help="target architecture (default: gtx680)",
    )


def _add_strategy(parser: argparse.ArgumentParser, mixed: bool = True) -> None:
    choices = sorted(STRATEGIES) + ([MIXED_ID] if mixed else [])
    parser.add_argument(
        "--strategy",
        choices=choices,
        default=None,
        help="allocation strategy: where spilled registers live "
             "(default: $ORION_STRATEGY or local-spill)",
    )


# ----------------------------------------------------------------------
def cmd_asm(args: argparse.Namespace) -> int:
    module = parse_module(Path(args.input).read_text())
    module.validate()
    Path(args.output).write_bytes(encode_module(module))
    print(f"assembled {module.name}: {len(module.functions)} function(s) "
          f"-> {args.output}")
    return 0


def cmd_dis(args: argparse.Namespace) -> int:
    module = decode_module(Path(args.input).read_bytes())
    text = format_module(module)
    if args.output:
        Path(args.output).write_text(text)
        print(f"disassembled -> {args.output}")
    else:
        print(text)
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    from repro.harness.reporting import format_phase_report

    module = _load_module(Path(args.input))
    kernel = args.kernel or module.kernel().name
    arch = ARCHS[args.arch]
    options = dict(
        arch=arch,
        block_size=args.block_size,
        can_tune=not args.no_tune,
        max_versions=args.max_versions,
    )
    if args.strategy:
        options["strategy"] = args.strategy
    binary = compile_binary(
        module,
        kernel,
        CompileOptions(**options),
        jobs=args.jobs,
        use_cache=not args.no_cache,
        verify=args.verify,
    )
    Path(args.output).write_bytes(binary.to_bytes())
    if args.verify:
        print("verify: every realized version is allocation-sound")
    print(f"kernel {kernel!r} on {arch.name}: direction={binary.direction}")
    print(_version_table(binary))
    if args.timings:
        print(format_phase_report())
    print(f"multi-version binary -> {args.output}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    binary = MultiVersionBinary.from_bytes(Path(args.input).read_bytes())
    print(
        f"kernel {binary.kernel_name!r} for {binary.arch_name} "
        f"(block={binary.block_size}, direction={binary.direction}, "
        f"tunable={binary.can_tune})"
    )
    print(_version_table(binary))
    return 0


def _version_table(binary: MultiVersionBinary) -> str:
    # The strategy column appears only for mixed/non-default binaries,
    # keeping the reference output stable.
    show_strategy = binary.strategies() != ("local-spill",)
    rows = []
    for role, versions in (("candidate", binary.versions), ("failsafe", binary.failsafe)):
        for v in versions:
            row = (
                role,
                v.label,
                f"{v.occupancy:.3f}",
                v.regs_per_thread,
                v.smem_per_block,
                v.outcome.spilled_variables,
                v.outcome.stack_moves,
            )
            if show_strategy:
                row += (v.strategy,)
            rows.append(row)
    headers = ["role", "label", "occupancy", "regs", "smem B", "spills", "moves"]
    if show_strategy:
        headers.append("strategy")
    return format_table(headers, rows)


def cmd_run(args: argparse.Namespace) -> int:
    module = _load_module(Path(args.input))
    kernel = args.kernel or module.kernel().name
    params = {}
    for pair in args.param or []:
        offset, _, value = pair.partition("=")
        params[int(offset)] = float(value) if "." in value else int(value)
    launch = LaunchConfig(
        grid_blocks=args.grid, block_size=args.block_size, params=params
    )
    memory = run_kernel(module, launch, kernel_name=kernel)
    shown = sorted(memory.items())[: args.show]
    print(f"ran {kernel!r}: {len(memory)} global words written")
    for address, value in shown:
        print(f"  [{address:#010x}] = {value}")
    if len(memory) > args.show:
        print(f"  ... {len(memory) - args.show} more")
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import run_fuzz
    from repro.runtime.telemetry import JsonlSink, TelemetryHub

    store = None
    if args.store:
        from repro.service.store import TuningStore

        store = TuningStore(args.store)
    hub = TelemetryHub(JsonlSink(args.trace)) if args.trace else None
    try:
        report = run_fuzz(
            seed=args.seed,
            cases=args.cases,
            shape=args.shape,
            arch=ARCHS[args.arch],
            progress=print if not args.quiet else None,
            hub=hub,
            trace=args.trace,
            store=store,
            strategy=args.strategy or "local-spill",
        )
    finally:
        if hub is not None:
            hub.close()
    oracle = (
        f", strategy oracle vs {report.strategy}"
        if report.strategy != "local-spill"
        else ""
    )
    print(
        f"fuzzed {report.cases} case(s) (shape={report.shape}, "
        f"seeds {args.seed}..{args.seed + args.cases - 1}{oracle}): "
        f"{report.versions_checked} version(s) checked, "
        f"{len(report.failures)} failure(s)"
    )
    for failure in report.failures:
        print(failure)
    if args.trace:
        print(f"telemetry trace -> {args.trace}")
    if args.metrics:
        _print_live_metrics()
    return 0 if report.ok else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.arch.occupancy import occupancy_levels
    from repro.compiler.realize import RealizeError, realize_occupancy
    from repro.runtime.engine import ExecutionEngine
    from repro.runtime.session import Workload

    module = _load_module(Path(args.input))
    kernel = args.kernel or module.kernel().name
    arch = ARCHS[args.arch]
    launch = LaunchConfig(grid_blocks=args.grid, block_size=args.block_size)
    workload = Workload(launch=launch, max_events_per_warp=args.max_events)
    engine = ExecutionEngine(arch, backend=args.backend, trace_file=args.trace)
    strategy = args.strategy or "local-spill"
    occupancies, runtimes = [], []
    for warps in occupancy_levels(arch, args.block_size):
        try:
            version = realize_occupancy(
                module, kernel, arch, args.block_size, warps,
                conservative=True, strategy=strategy,
            )
        except RealizeError as exc:
            print(f"  warps={warps}: infeasible ({exc})")
            continue
        measured = engine.measure(version, launch, workload, session=kernel)
        occupancies.append(warps / arch.max_warps_per_sm)
        runtimes.append(measured.cycles)
    engine.telemetry.close()
    if not runtimes:
        print("no feasible occupancy level")
        return 1
    best = min(runtimes)
    tag = f", {strategy}" if strategy != "local-spill" else ""
    print(
        f"sweep of {kernel!r} on {arch.name} "
        f"({engine.backend.name} backend{tag}):"
    )
    print(
        format_series(
            occupancies,
            [r / best for r in runtimes],
            "occupancy",
            "normalized runtime",
        )
    )
    if args.trace:
        print(f"telemetry trace -> {args.trace}")
    if args.metrics:
        _print_live_metrics()
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.experiments import BENCHMARKS, bench_suite
    from repro.harness.reporting import (
        format_suite_report,
        format_telemetry_summary,
    )
    from repro.runtime.engine import ExecutionEngine

    from repro.regalloc.strategy import default_strategy_id

    arch = ARCHS[args.arch]
    strategy = args.strategy or default_strategy_id()
    engine = ExecutionEngine(
        arch, backend=args.backend, jobs=args.jobs, trace_file=args.trace
    )
    try:
        rows = bench_suite(
            arch, only=args.only, jobs=args.jobs, suite_engine=engine,
            strategy=strategy,
        )
    finally:
        engine.telemetry.close()
    tag = f", {strategy}" if strategy != "local-spill" else ""
    print(
        format_suite_report(
            rows,
            title=(
                f"Benchmark suite on {arch.name} "
                f"({engine.backend.name} backend{tag}, "
                f"{len(rows)}/{len(BENCHMARKS)} kernels)"
            ),
        )
    )
    print(format_telemetry_summary(engine.telemetry, engine.cache.stats))
    payload = None
    if args.report or args.baseline:
        from repro.obs.report import build_bench_report, write_report
        from repro.perf.cache import default_cache

        payload = build_bench_report(
            arch.name,
            engine.backend.name,
            rows,
            engine.cache.stats,
            compile_stats=default_cache().stats,
            telemetry=engine.telemetry,
            strategy=strategy,
        )
    if args.report:
        if payload["git_sha"] is None:
            print(
                "warning: not inside a git checkout (or git is "
                "unavailable); bench report records git_sha=null",
                file=sys.stderr,
            )
        written = write_report(payload, args.report)
        print(f"bench report -> {written}")
    if args.trace:
        print(f"telemetry trace -> {args.trace}")
    if args.metrics:
        _print_live_metrics()
    if args.baseline:
        from repro.obs.report import compare_reports, load_report

        problems = compare_reports(load_report(args.baseline), payload)
        if problems:
            for problem in problems:
                print(f"bench regression: {problem}", file=sys.stderr)
            return 1
        print(f"no regression against baseline {args.baseline}")
    return 0


# ----------------------------------------------------------------------
def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import tracefile

    if args.trace_command in ("merge", "slow"):
        return _cmd_trace_merged(args)
    events = tracefile.read_trace(Path(args.trace_file))
    if args.trace_command == "summary":
        print(tracefile.summarize_trace(events))
        return 0
    if args.trace_command == "filter":
        kept = tracefile.filter_trace(
            events, session=args.session, kinds=args.kind or None
        )
        import json as _json

        lines = "".join(
            _json.dumps(event, sort_keys=True) + "\n" for event in kept
        )
        if args.output:
            Path(args.output).write_text(lines, encoding="utf-8")
            print(f"{len(kept)}/{len(events)} event(s) -> {args.output}")
        else:
            print(lines, end="")
        return 0
    if args.trace_command == "diff":
        other = tracefile.read_trace(Path(args.other))
        diffs = tracefile.diff_traces(
            events, other, ignore_wall=not args.wall, limit=args.limit
        )
        if not diffs:
            print("traces are identical"
                  + ("" if args.wall else " (wall-clock ignored)"))
            return 0
        for line in diffs:
            print(line)
        return 1
    if args.trace_command == "export":
        import json as _json

        document = tracefile.to_chrome(events)
        text = _json.dumps(document, sort_keys=True)
        if args.output:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
            print(
                f"{len(document['traceEvents'])} trace event(s) -> "
                f"{args.output} (open in Perfetto / chrome://tracing)"
            )
        else:
            print(text)
        return 0
    raise ValueError(f"unknown trace command {args.trace_command!r}")


def _collect_traces(specs: list[str], urls: list[str]) -> dict[str, list[dict]]:
    """Load per-node traces from ``label=path`` specs and daemon URLs.

    A bare path gets its file stem as the node label; a URL gets its
    ``host:port``.  Labels must be unique — they become the node names
    of the merged timeline.
    """
    from repro.obs import tracefile

    traces: dict[str, list[dict]] = {}

    def _add(label: str, events: list[dict], origin: str) -> None:
        if label in traces:
            raise ValueError(
                f"duplicate node label {label!r} (from {origin}); "
                "disambiguate with label=path"
            )
        traces[label] = events

    for spec in specs:
        label, sep, path = spec.partition("=")
        if not sep or not label or "/" in label:
            label, path = Path(spec).stem, spec
        _add(label, tracefile.read_trace(Path(path)), path)
    for url in urls:
        import urllib.request

        full = url if "://" in url else f"http://{url}"
        if "/debug/" not in full:
            full = full.rstrip("/") + "/debug/trace"
        label = full.split("://", 1)[1].split("/", 1)[0]
        with urllib.request.urlopen(full, timeout=10.0) as response:
            text = response.read().decode("utf-8")
        _add(label, tracefile.parse_trace_text(text, source=full), full)
    if not traces:
        raise ValueError(
            "no traces to merge: name trace files or pass --url"
        )
    return traces


def _cmd_trace_merged(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import tracefile

    traces = _collect_traces(args.traces, args.url or [])
    merged = tracefile.merge_traces(traces)
    if args.trace_command == "slow":
        rows = tracefile.slow_traces(merged, top=args.top)
        if not rows:
            print("no traced requests found")
            return 0
        print(
            format_table(
                ["trace", "wall_s", "nodes", "events", "types"],
                [
                    [
                        row["trace"],
                        "-" if row["wall"] is None else f"{row['wall']:.6f}",
                        ",".join(row["nodes"]),
                        str(row["events"]),
                        ",".join(row["types"]) or "-",
                    ]
                    for row in rows
                ],
            )
        )
        return 0
    traced = {
        event["data"]["trace"]
        for event in merged
        if isinstance(event["data"].get("trace"), str)
    }
    cross = {
        trace
        for trace in traced
        if len(
            {
                event["node"]
                for event in merged
                if event["data"].get("trace") == trace
            }
        )
        > 1
    }
    if args.format == "jsonl":
        text = "".join(
            _json.dumps(event, sort_keys=True) + "\n" for event in merged
        )
    else:
        text = _json.dumps(tracefile.merged_to_chrome(merged), sort_keys=True)
        text += "\n"
    summary = (
        f"{len(merged)} event(s) from {len(traces)} node(s), "
        f"{len(traced)} trace id(s) ({len(cross)} cross-node)"
    )
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        viewer = (
            "" if args.format == "jsonl"
            else " (open in Perfetto / chrome://tracing)"
        )
        print(f"{summary} -> {args.output}{viewer}")
    else:
        print(text, end="")
        print(summary, file=sys.stderr)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs.metrics import render_prometheus
    from repro.obs.report import load_report, validate_bench_report

    if (args.report is None) == (args.url is None):
        raise ValueError(
            "metrics needs exactly one source: a bench-report file or --url"
        )
    if args.url:
        import urllib.request

        full = args.url if "://" in args.url else f"http://{args.url}"
        if not full.rstrip("/").endswith("/metrics"):
            full = full.rstrip("/") + "/metrics"
        with urllib.request.urlopen(full, timeout=10.0) as response:
            print(response.read().decode("utf-8"), end="")
        return 0
    report = load_report(Path(args.report))
    errors = validate_bench_report(report)
    if errors and not args.no_validate:
        for error in errors:
            print(f"invalid report: {error}", file=sys.stderr)
        return 1
    print(render_prometheus(report["metrics"]), end="")
    return 0


# ----------------------------------------------------------------------
def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.runtime.engine import ExecutionEngine
    from repro.service.daemon import DaemonConfig, TuningDaemon
    from repro.service.store import TuningStore

    cluster = None
    if args.ring:
        from repro.service.cluster import ClusterConfig

        node_id = args.node_id or f"{args.host}:{args.port}"
        if args.port == 0 and not args.node_id:
            raise ValueError(
                "--ring needs a fixed --port or an explicit --node-id "
                "(peers must be able to name this daemon)"
            )
        cluster = ClusterConfig(
            node_id=node_id,
            ring=args.ring,
            replicas=args.replicas,
        )
    store = TuningStore(args.store, max_entries=args.max_entries)
    engine = ExecutionEngine(
        ARCHS[args.arch],
        backend=args.backend,
        trace_file=args.trace,
        tuning_store=store,
    )
    daemon = TuningDaemon(
        engine,
        store,
        DaemonConfig(
            host=args.host,
            port=args.port,
            port_file=args.port_file,
            max_pending=args.max_pending,
            request_timeout=args.request_timeout,
            jobs=args.jobs,
            http_port=args.http_port,
            cluster=cluster,
            log_file=args.log_file,
        ),
    )

    async def _serve() -> None:
        await daemon.start()
        extras = ""
        if daemon.http_port is not None:
            extras += f", http :{daemon.http_port}"
        if cluster is not None:
            extras += (
                f", ring node {cluster.node_id} of {len(cluster.ring)}"
            )
        print(
            f"tuning daemon listening on {daemon.config.host}:{daemon.port} "
            f"({engine.arch.name}, {engine.backend.name} backend, "
            f"store {store.path}{extras})",
            flush=True,
        )
        await daemon.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("tuning daemon stopped")
    finally:
        engine.telemetry.close()
    if args.metrics:
        _print_live_metrics()
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    from repro.compiler.multiversion import MultiVersionBinary
    from repro.runtime.session import Workload
    from repro.service.client import (
        RingClient,
        ServiceRejected,
        TuningClient,
        tune_with_fallback,
    )
    from repro.sim.interp import LaunchConfig

    binary = MultiVersionBinary.from_bytes(Path(args.input).read_bytes())
    if args.strategy and args.strategy not in binary.strategies():
        raise ValueError(
            f"binary {args.input} carries no {args.strategy!r} versions "
            f"(compiled with: {', '.join(binary.strategies())}); "
            f"recompile with repro compile --strategy {args.strategy}"
        )
    workload = Workload(
        launch=LaunchConfig(
            grid_blocks=args.grid,
            block_size=args.block_size or binary.block_size,
        ),
        iterations=args.iterations,
        max_events_per_warp=args.max_events,
    )
    if args.ring:
        client = RingClient(
            args.ring, timeout=args.timeout, retries=args.retries
        )
    else:
        client = TuningClient(
            host=args.host,
            port=args.port,
            port_file=args.port_file,
            timeout=args.timeout,
            retries=args.retries,
        )
    hub = None
    if args.trace:
        # A traced submit writes the *client side* of the distributed
        # timeline: the client mints the trace id, opens the
        # client_request span here, and stamps both onto the wire so
        # the daemons' traces join up under `repro trace merge`.
        from contextlib import ExitStack

        from repro.obs.spans import use_hub
        from repro.runtime.telemetry import JsonlSink, TelemetryHub

        hub = TelemetryHub(JsonlSink(args.trace))
        stack = ExitStack()
        stack.enter_context(use_hub(hub))
    try:
        if args.no_fallback:
            try:
                response = client.tune(binary, workload)
            except ServiceRejected as exc:
                raise ValueError(str(exc)) from None
        else:
            response = tune_with_fallback(
                client, binary, workload, ARCHS[args.arch],
                backend=args.backend,
            )
    finally:
        if hub is not None:
            stack.close()
            hub.close()
    if args.json:
        print(_json.dumps(response, indent=2, sort_keys=True))
        return 0
    record = response["record"]
    print(
        f"kernel {record['kernel_name']!r} on {record['arch']} "
        f"({record['backend']} backend): winner {record['winner_label']!r} "
        f"(occupancy {record['occupancy']:.3f}, "
        f"{record['total_cycles']} cycles)"
    )
    print(f"source: {response['source']}   key: {response['key'][:16]}…")
    if response.get("degraded_reason"):
        print(f"degraded to local tuning: {response['degraded_reason']}")
    return 0


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Drive concurrent clients across a daemon ring; report latency."""
    import json as _json
    import threading
    import time as _time

    from repro.compiler.multiversion import MultiVersionBinary
    from repro.runtime.session import Workload
    from repro.service.client import RingClient, ServiceRejected
    from repro.sim.interp import LaunchConfig

    binary = MultiVersionBinary.from_bytes(Path(args.input).read_bytes())
    workload = Workload(
        launch=LaunchConfig(
            grid_blocks=args.grid,
            block_size=args.block_size or binary.block_size,
        ),
        iterations=args.iterations,
        max_events_per_warp=args.max_events,
    )
    total = args.requests
    clients = max(1, min(args.clients, total))
    shares = [total // clients] * clients
    for index in range(total % clients):
        shares[index] += 1

    latencies: list[float] = []
    sources: dict[str, int] = {}
    errors: list[str] = []
    lock = threading.Lock()

    def _worker(count: int) -> None:
        # One RingClient per worker: nothing shared, nothing to contend.
        ring = RingClient(
            args.ring, timeout=args.timeout, retries=args.retries
        )
        for _ in range(count):
            started = _time.perf_counter()
            try:
                response = ring.tune(binary, workload)
            except (ServiceRejected, OSError) as exc:
                with lock:
                    errors.append(str(exc))
                continue
            elapsed = _time.perf_counter() - started
            with lock:
                latencies.append(elapsed)
                source = response.get("source", "unknown")
                sources[source] = sources.get(source, 0) + 1

    threads = [
        threading.Thread(target=_worker, args=(share,), daemon=True)
        for share in shares
        if share
    ]
    wall_start = _time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = _time.perf_counter() - wall_start

    def _percentile(values: list[float], q: float) -> float:
        ordered = sorted(values)
        index = max(0, min(len(ordered) - 1, int(round(q * len(ordered))) - 1))
        return ordered[index]

    summary = {
        "requests": total,
        "clients": len(threads),
        "ring": RingClient(args.ring).nodes,
        "ok": len(latencies),
        "dropped": len(errors),
        "wall_seconds": wall,
        "sources": dict(sorted(sources.items())),
    }
    if latencies:
        summary["p50_ms"] = _percentile(latencies, 0.50) * 1000.0
        summary["p99_ms"] = _percentile(latencies, 0.99) * 1000.0
        summary["throughput_rps"] = len(latencies) / wall if wall else 0.0
    if args.json:
        print(_json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"loadtest: {total} request(s) via {len(threads)} client(s) "
            f"over a {len(summary['ring'])}-node ring in {wall:.2f}s"
        )
        print(f"  ok {len(latencies)}, dropped {len(errors)}")
        if latencies:
            print(
                f"  p50 {summary['p50_ms']:.2f} ms   "
                f"p99 {summary['p99_ms']:.2f} ms   "
                f"{summary['throughput_rps']:.1f} req/s"
            )
        if sources:
            mix = ", ".join(
                f"{name} {count}" for name, count in sorted(sources.items())
            )
            print(f"  sources: {mix}")
        for message in errors[:3]:
            print(f"  error: {message}", file=sys.stderr)
    return 1 if errors else 0


def cmd_store(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service.store import TuningStore

    store = TuningStore(args.store, max_entries=args.max_entries)
    if args.store_command == "stats":
        print(_json.dumps(store.stats().to_payload(), indent=2, sort_keys=True))
        return 0
    if args.store_command == "gc":
        before = store.stats().log_ops
        stats = store.gc()
        print(
            f"compacted {store.path}: {before} -> {stats.log_ops} log op(s), "
            f"{stats.entries} live record(s)"
        )
        return 0
    if args.store_command == "export":
        text = _json.dumps(store.export(), indent=2, sort_keys=True)
        if args.output:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
            print(f"{len(store)} record(s) -> {args.output}")
        else:
            print(text)
        return 0
    raise ValueError(f"unknown store command {args.store_command!r}")


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Orion GPU occupancy tuning — reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("asm", help="assemble ORAS text to a binary")
    p.add_argument("input")
    p.add_argument("-o", "--output", required=True)
    p.set_defaults(func=cmd_asm)

    p = sub.add_parser("dis", help="disassemble a binary to ORAS text")
    p.add_argument("input")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_dis)

    p = sub.add_parser("compile", help="Orion-compile a kernel")
    p.add_argument("input")
    p.add_argument("-o", "--output", required=True)
    p.add_argument("--kernel")
    p.add_argument("--block-size", type=int, default=256)
    p.add_argument("--max-versions", type=int, default=5)
    p.add_argument("--no-tune", action="store_true",
                   help="force static selection (no runtime tuning)")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes for candidate realization "
                        "(default: $ORION_COMPILE_JOBS or 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the content-addressed compile cache")
    p.add_argument("--verify", action="store_true",
                   help="gate every realized version through the "
                        "allocation-soundness verifier")
    p.add_argument("--timings", action="store_true",
                   help="print the phase-timer / cache-hit report")
    _add_arch(p)
    _add_strategy(p)
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("inspect", help="describe a multi-version binary")
    p.add_argument("input")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("run", help="execute a kernel functionally")
    p.add_argument("input")
    p.add_argument("--kernel")
    p.add_argument("--grid", type=int, default=1)
    p.add_argument("--block-size", type=int, default=32)
    p.add_argument("--param", action="append",
                   help="offset=value kernel parameter (repeatable)")
    p.add_argument("--show", type=int, default=16)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "fuzz",
        help="differentially fuzz the compiler with seeded random kernels",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="base seed; case i uses seed+i (default: 0)")
    p.add_argument("--cases", type=int, default=100,
                   help="number of cases to run (default: 100)")
    p.add_argument("--shape", choices=SHAPES, default="mixed",
                   help="program shape to generate (default: mixed)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress periodic progress lines")
    p.add_argument("--store", metavar="FILE",
                   help="also round-trip each tunable case through a "
                        "persistent tuning store at FILE, checking "
                        "fingerprint stability across recompiles")
    _add_arch(p)
    _add_strategy(p, mixed=False)
    _add_observability(p)
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser("sweep", help="time every occupancy level")
    p.add_argument("input")
    p.add_argument("--kernel")
    p.add_argument("--grid", type=int, default=64)
    p.add_argument("--block-size", type=int, default=256)
    p.add_argument("--max-events", type=int, default=3000)
    _add_arch(p)
    _add_strategy(p, mixed=False)
    _add_engine_options(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "bench",
        help="run the benchmark suite through the execution engine",
    )
    p.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only this benchmark (repeatable; default: all 14)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="concurrent tuning sessions (default: $ORION_ENGINE_JOBS or 1)",
    )
    p.add_argument(
        "--report",
        metavar="FILE",
        help="write the versioned machine-readable bench report to FILE",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help="compare this run against a committed bench report "
        "(exit 1 on changed kernel results or >25%% per-phase slowdown)",
    )
    _add_arch(p)
    _add_strategy(p)
    _add_engine_options(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("trace", help="analyse a JSONL telemetry trace")
    tsub = p.add_subparsers(dest="trace_command", required=True)

    ps = tsub.add_parser(
        "summary",
        help="per-kind counts, span duration stats, cache hit rates",
    )
    ps.add_argument("trace_file")
    ps.set_defaults(func=cmd_trace)

    pf = tsub.add_parser(
        "filter", help="select events by session and/or kind"
    )
    pf.add_argument("trace_file")
    pf.add_argument("--session", help="keep only this session's events")
    pf.add_argument(
        "--kind",
        action="append",
        metavar="KIND",
        help="keep only this event kind (repeatable)",
    )
    pf.add_argument("-o", "--output", help="write JSONL here (default: stdout)")
    pf.set_defaults(func=cmd_trace)

    pd = tsub.add_parser(
        "diff", help="seq-aligned comparison of two traces"
    )
    pd.add_argument("trace_file", help="trace A")
    pd.add_argument("other", help="trace B")
    pd.add_argument(
        "--wall",
        action="store_true",
        help="also compare wall-clock durations (differ between any "
             "two real runs; ignored by default)",
    )
    pd.add_argument(
        "--limit", type=int, default=10,
        help="stop after this many differences (default: 10)",
    )
    pd.set_defaults(func=cmd_trace)

    pe = tsub.add_parser(
        "export", help="convert a trace for an external viewer"
    )
    pe.add_argument("trace_file")
    pe.add_argument(
        "--format",
        choices=["chrome"],
        default="chrome",
        help="output format: Chrome trace_event JSON for "
             "Perfetto / chrome://tracing (default)",
    )
    pe.add_argument("-o", "--output", help="write here (default: stdout)")
    pe.set_defaults(func=cmd_trace)

    pm = tsub.add_parser(
        "merge",
        help="join per-node traces by trace id into one cross-node "
             "timeline (clock offsets normalized from causality)",
    )
    pm.add_argument(
        "traces",
        nargs="*",
        metavar="[NODE=]FILE",
        help="per-node trace files; bare paths use the file stem as "
             "the node label",
    )
    pm.add_argument(
        "--url",
        action="append",
        metavar="HOST:PORT",
        help="also fetch a live daemon's /debug/trace (repeatable)",
    )
    pm.add_argument(
        "--format",
        choices=["chrome", "jsonl"],
        default="chrome",
        help="chrome: one Perfetto timeline, a process per node "
             "(default); jsonl: merged events with node/ts annotations",
    )
    pm.add_argument("-o", "--output", help="write here (default: stdout)")
    pm.set_defaults(func=cmd_trace)

    pw = tsub.add_parser(
        "slow",
        help="merge per-node traces and rank requests by latency",
    )
    pw.add_argument(
        "traces", nargs="*", metavar="[NODE=]FILE",
        help="per-node trace files (as for merge)",
    )
    pw.add_argument(
        "--url",
        action="append",
        metavar="HOST:PORT",
        help="also fetch a live daemon's /debug/trace (repeatable)",
    )
    pw.add_argument(
        "--top", type=int, default=10,
        help="show the N slowest traces (default: 10)",
    )
    pw.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "metrics",
        help="print the Prometheus-style exposition of a bench report's "
             "metrics snapshot, or scrape a live daemon",
    )
    p.add_argument(
        "report",
        nargs="?",
        help="a bench-report JSON file (bench --report); omit with --url",
    )
    p.add_argument(
        "--url",
        metavar="HOST:PORT",
        help="scrape a live daemon's /metrics endpoint instead",
    )
    p.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the report schema check",
    )
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "serve",
        help="run the tuning daemon over a persistent tuning store",
    )
    p.add_argument("--store", required=True, metavar="FILE",
                   help="path of the persistent tuning store (JSONL)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (default: 0 = ephemeral)")
    p.add_argument("--port-file", metavar="FILE",
                   help="write the bound port here once listening "
                        "(clients discover ephemeral ports through it)")
    p.add_argument("--max-entries", type=int, default=1024,
                   help="store LRU bound (default: 1024)")
    p.add_argument("--max-pending", type=int, default=8,
                   help="admission-control queue bound; further tune "
                        "requests are rejected queue-full (default: 8)")
    p.add_argument("--request-timeout", type=float, default=30.0,
                   help="per-request tuning deadline in seconds "
                        "(default: 30)")
    p.add_argument("--jobs", type=int, default=2,
                   help="concurrent tuning workers (default: 2)")
    p.add_argument("--http-port", type=int, default=None, metavar="PORT",
                   help="also serve GET /metrics (Prometheus), "
                        "GET /healthz and GET /debug/* on this HTTP "
                        "port (0 = ephemeral)")
    p.add_argument("--log-file", metavar="FILE",
                   help="write the daemon's structured JSONL log here "
                        "(default: $ORION_LOG, else off)")
    p.add_argument("--ring", metavar="H:P,H:P,...",
                   help="cluster mode: the full host:port member list "
                        "of the daemon ring (this node included)")
    p.add_argument("--node-id", metavar="HOST:PORT",
                   help="this node's advertised ring identity "
                        "(default: --host:--port)")
    p.add_argument("--replicas", type=int, default=2,
                   help="copies of each record beyond the ring owner "
                        "(default: 2)")
    _add_arch(p)
    _add_engine_options(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit",
        help="tune a multi-version binary through the daemon "
             "(warm store hits skip measurement)",
    )
    p.add_argument("input", help="a multi-version binary (repro compile)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="daemon port (or use --port-file)")
    p.add_argument("--port-file", metavar="FILE",
                   help="read the daemon port from FILE (repro serve "
                        "--port-file)")
    p.add_argument("--ring", metavar="H:P,H:P,...",
                   help="submit through a daemon ring: route to the "
                        "kernel's owner, fail over ring-wise")
    p.add_argument("--grid", type=int, default=64)
    p.add_argument("--block-size", type=int, default=None,
                   help="default: the binary's compiled block size")
    p.add_argument("--iterations", type=int, default=6)
    p.add_argument("--max-events", type=int, default=3000)
    p.add_argument("--timeout", type=float, default=30.0,
                   help="client-side socket timeout in seconds")
    p.add_argument("--retries", type=int, default=2,
                   help="connection/backpressure retries (default: 2)")
    p.add_argument("--no-fallback", action="store_true",
                   help="fail instead of degrading to in-process tuning "
                        "when the daemon is unreachable")
    p.add_argument("--trace", metavar="FILE",
                   help="write the client-side JSONL trace here; the "
                        "minted trace id propagates to the daemons "
                        "(join with repro trace merge)")
    p.add_argument("--json", action="store_true",
                   help="print the raw response as JSON")
    _add_arch(p)
    _add_strategy(p, mixed=False)
    p.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default="timing",
        help="backend for the in-process fallback (default: timing)",
    )
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "loadtest",
        help="drive concurrent tune requests across a daemon ring and "
             "report p50/p99 latency",
    )
    p.add_argument("input", help="a multi-version binary (repro compile)")
    p.add_argument("--ring", required=True, metavar="H:P,H:P,...",
                   help="the daemon ring to drive")
    p.add_argument("--requests", type=int, default=64,
                   help="total requests to issue (default: 64)")
    p.add_argument("--clients", type=int, default=8,
                   help="concurrent client threads (default: 8)")
    p.add_argument("--grid", type=int, default=64)
    p.add_argument("--block-size", type=int, default=None,
                   help="default: the binary's compiled block size")
    p.add_argument("--iterations", type=int, default=6)
    p.add_argument("--max-events", type=int, default=3000)
    p.add_argument("--timeout", type=float, default=30.0,
                   help="client-side socket timeout in seconds")
    p.add_argument("--retries", type=int, default=1,
                   help="per-node retries before failing over (default: 1)")
    p.add_argument("--json", action="store_true",
                   help="print the summary as JSON")
    p.set_defaults(func=cmd_loadtest)

    p = sub.add_parser(
        "store", help="inspect or maintain a persistent tuning store"
    )
    p.add_argument("store", help="path of the tuning store (JSONL)")
    p.add_argument("--max-entries", type=int, default=1024,
                   help="store LRU bound (default: 1024)")
    ssub = p.add_subparsers(dest="store_command", required=True)

    ps = ssub.add_parser("stats", help="print store statistics as JSON")
    ps.set_defaults(func=cmd_store)

    ps = ssub.add_parser("gc", help="compact the op log in place")
    ps.set_defaults(func=cmd_store)

    ps = ssub.add_parser("export", help="dump live records as JSON")
    ps.add_argument("-o", "--output", help="write here (default: stdout)")
    ps.set_defaults(func=cmd_store)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away (e.g. `repro trace summary | head`); not an error
        return 0
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
