"""The daemon's HTTP sidecar: Prometheus scraping, health, debug.

``repro serve --http-port N`` starts this tiny asyncio HTTP/1.1 server
next to the frame-protocol socket.  It exists so fleet tooling that
speaks HTTP — Prometheus, load balancers, Kubernetes probes — can
observe a daemon without learning the length-prefixed JSON protocol:

* ``GET /metrics``  — the process metrics registry in Prometheus text
  exposition format (the same rendering as ``repro metrics``, but live
  and scrapeable);
* ``GET /healthz``  — a JSON liveness/readiness document: node
  identity, ring membership, queue depth, store size, and replication
  lag, so a probe can distinguish *up* from *healthy*;
* ``GET /debug/requests`` — the flight recorder: the last N request
  summaries (trace id, verb, outcome, latency, hops, peer) as JSON;
* ``GET /debug/vars``     — varz-style dump: the health document plus
  the full metrics snapshot (including histogram exemplars, which the
  text exposition cannot carry);
* ``GET /debug/trace``    — the daemon's JSONL trace file, flushed and
  served as-is (404 when the daemon runs untraced); ``repro trace
  merge --url`` fetches per-node traces from here.

``HEAD`` is answered for every route with exactly the ``GET`` headers
and an empty body, and every response carries a ``Date`` header, so
standard probes and scrapers behave.  Otherwise deliberately minimal:
no other methods, ``Connection: close``, no TLS, no routing table.
Anything fancier belongs in front of the daemon, not inside it.
"""

from __future__ import annotations

import asyncio
import json
from email.utils import formatdate

_MAX_REQUEST_LINE = 4096
_MAX_HEADER_LINES = 64


class HttpAdmin:
    """Serve ``/metrics``, ``/healthz`` and ``/debug/*`` for one daemon."""

    def __init__(
        self,
        daemon,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.daemon = daemon
        self.host = host
        self.port: int | None = port or None
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, content_type, body, head = await self._respond_to(reader)
            writer.write(_response(status, content_type, body, head=head))
            await writer.drain()
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass  # scraper went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond_to(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes, bool]:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=5.0
            )
        except asyncio.TimeoutError:
            return "408 Request Timeout", "text/plain", b"request timeout\n", False
        if len(request_line) > _MAX_REQUEST_LINE:
            return (
                "414 URI Too Long",
                "text/plain",
                b"request line too long\n",
                False,
            )
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return "400 Bad Request", "text/plain", b"malformed request line\n", False
        method, path = parts[0], parts[1]
        # Drain headers so well-behaved clients see a clean close.
        for _ in range(_MAX_HEADER_LINES):
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            if line in (b"\r\n", b"\n", b""):
                break
        if method not in ("GET", "HEAD"):
            return (
                "405 Method Not Allowed",
                "text/plain",
                b"GET or HEAD only\n",
                False,
            )
        # HEAD answers with exactly the GET headers and an empty body,
        # so the route logic below never needs to know the method.
        status, content_type, body = await self._route(path)
        return status, content_type, body, method == "HEAD"

    async def _route(self, path: str) -> tuple[str, str, bytes]:
        if path in ("/metrics", "/metrics/"):
            return "200 OK", _PROMETHEUS_TYPE, self._metrics_body()
        if path in ("/healthz", "/healthz/", "/health"):
            body = await self.daemon.health()
            status = "200 OK" if body.get("ok") else "503 Service Unavailable"
            return status, "application/json", _json_body(body)
        if path in ("/debug/requests", "/debug/requests/"):
            flight = self.daemon.flight
            return (
                "200 OK",
                "application/json",
                _json_body(
                    {
                        "capacity": flight.capacity,
                        "total": flight.total,
                        "entries": flight.snapshot(),
                    }
                ),
            )
        if path in ("/debug/vars", "/debug/vars/"):
            from repro.obs.metrics import get_registry

            return (
                "200 OK",
                "application/json",
                _json_body(
                    {
                        "health": await self.daemon.health(),
                        "metrics": get_registry().snapshot()["metrics"],
                    }
                ),
            )
        if path in ("/debug/trace", "/debug/trace/"):
            return self._trace_body()
        return (
            "404 Not Found",
            "text/plain",
            b"try /metrics, /healthz, /debug/requests, /debug/vars "
            b"or /debug/trace\n",
        )

    def _metrics_body(self) -> bytes:
        from repro.obs.metrics import get_registry, render_prometheus

        return render_prometheus(get_registry().snapshot()).encode("utf-8")

    def _trace_body(self) -> tuple[str, str, bytes]:
        trace_path = getattr(self.daemon.engine, "trace_path", None)
        if trace_path is None:
            return (
                "404 Not Found",
                "text/plain",
                b"this daemon runs without a trace file\n",
            )
        # Flush first: the promise is that the served bytes include
        # every event of every request already answered.
        self.daemon.engine.telemetry.flush()
        try:
            body = trace_path.read_bytes()
        except OSError:
            body = b""  # tracing configured but nothing emitted yet
        return "200 OK", "application/x-ndjson", body


_PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _json_body(document: dict) -> bytes:
    return (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")


def _response(
    status: str, content_type: str, body: bytes, head: bool = False
) -> bytes:
    # Content-Length always describes the GET body — on HEAD the body
    # is omitted but the headers stay identical, per RFC 9110.
    head_lines = (
        f"HTTP/1.1 {status}\r\n"
        f"Date: {formatdate(usegmt=True)}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head_lines.encode("latin-1") + (b"" if head else body)
