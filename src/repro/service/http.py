"""The daemon's HTTP sidecar: native Prometheus scraping + health.

``repro serve --http-port N`` starts this tiny asyncio HTTP/1.1 server
next to the frame-protocol socket.  It exists so fleet tooling that
speaks HTTP — Prometheus, load balancers, Kubernetes probes — can
observe a daemon without learning the length-prefixed JSON protocol:

* ``GET /metrics``  — the process metrics registry in Prometheus text
  exposition format (the same rendering as ``repro metrics``, but live
  and scrapeable);
* ``GET /healthz``  — a JSON liveness/readiness document: node
  identity, ring membership, queue depth, store size, and replication
  lag, so a probe can distinguish *up* from *healthy*.

Deliberately minimal: GET only, ``Connection: close``, no TLS, no
routing table.  Anything fancier belongs in front of the daemon, not
inside it.
"""

from __future__ import annotations

import asyncio
import json

_MAX_REQUEST_LINE = 4096
_MAX_HEADER_LINES = 64


class HttpAdmin:
    """Serve ``/metrics`` and ``/healthz`` for one tuning daemon."""

    def __init__(
        self,
        daemon,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.daemon = daemon
        self.host = host
        self.port: int | None = port or None
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, content_type, body = await self._respond_to(reader)
            writer.write(_response(status, content_type, body))
            await writer.drain()
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass  # scraper went away mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _respond_to(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=5.0
            )
        except asyncio.TimeoutError:
            return "408 Request Timeout", "text/plain", b"request timeout\n"
        if len(request_line) > _MAX_REQUEST_LINE:
            return "414 URI Too Long", "text/plain", b"request line too long\n"
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) < 2:
            return "400 Bad Request", "text/plain", b"malformed request line\n"
        method, path = parts[0], parts[1]
        # Drain headers so well-behaved clients see a clean close.
        for _ in range(_MAX_HEADER_LINES):
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            if line in (b"\r\n", b"\n", b""):
                break
        if method != "GET":
            return "405 Method Not Allowed", "text/plain", b"GET only\n"
        if path in ("/metrics", "/metrics/"):
            return "200 OK", _PROMETHEUS_TYPE, self._metrics_body()
        if path in ("/healthz", "/healthz/", "/health"):
            body = await self.daemon.health()
            status = "200 OK" if body.get("ok") else "503 Service Unavailable"
            return (
                status,
                "application/json",
                (json.dumps(body, sort_keys=True) + "\n").encode("utf-8"),
            )
        return "404 Not Found", "text/plain", b"try /metrics or /healthz\n"

    def _metrics_body(self) -> bytes:
        from repro.obs.metrics import get_registry, render_prometheus

        return render_prometheus(get_registry().snapshot()).encode("utf-8")


_PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _response(status: str, content_type: str, body: bytes) -> bytes:
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
