"""The persistent tuning store: learned winners that survive the process.

An append-only JSONL operation log replayed into a key → record map:

* **crash-safe** — every operation is one fsynced line; a torn final
  line (crash mid-write) is detected on replay and the file is
  truncated back to the last whole operation (*truncate-and-replay*);
* **multi-process** — every read-modify-write runs under an exclusive
  file lock (``fcntl.flock`` on a sidecar ``.lock`` file, with a
  create-exclusive spin fallback where ``fcntl`` is unavailable), and
  each locked section first replays whatever tail other processes
  appended since this process last looked;
* **schema-versioned** — the first line is a header naming the schema
  and version; a future-versioned or unreadable header moves the file
  aside to ``<path>.corrupt`` and starts fresh rather than guessing;
* **LRU-bounded** — records carry a logical last-used sequence number
  (no wall clock, so eviction order is deterministic and testable);
  when live entries exceed ``max_entries`` the smallest
  ``(last_used, key)`` is evicted with an explicit ``del`` op;
* **self-compacting** — when the log grows past a multiple of the live
  entry count, it is atomically rewritten (temp file + ``os.replace``)
  to one ``put`` per live record, preserving LRU order; every rewrite
  stamps a fresh header *generation id*, so other instances detect the
  rewrite even when the new file is larger than their replay offset and
  replay from byte 0 instead of trusting a stale offset.

Store traffic charges ``orion_store_*`` metrics in the process-wide
registry, so warm-start hit rates show up in ``repro metrics`` next to
the compile- and measurement-cache numbers.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator

try:  # pragma: no cover - exercised implicitly on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

SCHEMA = "orion-tuning-store"
SCHEMA_VERSION = 1

#: compact when the log holds this many ops per live record (min floor
#: keeps tiny stores from compacting on every other write)
_COMPACT_RATIO = 4
_COMPACT_FLOOR = 64

#: sentinel for a header whose generation cannot be read; compares
#: unequal to every real generation, forcing a full replay
_UNREADABLE = object()


class StoreError(Exception):
    """The store file cannot be used (locking failure, bad rewrite)."""


@dataclass
class TuningRecord:
    """One learned tuning outcome (the store's value type)."""

    key: str
    kernel: str  # kernel fingerprint (fingerprint.kernel_fingerprint)
    kernel_name: str
    arch: str
    backend: str
    winner_label: str
    winner_warps: int
    occupancy: float
    total_cycles: int
    iterations_to_converge: int | None = None
    source: str = "tuned"

    def to_payload(self) -> dict:
        return asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "TuningRecord":
        return cls(
            key=payload["key"],
            kernel=payload["kernel"],
            kernel_name=payload["kernel_name"],
            arch=payload["arch"],
            backend=payload["backend"],
            winner_label=payload["winner_label"],
            winner_warps=payload["winner_warps"],
            occupancy=payload["occupancy"],
            total_cycles=payload["total_cycles"],
            iterations_to_converge=payload.get("iterations_to_converge"),
            source=payload.get("source", "tuned"),
        )


def record_from_report(
    key: str,
    kernel_fp: str,
    binary,
    report,
    arch_name: str,
    backend_name: str,
) -> TuningRecord:
    """Build the store record for one converged ExecutionReport."""
    final = report.final_version
    return TuningRecord(
        key=key,
        kernel=kernel_fp,
        kernel_name=binary.kernel_name,
        arch=arch_name,
        backend=backend_name,
        winner_label=final.label,
        winner_warps=final.achieved_warps,
        occupancy=final.occupancy,
        total_cycles=report.total_cycles,
        iterations_to_converge=report.iterations_to_converge,
    )


@dataclass
class StoreStats:
    """Point-in-time store health (``repro store stats``)."""

    path: str
    schema_version: int
    entries: int
    max_entries: int
    log_ops: int
    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    compactions: int = 0
    truncated_recoveries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_payload(self) -> dict:
        payload = asdict(self)
        payload["hit_rate"] = self.hit_rate
        return payload


@dataclass
class _Entry:
    record: dict
    last_used: int = 0


class _FcntlLock:
    """Exclusive advisory lock on a sidecar file (POSIX)."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self._handle = None

    def acquire(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a+")
        fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)

    def release(self) -> None:
        if self._handle is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None


class _SpinLock:
    """Create-exclusive lockfile spin (portable fallback)."""

    def __init__(self, path: Path, timeout: float = 10.0) -> None:
        self.path = path
        self.timeout = timeout

    def acquire(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                handle = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
                os.close(handle)
                return
            except FileExistsError:
                if time.monotonic() > deadline:
                    raise StoreError(
                        f"could not acquire store lock {self.path}"
                    ) from None
                time.sleep(0.005)

    def release(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:  # pragma: no cover - already released
            pass


class TuningStore:
    """Crash-safe, file-locked, LRU-bounded map of tuning outcomes."""

    def __init__(
        self,
        path: str | os.PathLike,
        max_entries: int = 1024,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.path = Path(path)
        self.max_entries = max_entries
        self._entries: dict[str, _Entry] = {}
        self._seq = 0
        self._offset = 0  # bytes of the log already replayed
        self._log_ops = 0
        #: generation id of the header this instance last replayed; a
        #: compaction (any process) stamps a fresh one, so a mismatch
        #: means the bytes behind ``_offset`` are not what we replayed
        self._generation: str | None = None
        self._thread_lock = threading.RLock()
        lock_path = self.path.with_name(self.path.name + ".lock")
        self._file_lock = (
            _FcntlLock(lock_path) if fcntl is not None else _SpinLock(lock_path)
        )
        # per-instance traffic counters (process-local, not persisted)
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0
        self._compactions = 0
        self._truncations = 0
        with self._locked():
            pass  # initial replay (creates the file + header if absent)

    # ------------------------------------------------------------------
    # Locking + replay
    # ------------------------------------------------------------------
    @contextmanager
    def _locked(self) -> Iterator[None]:
        with self._thread_lock:
            self._file_lock.acquire()
            try:
                self._sync()
                yield
            finally:
                self._file_lock.release()

    def _sync(self) -> None:
        """Bring in-memory state up to date with the on-disk log."""
        if not self.path.exists():
            self._write_header()
            return
        size = self.path.stat().st_size
        if size == 0:
            # Truncated to nothing (e.g. crash mid-rewrite): start over.
            self._reset_replay_state()
            self._write_header()
            return
        if size < self._offset or self._disk_generation() != self._generation:
            # Another process compacted (or rewrote) the log.  Size alone
            # cannot detect this — a compaction can *grow* the file past
            # our stale offset — so the header generation is the proof.
            # Either way the bytes behind ``_offset`` are not the ones we
            # replayed: start from byte 0.
            self._reset_replay_state()
        if size == self._offset:
            return
        with self.path.open("rb") as handle:
            handle.seek(self._offset)
            tail = handle.read()
        good = self._replay(tail, header_expected=self._offset == 0)
        if good == 0 and self._offset > 0 and tail:
            # A non-empty tail that replays to nothing means our offset
            # points mid-line into a rewritten file.  Never truncate the
            # live log from a stale offset — replay from scratch.
            self._reset_replay_state()
            with self.path.open("rb") as handle:
                tail = handle.read()
            good = self._replay(tail, header_expected=True)
        if good < len(tail):
            # Torn or corrupt tail: truncate back to the last whole op.
            with self.path.open("r+b") as handle:
                handle.truncate(self._offset + good)
                handle.flush()
                os.fsync(handle.fileno())
            self._truncations += 1
        self._offset += good

    def _reset_replay_state(self) -> None:
        self._entries.clear()
        self._seq = 0
        self._offset = 0
        self._log_ops = 0

    def _disk_generation(self):
        """The generation id in the on-disk header.

        Returns :data:`_UNREADABLE` (never equal to a real generation)
        when the header line is torn or not parseable, forcing the
        caller down the full-replay path where quarantine lives.
        """
        try:
            with self.path.open("rb") as handle:
                line = handle.readline()
        except OSError:
            return _UNREADABLE
        if not line.endswith(b"\n"):
            return _UNREADABLE
        try:
            header = json.loads(line)
        except ValueError:
            return _UNREADABLE
        if not isinstance(header, dict):
            return _UNREADABLE
        return header.get("generation")

    def _replay(self, data: bytes, header_expected: bool) -> int:
        """Apply whole ops from ``data``; return bytes consumed."""
        consumed = 0
        expect_header = header_expected
        for raw in data.split(b"\n"):
            line_span = len(raw) + 1
            if consumed + line_span > len(data):
                break  # no trailing newline: torn final line
            try:
                op = json.loads(raw)
                if not isinstance(op, dict):
                    raise ValueError("op is not an object")
                if expect_header:
                    self._check_header(op)
                    expect_header = False
                else:
                    self._apply(op)
            except (ValueError, KeyError, TypeError) as exc:
                if expect_header:
                    # Unusable header: preserve the evidence, start over.
                    self._quarantine(exc)
                    return 0
                break
            consumed += line_span
        return consumed

    def _check_header(self, op: dict) -> None:
        if op.get("schema") != SCHEMA:
            raise ValueError(f"not a tuning store (schema={op.get('schema')!r})")
        if op.get("version") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported store version {op.get('version')!r}"
            )
        self._generation = op.get("generation")

    def _quarantine(self, reason: Exception) -> None:
        backup = self.path.with_name(self.path.name + ".corrupt")
        os.replace(self.path, backup)
        self._reset_replay_state()
        self._truncations += 1
        self._write_header()
        _metrics().counter(
            "orion_store_recoveries_total",
            "Tuning-store files quarantined and restarted.",
        ).inc(reason=type(reason).__name__)

    def _apply(self, op: dict) -> None:
        kind = op["op"]
        seq = int(op["seq"])
        self._seq = max(self._seq, seq)
        self._log_ops += 1
        key = op["key"]
        if kind == "put":
            self._entries[key] = _Entry(record=op["record"], last_used=seq)
        elif kind == "touch":
            entry = self._entries.get(key)
            if entry is not None:
                entry.last_used = seq
        elif kind == "del":
            self._entries.pop(key, None)
        else:
            raise ValueError(f"unknown op {kind!r}")

    # ------------------------------------------------------------------
    # Log writing
    # ------------------------------------------------------------------
    def _write_header(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = self._header_line()
        with self.path.open("w", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._offset = len(line.encode("utf-8"))

    def _header_line(self) -> str:
        """A fresh header line; stamps a new generation on this instance."""
        self._generation = uuid.uuid4().hex
        return (
            json.dumps(
                {
                    "schema": SCHEMA,
                    "version": SCHEMA_VERSION,
                    "generation": self._generation,
                },
                sort_keys=True,
            )
            + "\n"
        )

    def _append(self, op: dict) -> None:
        line = json.dumps(op, sort_keys=True) + "\n"
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._offset += len(line.encode("utf-8"))
        self._log_ops += 1

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def get(self, key: str) -> TuningRecord | None:
        """Look up a record; a hit refreshes its LRU position."""
        with self._locked():
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                _count_lookup("miss")
                return None
            seq = self._next_seq()
            entry.last_used = seq
            self._append({"op": "touch", "seq": seq, "key": key})
            self._hits += 1
            _count_lookup("hit")
            return TuningRecord.from_payload(entry.record)

    def peek(self, key: str) -> TuningRecord | None:
        """Look up without touching LRU state (``repro store export``)."""
        with self._locked():
            entry = self._entries.get(key)
            return (
                TuningRecord.from_payload(entry.record)
                if entry is not None
                else None
            )

    def put(self, record: TuningRecord) -> int:
        """Insert or replace one record; may evict under the LRU bound.

        Returns the op-log sequence number of the write, so callers
        that ship the op elsewhere (the cluster replicator) can quote
        the exact record they appended.
        """
        with self._locked():
            seq = self._next_seq()
            self._entries[record.key] = _Entry(
                record=record.to_payload(), last_used=seq
            )
            self._append(
                {
                    "op": "put",
                    "seq": seq,
                    "key": record.key,
                    "record": record.to_payload(),
                }
            )
            self._puts += 1
            _metrics().counter(
                "orion_store_writes_total", "Tuning-store records written."
            ).inc()
            self._evict_over_bound()
            self._maybe_compact()
            _metrics().gauge(
                "orion_store_entries", "Live tuning-store records."
            ).set(len(self._entries))
            return seq

    def invalidate(self, key: str) -> bool:
        """Drop one record; returns whether it existed."""
        with self._locked():
            if key not in self._entries:
                return False
            del self._entries[key]
            self._append({"op": "del", "seq": self._next_seq(), "key": key})
            return True

    def keys(self) -> list[str]:
        with self._locked():
            return sorted(self._entries)

    def export(self) -> list[dict]:
        """Every live record, sorted by key (stable, diffable)."""
        with self._locked():
            return [
                self._entries[key].record for key in sorted(self._entries)
            ]

    @property
    def generation(self) -> str | None:
        """The header generation id this instance last replayed.

        Stamped fresh on every compaction/rewrite; replication frames
        carry it so a replica can tell which incarnation of the origin
        log an op came from.
        """
        return self._generation

    def snapshot_ops(self) -> tuple[str | None, list[dict]]:
        """The live state as (generation, replayable ``put`` ops).

        Ops carry their records' current op-log sequence numbers and
        are ordered by ``(last_used, key)`` — replaying them into an
        empty store reproduces both the records and their LRU order.
        This is the catch-up payload the cluster replicator ships to a
        peer that reconnects after missing traffic.
        """
        with self._locked():
            ordered = sorted(
                self._entries.items(), key=lambda kv: (kv[1].last_used, kv[0])
            )
            return self._generation, [
                {
                    "op": "put",
                    "seq": entry.last_used,
                    "key": key,
                    "record": dict(entry.record),
                }
                for key, entry in ordered
            ]

    def op_for(self, key: str) -> dict | None:
        """The current ``put`` op for one live record, or ``None``.

        This is what the daemon hands the replicator after a cold tune:
        the exact op-log shape of the record as this store holds it,
        including its sequence number, so replicas apply the same bytes
        the origin logged.
        """
        with self._locked():
            entry = self._entries.get(key)
            if entry is None:
                return None
            return {
                "op": "put",
                "seq": entry.last_used,
                "key": key,
                "record": dict(entry.record),
            }

    def stats(self) -> StoreStats:
        with self._locked():
            return StoreStats(
                path=str(self.path),
                schema_version=SCHEMA_VERSION,
                entries=len(self._entries),
                max_entries=self.max_entries,
                log_ops=self._log_ops,
                hits=self._hits,
                misses=self._misses,
                puts=self._puts,
                evictions=self._evictions,
                compactions=self._compactions,
                truncated_recoveries=self._truncations,
            )

    def gc(self) -> StoreStats:
        """Force a compaction; returns the post-compaction stats."""
        with self._locked():
            self._compact()
        return self.stats()

    def __len__(self) -> int:
        with self._locked():
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._locked():
            return key in self._entries

    # ------------------------------------------------------------------
    # Eviction + compaction (called under the lock)
    # ------------------------------------------------------------------
    def _evict_over_bound(self) -> None:
        while len(self._entries) > self.max_entries:
            victim = min(
                self._entries.items(),
                key=lambda kv: (kv[1].last_used, kv[0]),
            )[0]
            del self._entries[victim]
            self._append(
                {"op": "del", "seq": self._next_seq(), "key": victim}
            )
            self._evictions += 1
            _metrics().counter(
                "orion_store_evictions_total",
                "Tuning-store records evicted by the LRU bound.",
            ).inc()

    def _maybe_compact(self) -> None:
        threshold = max(_COMPACT_FLOOR, _COMPACT_RATIO * len(self._entries))
        if self._log_ops > threshold:
            self._compact()

    def _compact(self) -> None:
        """Atomically rewrite the log to one put per live record."""
        ordered = sorted(
            self._entries.items(), key=lambda kv: (kv[1].last_used, kv[0])
        )
        lines = [self._header_line().rstrip("\n")]
        self._seq = 0
        for key, entry in ordered:
            seq = self._next_seq()
            entry.last_used = seq
            lines.append(
                json.dumps(
                    {
                        "op": "put",
                        "seq": seq,
                        "key": key,
                        "record": entry.record,
                    },
                    sort_keys=True,
                )
            )
        payload = "\n".join(lines) + "\n"
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._offset = len(payload.encode("utf-8"))
        self._log_ops = len(ordered)
        self._compactions += 1
        _metrics().counter(
            "orion_store_compactions_total", "Tuning-store log compactions."
        ).inc()


# ----------------------------------------------------------------------
def _metrics():
    from repro.obs.metrics import get_registry

    return get_registry()


def _count_lookup(result: str) -> None:
    _metrics().counter(
        "orion_store_lookups_total",
        "Tuning-store lookups by result (warm-start hits and misses).",
    ).inc(result=result)
