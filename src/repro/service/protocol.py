"""The daemon wire format: length-prefixed JSON over a local socket.

One *frame* is a 4-byte big-endian length followed by that many bytes
of UTF-8 JSON.  Length prefixing (rather than newline delimiting)
keeps the framing independent of payload content — a tune request
carries a base64 multi-version binary that could be megabytes — and
lets the server reject oversized frames *before* buffering them.

Requests are objects with a protocol version and a ``type``::

    {"v": 1, "type": "tune", "binary": "<base64>", "workload": {...}}
    {"v": 1, "type": "query", "key": "<hex>"}
    {"v": 1, "type": "invalidate", "key": "<hex>"}
    {"v": 1, "type": "stats"}
    {"v": 1, "type": "ping"}
    {"v": 1, "type": "shutdown"}

Protocol **version 2** adds the daemon-to-daemon cluster verbs (see
:mod:`repro.service.cluster`); a v1 client keeps working unchanged —
the daemon accepts every version in :data:`SUPPORTED_VERSIONS` and
answers a v1 request exactly as a v1 daemon would::

    {"v": 2, "type": "forward", "hops": 1, "request": {...}}
    {"v": 2, "type": "replicate", "origin": "h:p", "generation": "...",
     "ops": [{"op": "put", "seq": 3, "key": "<hex>", "record": {...}}]}
    {"v": 2, "type": "sync", "requester": "h:p"}

``forward`` wraps a misplaced client request on its way to the ring
node that owns the key; ``hops`` counts daemon-to-daemon traversals
and is rejected with ``forward-loop`` once it exceeds the ring size.
``replicate`` ships op-log records (with the origin store's header
generation id) to replicas; ``sync`` is the pull-side catch-up a
(re)starting node sends each peer.

Any version-2 request may additionally carry **trace context** — two
optional envelope fields linking the request into a distributed trace
(see :mod:`repro.obs.tracectx`)::

    {"v": 2, "type": "tune", ..., "trace_id": "9f2ab31c77d0e884",
     "parent_span_id": 3}

Envelope validation only ever checks ``v`` and ``type``, so the fields
are backward- and forward-compatible: a request without them is
byte-identical to one from before tracing existed, and an old daemon
ignores them.  :func:`trace_context` extracts them tolerantly (garbage
degrades to "untraced", never to an error).

Responses always carry ``ok``.  Failures add a machine-readable
``code`` and human-readable ``error``; ``queue-full`` rejections add
``retry_after`` (seconds), the backpressure signal clients honour
before retrying::

    {"ok": true, ...}
    {"ok": false, "code": "queue-full", "error": "...", "retry_after": 0.05}

Both async (daemon-side) and blocking (client-side) frame helpers live
here so the two ends can never drift apart.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

PROTOCOL_VERSION = 2

#: every protocol version this daemon still speaks; v1 predates the
#: cluster verbs and stays accepted so old clients keep working
SUPPORTED_VERSIONS = (1, 2)

#: largest accepted frame; a fat binary with dozens of versions is
#: well under a megabyte, so 16 MiB is generous without letting a
#: malformed length prefix allocate unbounded memory
MAX_FRAME_BYTES = 16 * 1024 * 1024

REQUEST_TYPES = (
    "tune",
    "query",
    "invalidate",
    "stats",
    "ping",
    "shutdown",
    "forward",
    "replicate",
    "sync",
)

#: request types that only exist from protocol version 2 on
V2_REQUEST_TYPES = ("forward", "replicate", "sync")

#: request types a ``forward`` frame may wrap (client-plane only;
#: wrapping another forward — or a cluster verb — would allow loops
#: the hop counter cannot see)
FORWARDABLE_TYPES = ("tune", "query", "invalidate")

#: failure codes responses may carry
CODE_BAD_REQUEST = "bad-request"
CODE_QUEUE_FULL = "queue-full"
CODE_TIMEOUT = "timeout"
CODE_INTERNAL = "internal"
CODE_SHUTTING_DOWN = "shutting-down"
CODE_FORWARD_LOOP = "forward-loop"

_LENGTH = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed, oversized, or truncated frame."""


def encode_frame(payload: dict) -> bytes:
    """Serialize one request/response object into a wire frame."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the limit")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame body is not a JSON object")
    return payload


def _check_length(raw: bytes) -> int:
    (length,) = _LENGTH.unpack(raw)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the limit")
    return length


# ----------------------------------------------------------------------
# Async side (daemon)
# ----------------------------------------------------------------------
async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF before a length prefix."""
    try:
        raw = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid length prefix") from None
    length = _check_length(raw)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid frame") from None
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


async def async_round_trip(
    host: str, port: int, payload: dict, timeout: float = 10.0
) -> dict:
    """One request/response exchange with a peer daemon (async side).

    ``timeout`` bounds the connect and the response read separately —
    a forwarded cold tune legitimately takes seconds, so callers pass
    their request deadline rather than a connect-scale value.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        await write_frame(writer, payload)
        response = await asyncio.wait_for(read_frame(reader), timeout)
        if response is None:
            raise ProtocolError("peer closed before responding")
        return response
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass


# ----------------------------------------------------------------------
# Blocking side (client)
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, payload: dict) -> None:
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> dict:
    raw = _recv_exactly(sock, _LENGTH.size)
    length = _check_length(raw)
    return decode_body(_recv_exactly(sock, length))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Request/response construction helpers
# ----------------------------------------------------------------------
def request(type_: str, **fields) -> dict:
    return {"v": PROTOCOL_VERSION, "type": type_, **fields}


def ok(**fields) -> dict:
    return {"ok": True, **fields}


def error(code: str, message: str, retry_after: float | None = None) -> dict:
    payload = {"ok": False, "code": code, "error": message}
    if retry_after is not None:
        payload["retry_after"] = retry_after
    return payload


def trace_context(payload: dict) -> tuple[str | None, int | None]:
    """The optional ``(trace_id, parent_span_id)`` envelope fields.

    Tolerant by design: a missing, empty, or mistyped ``trace_id``
    yields ``(None, None)`` (the request simply is not traced) and a
    mistyped ``parent_span_id`` is dropped while the trace id is kept.
    Trace context must never be able to fail an otherwise valid
    request.
    """
    trace_id = payload.get("trace_id")
    if not isinstance(trace_id, str) or not trace_id:
        return None, None
    parent = payload.get("parent_span_id")
    if isinstance(parent, bool) or not isinstance(parent, int):
        parent = None
    return trace_id, parent


def stamp_trace(
    payload: dict, trace_id: str, parent_span_id: int | None = None
) -> dict:
    """A copy of ``payload`` carrying the trace-context fields."""
    stamped = dict(payload)
    stamped["trace_id"] = trace_id
    if parent_span_id is not None:
        stamped["parent_span_id"] = parent_span_id
    else:
        stamped.pop("parent_span_id", None)
    return stamped


def validate_request(payload: dict) -> str:
    """Check the envelope; returns the request type.

    Raises :class:`ProtocolError` with a client-presentable message on
    any envelope problem (bad version, unknown type, or a cluster verb
    sent under protocol version 1).
    """
    version = payload.get("v")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this daemon speaks {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    type_ = payload.get("type")
    if type_ not in REQUEST_TYPES:
        raise ProtocolError(f"unknown request type {type_!r}")
    if type_ in V2_REQUEST_TYPES and version < 2:
        raise ProtocolError(
            f"request type {type_!r} needs protocol version 2"
        )
    return type_
