"""The daemon wire format: length-prefixed JSON over a local socket.

One *frame* is a 4-byte big-endian length followed by that many bytes
of UTF-8 JSON.  Length prefixing (rather than newline delimiting)
keeps the framing independent of payload content — a tune request
carries a base64 multi-version binary that could be megabytes — and
lets the server reject oversized frames *before* buffering them.

Requests are objects with a protocol version and a ``type``::

    {"v": 1, "type": "tune", "binary": "<base64>", "workload": {...}}
    {"v": 1, "type": "query", "key": "<hex>"}
    {"v": 1, "type": "invalidate", "key": "<hex>"}
    {"v": 1, "type": "stats"}
    {"v": 1, "type": "ping"}
    {"v": 1, "type": "shutdown"}

Responses always carry ``ok``.  Failures add a machine-readable
``code`` and human-readable ``error``; ``queue-full`` rejections add
``retry_after`` (seconds), the backpressure signal clients honour
before retrying::

    {"ok": true, ...}
    {"ok": false, "code": "queue-full", "error": "...", "retry_after": 0.05}

Both async (daemon-side) and blocking (client-side) frame helpers live
here so the two ends can never drift apart.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct

PROTOCOL_VERSION = 1

#: largest accepted frame; a fat binary with dozens of versions is
#: well under a megabyte, so 16 MiB is generous without letting a
#: malformed length prefix allocate unbounded memory
MAX_FRAME_BYTES = 16 * 1024 * 1024

REQUEST_TYPES = ("tune", "query", "invalidate", "stats", "ping", "shutdown")

#: failure codes responses may carry
CODE_BAD_REQUEST = "bad-request"
CODE_QUEUE_FULL = "queue-full"
CODE_TIMEOUT = "timeout"
CODE_INTERNAL = "internal"
CODE_SHUTTING_DOWN = "shutting-down"

_LENGTH = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed, oversized, or truncated frame."""


def encode_frame(payload: dict) -> bytes:
    """Serialize one request/response object into a wire frame."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds the limit")
    return _LENGTH.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame body is not a JSON object")
    return payload


def _check_length(raw: bytes) -> int:
    (length,) = _LENGTH.unpack(raw)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the limit")
    return length


# ----------------------------------------------------------------------
# Async side (daemon)
# ----------------------------------------------------------------------
async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF before a length prefix."""
    try:
        raw = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid length prefix") from None
    length = _check_length(raw)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid frame") from None
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


# ----------------------------------------------------------------------
# Blocking side (client)
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket, payload: dict) -> None:
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> dict:
    raw = _recv_exactly(sock, _LENGTH.size)
    length = _check_length(raw)
    return decode_body(_recv_exactly(sock, length))


def _recv_exactly(sock: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Request/response construction helpers
# ----------------------------------------------------------------------
def request(type_: str, **fields) -> dict:
    return {"v": PROTOCOL_VERSION, "type": type_, **fields}


def ok(**fields) -> dict:
    return {"ok": True, **fields}


def error(code: str, message: str, retry_after: float | None = None) -> dict:
    payload = {"ok": False, "code": code, "error": message}
    if retry_after is not None:
        payload["retry_after"] = retry_after
    return payload


def validate_request(payload: dict) -> str:
    """Check the envelope; returns the request type.

    Raises :class:`ProtocolError` with a client-presentable message on
    any envelope problem (bad version, unknown type).
    """
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this daemon speaks {PROTOCOL_VERSION})"
        )
    type_ = payload.get("type")
    if type_ not in REQUEST_TYPES:
        raise ProtocolError(f"unknown request type {type_!r}")
    return type_
