"""Tuning-as-a-service: persist and serve learned occupancy decisions.

Orion's runtime adaptation converges to a stable winner per (kernel,
architecture, work profile) — and, before this subsystem, threw that
knowledge away at process exit.  The service layer keeps it:

* :mod:`repro.service.fingerprint` — content-addressed tuning keys: a
  portable kernel fingerprint (module bytes + occupancy envelopes, not
  file paths) combined with the architecture, backend, and a
  *normalized* work profile;
* :mod:`repro.service.store` — the persistent tuning store: a
  crash-safe, file-locked JSONL log of tuning outcomes with schema
  versioning, deterministic LRU bounds, and truncate-and-replay
  corruption recovery;
* :mod:`repro.service.protocol` — the length-prefixed JSON wire format
  shared by daemon and client;
* :mod:`repro.service.daemon` — the asyncio tuning daemon: localhost
  socket server with single-flight deduplication, bounded-queue
  admission control (Retry-After rejections), per-request timeouts,
  and the existing :class:`~repro.runtime.engine.ExecutionEngine` as
  its worker pool;
* :mod:`repro.service.client` — the warm-start client: sync, with
  retry/backoff and graceful degradation to in-process tuning when the
  daemon is unreachable; :class:`~repro.service.client.RingClient`
  routes and fails over across a cluster;
* :mod:`repro.service.cluster` — sharding and replication: the
  consistent-hash ring, per-node cluster config, and the asynchronous
  replicator that ships op-log records to replica peers;
* :mod:`repro.service.http` — the ``/metrics`` + ``/healthz`` HTTP
  sidecar (``repro serve --http-port``).

The CLI exposes the layer as ``repro serve`` (``--ring`` for cluster
mode), ``repro submit``, ``repro loadtest``, and ``repro store
{stats,gc,export}``; `docs/service.md` specifies the protocol, the
warm-start semantics, the cluster topology, and the failure modes.
"""

from repro.service.client import (
    RingClient,
    ServiceUnavailable,
    TuningClient,
    tune_with_fallback,
)
from repro.service.cluster import ClusterConfig, HashRing, Replicator
from repro.service.daemon import DaemonConfig, TuningDaemon
from repro.service.fingerprint import (
    kernel_fingerprint,
    normalize_work_profile,
    tuning_key,
)
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.store import StoreStats, TuningRecord, TuningStore

__all__ = [
    "ClusterConfig",
    "DaemonConfig",
    "HashRing",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Replicator",
    "RingClient",
    "ServiceUnavailable",
    "StoreStats",
    "TuningClient",
    "TuningDaemon",
    "TuningRecord",
    "TuningStore",
    "kernel_fingerprint",
    "normalize_work_profile",
    "tuning_key",
    "tune_with_fallback",
]
