"""Consistent-hash sharding and replication for the tuning service.

One tuning daemon serves one machine; a *ring* of daemons serves a
fleet.  Three pieces turn the single-node service into that ring, all
layered on the existing store/daemon/protocol machinery rather than
replacing it:

* :class:`HashRing` — deterministic placement of the kernel-
  fingerprint keyspace over nodes via consistent hashing with virtual
  nodes.  Every node computes the same owner for the same fingerprint
  from nothing but the shared ``--ring`` list, so there is no
  coordinator and no placement metadata to replicate.
* :class:`ClusterConfig` — the operator-visible shape of one node's
  membership: its own advertised ``host:port`` identity, the full
  ring, and the replication factor.
* :class:`Replicator` — asynchronous push replication.  A node that
  publishes a winner ships the store's op-log record (with the header
  generation id) to each replica over the v2 ``replicate`` verb.
  Shipping is fire-and-forget from the client's point of view — the
  tune response never waits on replication — but per-peer backlogs are
  durable within the process: a peer that is down accumulates ops and
  receives them, preceded by a full snapshot catch-up, when it comes
  back (*catch-up on reconnect*).

Placement is by **kernel fingerprint**, not by full tuning key: the
fingerprint is computable from the binary alone, so clients can route
without knowing the daemon's architecture or backend, and every tuning
key derived from one kernel lands on the same node (all work shapes of
a kernel share an owner, which keeps that kernel's single-flight dedup
on one daemon).
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
from collections import deque
from dataclasses import dataclass, field

from repro.service import protocol

#: virtual nodes per physical node; 64 keeps the keyspace spread
#: within a few percent of uniform for small rings while the ring
#: stays cheap to build
DEFAULT_VNODES = 64

#: replicate frames batch up to this many ops
_SHIP_BATCH = 64

#: deterministic reconnect backoff: ``_BACKOFF_BASE * 2**failures``
#: capped at ``_BACKOFF_CAP`` (no jitter — schedules stay derivable)
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0


class RingError(ValueError):
    """A malformed ring specification or membership."""


def parse_ring(spec: str | list[str]) -> list[str]:
    """Normalize a ``host:port,host:port,...`` ring specification.

    Returns the member list sorted by node id so that every daemon —
    whatever order its operator typed the nodes in — builds the same
    ring.
    """
    if isinstance(spec, str):
        parts = [part.strip() for part in spec.split(",")]
    else:
        parts = [str(part).strip() for part in spec]
    nodes = sorted({part for part in parts if part})
    if not nodes:
        raise RingError("ring specification names no nodes")
    for node in nodes:
        host, sep, port = node.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise RingError(
                f"ring node {node!r} is not host:port with a numeric port"
            )
    return nodes


def node_address(node: str) -> tuple[str, int]:
    """Split a ``host:port`` node id into a connectable address."""
    host, _, port = node.rpartition(":")
    return host, int(port)


class HashRing:
    """Consistent hashing with virtual nodes over a fixed member list.

    Placement is a pure function of (member list, vnode count, key):
    every node — and every client — derives identical owners with no
    coordination.  Virtual nodes smooth the keyspace split; lookups are
    a binary search over the precomputed point list.
    """

    def __init__(
        self, nodes: str | list[str], vnodes: int = DEFAULT_VNODES
    ) -> None:
        self.nodes = parse_ring(nodes)
        if vnodes < 1:
            raise RingError("vnodes must be at least 1")
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for node in self.nodes:
            for index in range(vnodes):
                points.append((self._point(f"{node}#{index}"), node))
        points.sort()
        self._hashes = [point for point, _ in points]
        self._owners = [node for _, node in points]

    @staticmethod
    def _point(value: str) -> int:
        digest = hashlib.sha256(value.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def __len__(self) -> int:
        return len(self.nodes)

    def owner(self, key: str) -> str:
        """The node that owns ``key`` (clockwise successor placement)."""
        index = bisect.bisect_right(self._hashes, self._point(key))
        if index == len(self._hashes):
            index = 0
        return self._owners[index]

    def replicas(self, key: str, count: int) -> list[str]:
        """Owner first, then ``count`` further distinct nodes ring-wise.

        ``count`` beyond the ring size is clamped: a 3-node ring with
        ``count=5`` still returns 3 nodes.
        """
        start = bisect.bisect_right(self._hashes, self._point(key))
        wanted = min(1 + max(0, count), len(self.nodes))
        chosen: list[str] = []
        for step in range(len(self._hashes)):
            node = self._owners[(start + step) % len(self._hashes)]
            if node not in chosen:
                chosen.append(node)
                if len(chosen) == wanted:
                    break
        return chosen


@dataclass
class ClusterConfig:
    """One node's view of the ring (``repro serve --ring ...``)."""

    node_id: str  # this daemon's advertised host:port, present in ring
    ring: list[str] = field(default_factory=list)
    replicas: int = 2  # copies beyond the owner
    vnodes: int = DEFAULT_VNODES
    peer_timeout: float = 5.0  # connect/control-plane deadline per peer

    def __post_init__(self) -> None:
        self.ring = parse_ring(self.ring)
        if self.node_id not in self.ring:
            raise RingError(
                f"node id {self.node_id!r} is not a ring member "
                f"({', '.join(self.ring)})"
            )
        if self.replicas < 0:
            raise RingError("replicas cannot be negative")

    @property
    def peers(self) -> list[str]:
        return [node for node in self.ring if node != self.node_id]

    @property
    def max_hops(self) -> int:
        """A forward may traverse each node at most once."""
        return len(self.ring)

    def hash_ring(self) -> HashRing:
        return HashRing(self.ring, self.vnodes)


class Replicator:
    """Asynchronous op shipping to replica peers, with catch-up.

    Each peer gets an in-order backlog (a deque) and one worker task.
    The worker batches pending ops into ``replicate`` frames; a send
    failure marks the peer *behind*, keeps the batch at the front of
    the backlog, and backs off deterministically.  When a behind peer
    answers again, the next frame is preceded by a full snapshot of
    this node's live records (``snapshot_ops``), so a replica that
    missed arbitrary traffic converges in one exchange.
    """

    def __init__(
        self,
        node_id: str,
        peers: list[str],
        snapshot_ops,  # async () -> (generation, [op dicts])
        peer_timeout: float = 5.0,
        log=None,  # a repro.obs.log.StructuredLogger (default: process)
    ) -> None:
        self.node_id = node_id
        self.peers = list(peers)
        self._snapshot_ops = snapshot_ops
        self.peer_timeout = peer_timeout
        self._log = log
        #: per-peer queues of (op, trace_id) — the trace of the request
        #: that published the op rides along to the replicate frame
        self._backlogs: dict[str, deque] = {peer: deque() for peer in peers}
        self._wakeups: dict[str, asyncio.Event] = {}
        self._behind: dict[str, bool] = {peer: False for peer in peers}
        self._failures: dict[str, int] = {peer: 0 for peer in peers}
        self._tasks: list[asyncio.Task] = []
        self._stopping = False

    @property
    def log(self):
        if self._log is None:
            from repro.obs.log import get_logger

            self._log = get_logger()
        return self._log

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn one worker per peer on the running event loop."""
        for peer in self.peers:
            self._wakeups[peer] = asyncio.Event()
            self._tasks.append(
                asyncio.get_running_loop().create_task(self._worker(peer))
            )

    async def stop(self, flush_timeout: float = 2.0) -> None:
        """Best-effort flush of remaining backlogs, then cancel workers."""
        self._stopping = True
        deadline = asyncio.get_running_loop().time() + flush_timeout
        while any(self._backlogs[peer] for peer in self.peers):
            if asyncio.get_running_loop().time() >= deadline:
                break
            await asyncio.sleep(0.01)
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks.clear()

    # ------------------------------------------------------------------
    def publish(self, op: dict, peers: list[str] | None = None) -> None:
        """Enqueue one op-log record for shipping.

        ``peers`` defaults to every peer; put replication passes the
        key's replica set, invalidation broadcasts.  The ambient trace
        context (the request that caused this publish) is captured here
        and stamped onto the eventual ``replicate`` frame.
        """
        from repro.obs.tracectx import current_trace

        ctx = current_trace()
        trace_id = None if ctx is None else ctx.trace_id
        for peer in self.peers if peers is None else peers:
            if peer == self.node_id or peer not in self._backlogs:
                continue
            self._backlogs[peer].append((op, trace_id))
            event = self._wakeups.get(peer)
            if event is not None:
                event.set()
        self._gauge_backlog()

    def backlog(self) -> dict[str, int]:
        return {peer: len(self._backlogs[peer]) for peer in self.peers}

    def behind(self) -> list[str]:
        return [peer for peer in self.peers if self._behind[peer]]

    # ------------------------------------------------------------------
    async def _worker(self, peer: str) -> None:
        backlog = self._backlogs[peer]
        wakeup = self._wakeups[peer]
        while True:
            if not backlog:
                wakeup.clear()
                await wakeup.wait()
            batch = []
            while backlog and len(batch) < _SHIP_BATCH:
                batch.append(backlog.popleft())
            if not batch:
                continue
            try:
                await self._ship(peer, batch)
            except (OSError, protocol.ProtocolError, asyncio.TimeoutError) as exc:
                self._behind[peer] = True
                self._failures[peer] += 1
                backlog.extendleft(reversed(batch))
                self._gauge_backlog()
                delay = min(
                    _BACKOFF_BASE * 2 ** self._failures[peer], _BACKOFF_CAP
                )
                self.log.warn(
                    "replicate_retry",
                    peer=peer,
                    failures=self._failures[peer],
                    backlog=len(backlog),
                    delay=delay,
                    error=str(exc),
                )
                await asyncio.sleep(delay)
            else:
                self._failures[peer] = 0
                self._gauge_backlog()

    async def _ship(self, peer: str, batch: list[tuple[dict, str | None]]) -> None:
        shipped = [op for op, _ in batch]
        # The frame inherits a trace from its ops: the first traced op
        # wins (a batch mixes requests; one exemplar is enough to find
        # the frame from a merged trace).
        trace_id = next(
            (tid for _, tid in batch if tid is not None), None
        )
        generation, catchup = await self._snapshot_ops()
        if self._behind[peer]:
            # Reconnect after a gap: lead with the full snapshot so the
            # replica converges in one exchange, minus anything the
            # batch itself already carries.
            shipped_keys = {op.get("key") for op in shipped}
            catchup = [
                op for op in catchup if op.get("key") not in shipped_keys
            ]
        else:
            catchup = []
        ops = catchup + shipped
        wire = protocol.request(
            "replicate",
            origin=self.node_id,
            generation=generation,
            ops=ops,
        )
        if trace_id is not None:
            wire = protocol.stamp_trace(wire, trace_id)
        host, port = node_address(peer)
        response = await protocol.async_round_trip(
            host,
            port,
            wire,
            timeout=self.peer_timeout,
        )
        if response.get("ok") is not True:
            raise protocol.ProtocolError(
                f"replica {peer} rejected ops: {response.get('error')}"
            )
        # Only clear the behind flag once a snapshot actually landed.
        self._behind[peer] = False
        _metrics().counter(
            "orion_cluster_replication_ops_total",
            "Replication ops by direction (shipped by origin, applied "
            "by replica).",
        ).inc(len(ops), direction="shipped")

    def _gauge_backlog(self) -> None:
        gauge = _metrics().gauge(
            "orion_cluster_replication_backlog",
            "Replication ops queued per peer, awaiting shipment.",
        )
        for peer, pending in self.backlog().items():
            gauge.set(pending, peer=peer)


def _metrics():
    from repro.obs.metrics import get_registry

    return get_registry()
