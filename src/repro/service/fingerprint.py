"""Content-addressed tuning keys (what the store is keyed by).

A tuning outcome is reusable exactly when a later run would walk the
same candidates under the same conditions.  Three ingredients pin that
down:

* the **kernel fingerprint** — a SHA-256 over every candidate and
  fail-safe version's content hash (module bytes + register/shared-
  memory envelope, via
  :func:`~repro.compiler.multiversion.version_content_hash`) plus the
  tuning metadata (direction, candidate order, block size).  Two
  binaries compiled from the same source at different paths — or on
  different machines — fingerprint identically; re-labelled but
  otherwise identical versions fingerprint identically too.
* the **execution context** — architecture, backend, and cache
  configuration.  The winner on a GTX 680 under the timing simulator
  says nothing about a C2075 under the analytical model.  The
  architecture is identified by name *and* descriptor fingerprint
  (:meth:`~repro.arch.specs.GpuArchitecture.fingerprint`), so editing
  an architecture's resource table can never silently alias records
  produced under the old numbers.  The candidate set's allocation
  strategies are keyed explicitly too (they are already part of each
  version's content hash, but the explicit field survives any future
  hashing change).
* the **normalized work profile** — the shape of the workload, not its
  exact size.  Launch geometry is kept exactly (it changes residency),
  iteration counts are bucketed to powers of two (tuning converges in
  ~3 iterations; 100 vs 128 iterations of the same kernel share a
  winner), and per-iteration work profiles are scaled to ``max == 1``
  (the tuner itself compares work-normalised runtimes).

``tuning_key`` digests all three into one hex string.  Keys embed a
version prefix so a semantic change to any ingredient invalidates
every old entry at once instead of silently aliasing.
"""

from __future__ import annotations

import hashlib
import json

from repro.compiler.multiversion import MultiVersionBinary, version_content_hash
from repro.runtime.session import Workload

_KEY_PREFIX = b"orion-tuning-key-v2\x00"
_KERNEL_PREFIX = b"orion-kernel-fp-v1\x00"


def kernel_fingerprint(binary: MultiVersionBinary) -> str:
    """Portable SHA-256 identity of one multi-version binary.

    Built from per-version content hashes rather than the serialized
    container, so the fingerprint is independent of version labels and
    of any future container framing change.
    """
    digest = hashlib.sha256()
    digest.update(_KERNEL_PREFIX)
    digest.update(
        "\x00".join(
            [
                binary.direction,
                str(binary.block_size),
                str(binary.can_tune),
                str(len(binary.versions)),
            ]
        ).encode()
    )
    for version in (*binary.versions, *binary.failsafe):
        digest.update(version_content_hash(version).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def _bucket_pow2(n: int) -> int:
    """The nearest power of two ≥ n (1 for n <= 1)."""
    if n <= 1:
        return 1
    return 1 << (n - 1).bit_length()


def normalize_work_profile(workload: Workload) -> dict:
    """The canonical, JSON-safe shape of one workload.

    Exact where exactness matters (launch geometry, traits, ILP),
    bucketed where only the shape matters (iteration count), scaled
    where the tuner itself normalises (the per-iteration work profile).
    """
    profile = None
    if workload.work_profile:
        peak = max(workload.work_profile)
        if peak > 0:
            profile = [round(w / peak, 4) for w in workload.work_profile]
        else:
            profile = list(workload.work_profile)
    return {
        "grid_blocks": workload.launch.grid_blocks,
        "block_size": workload.launch.block_size,
        "params": sorted(
            (int(k), v) for k, v in workload.launch.params.items()
        ),
        "iterations_bucket": _bucket_pow2(workload.iterations),
        "traits": repr(workload.traits),
        "ilp": round(float(workload.ilp), 6),
        "work_profile": profile,
    }


def tuning_key(
    binary: MultiVersionBinary,
    workload: Workload,
    arch_name: str,
    backend_name: str,
    cache_config: str = "small",
    arch_fingerprint: str = "",
) -> str:
    """The store key for one (kernel, context, work-shape) triple.

    ``arch_fingerprint`` is the architecture's descriptor fingerprint;
    pass ``arch.fingerprint()`` whenever the descriptor is at hand so
    that records keyed under different resource tables (even with the
    same marketing name) never alias.
    """
    payload = json.dumps(
        {
            "kernel": kernel_fingerprint(binary),
            "arch": arch_name,
            "arch_fp": arch_fingerprint,
            "backend": backend_name,
            "cache_config": cache_config,
            "strategies": list(binary.strategies()),
            "work": normalize_work_profile(workload),
        },
        sort_keys=True,
    )
    digest = hashlib.sha256()
    digest.update(_KEY_PREFIX)
    digest.update(payload.encode())
    return digest.hexdigest()
