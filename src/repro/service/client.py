"""The warm-start client (``repro submit`` and library use).

A small synchronous client over the length-prefixed JSON protocol:

* **retry with backoff** — connection failures and ``queue-full``
  rejections are retried up to ``retries`` times; queue-full honours
  the daemon's ``retry_after`` hint, connection failures use a fixed
  deterministic backoff (no jitter — the reproduction keeps every
  schedule derivable from its inputs);
* **graceful degradation** — :func:`tune_with_fallback` is the entry
  point callers actually want: it asks the daemon first and, when the
  daemon is unreachable or persistently rejecting, falls back to
  in-process tuning through a local
  :class:`~repro.runtime.engine.ExecutionEngine` (charging
  ``orion_client_fallbacks_total`` so silent degradation shows up in
  metrics).

The client never holds a connection across requests: each request is
one connect/send/receive/close round trip, which keeps it trivially
safe to use from multiple threads and immune to daemon restarts.
"""

from __future__ import annotations

import base64
import socket
import time
from pathlib import Path

from repro.compiler.multiversion import MultiVersionBinary
from repro.runtime.session import Workload
from repro.service import protocol
from repro.service.protocol import ProtocolError


class ServiceUnavailable(ConnectionError):
    """The daemon could not be reached (or kept rejecting) in time.

    A :class:`ConnectionError` so callers treating the service as plain
    I/O (the CLI's ``except OSError``) degrade without special-casing.
    """


class ServiceRejected(Exception):
    """The daemon answered with a non-retryable failure response."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


def read_port_file(path: str | Path) -> int:
    """The port a daemon wrote via ``--port-file``."""
    text = Path(path).read_text(encoding="utf-8").strip()
    try:
        return int(text)
    except ValueError:
        raise ValueError(f"port file {path} does not contain a port") from None


class TuningClient:
    """One daemon endpoint, sync, connection-per-request."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int | None = None,
        port_file: str | Path | None = None,
        timeout: float = 10.0,
        retries: int = 2,
        backoff: float = 0.05,
    ) -> None:
        if port is None and port_file is None:
            raise ValueError("need a port or a port file")
        self.host = host
        self._port = port
        self._port_file = port_file
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff

    @property
    def port(self) -> int:
        if self._port is None:
            self._port = read_port_file(self._port_file)
        return self._port

    # ------------------------------------------------------------------
    def request(self, payload: dict) -> dict:
        """One request/response round trip with retry/backoff.

        Retryable: connection failures and ``queue-full`` rejections.
        Anything else — including other error responses — returns (or
        raises) immediately.
        """
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self._delay(last_error, attempt))
            try:
                response = self._round_trip(payload)
            except (ConnectionError, OSError, ProtocolError) as exc:
                last_error = exc
                continue
            if (
                response.get("ok") is False
                and response.get("code") == protocol.CODE_QUEUE_FULL
            ):
                last_error = ServiceRejected(
                    response["code"], response.get("error", "queue full")
                )
                last_error.retry_after = response.get("retry_after")
                continue
            return response
        raise ServiceUnavailable(
            f"daemon at {self.host}:{self.port} unavailable after "
            f"{self.retries + 1} attempt(s): {last_error}"
        )

    def _delay(self, last_error: Exception | None, attempt: int) -> float:
        hinted = getattr(last_error, "retry_after", None)
        if hinted is not None:
            return float(hinted)
        return self.backoff * attempt

    def _round_trip(self, payload: dict) -> dict:
        with socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        ) as sock:
            protocol.send_frame(sock, payload)
            return protocol.recv_frame(sock)

    # ------------------------------------------------------------------
    # Typed requests
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        return self._checked(self.request(protocol.request("ping")))

    def stats(self) -> dict:
        return self._checked(self.request(protocol.request("stats")))

    def query(self, key: str) -> dict:
        return self._checked(self.request(protocol.request("query", key=key)))

    def invalidate(self, key: str) -> dict:
        return self._checked(
            self.request(protocol.request("invalidate", key=key))
        )

    def shutdown(self) -> dict:
        return self._checked(self.request(protocol.request("shutdown")))

    def tune(self, binary: MultiVersionBinary, workload: Workload) -> dict:
        """Tune via the daemon; returns the response (``source`` says
        whether it was a warm store hit, a fresh tune, or a dedup join).
        """
        return self._checked(
            self.request(
                protocol.request(
                    "tune",
                    binary=base64.b64encode(binary.to_bytes()).decode("ascii"),
                    workload=workload_payload(workload),
                )
            )
        )

    @staticmethod
    def _checked(response: dict) -> dict:
        if response.get("ok") is not True:
            raise ServiceRejected(
                response.get("code", "unknown"),
                response.get("error", "daemon rejected the request"),
            )
        return response


def workload_payload(workload: Workload) -> dict:
    """The wire form of a :class:`Workload` (daemon-side inverse:
    :func:`repro.service.daemon.workload_from_payload`)."""
    payload: dict = {
        "grid_blocks": workload.launch.grid_blocks,
        "block_size": workload.launch.block_size,
        "iterations": workload.iterations,
        "ilp": workload.ilp,
        "max_events_per_warp": workload.max_events_per_warp,
    }
    if workload.launch.params:
        payload["params"] = {
            str(k): v for k, v in workload.launch.params.items()
        }
    if workload.work_profile:
        payload["work_profile"] = list(workload.work_profile)
    traits = workload.traits
    defaults = type(traits)()
    trait_fields = {
        name: getattr(traits, name)
        for name in traits.__dataclass_fields__
        if getattr(traits, name) != getattr(defaults, name)
    }
    if trait_fields:
        payload["traits"] = trait_fields
    return payload


def tune_with_fallback(
    client: TuningClient,
    binary: MultiVersionBinary,
    workload: Workload,
    arch,
    backend: str = "timing",
) -> dict:
    """Daemon-first tuning with graceful degradation.

    Returns a tune response shaped like the daemon's (``source`` is
    ``"local"`` when the fallback path ran).  The fallback builds a
    throwaway local engine, so it works with no daemon on the machine
    at all — the service layer is an accelerator, never a dependency.
    """
    try:
        return client.tune(binary, workload)
    except (ServiceUnavailable, ServiceRejected) as exc:
        _count_fallback(type(exc).__name__)
        from repro.runtime.engine import ExecutionEngine
        from repro.runtime.session import TuningSession
        from repro.service.fingerprint import kernel_fingerprint, tuning_key
        from repro.service.store import record_from_report

        engine = ExecutionEngine(arch, backend=backend)
        report = engine.run(TuningSession(binary, workload))
        key = tuning_key(
            binary, workload, arch.name, engine.backend.name,
            engine.cache_config.value, arch_fingerprint=arch.fingerprint(),
        )
        record = record_from_report(
            key, kernel_fingerprint(binary), binary, report,
            arch.name, engine.backend.name,
        )
        return {
            "ok": True,
            "source": "local",
            "key": key,
            "record": record.to_payload(),
            "degraded_reason": str(exc),
        }


def _count_fallback(reason: str) -> None:
    from repro.obs.metrics import get_registry

    get_registry().counter(
        "orion_client_fallbacks_total",
        "Tune requests that degraded to in-process tuning.",
    ).inc(reason=reason)
